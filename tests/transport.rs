//! Workspace-level tests of the remote transport (ISSUE 7): the
//! malformed-frame sweep (a hostile connection never takes the server
//! down), typed edge admission (quotas, caps, unknown graphs as wire
//! rejections — not closed sockets), and the acceptance scenario: many
//! concurrent wire clients whose outcomes are byte-identical to fresh
//! in-process engine runs, with duplicates cache-served and a mid-stream
//! disconnect observably cancelling its job.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_engine::wire::encode_outcome_semantic;
use spidermine_engine::{Algorithm, GraphSource, MineContext, MineRequest, Miner};
use spidermine_graph::{generate, LabeledGraph};
use spidermine_service::{MiningService, ServiceConfig};
use spidermine_transport::frame::{encode_frame, read_frame};
use spidermine_transport::{
    Frame, MiningClient, MiningServer, TransportConfig, TransportError, WireRejection,
};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A host big enough that SpiderMine takes real time — a mid-stream
/// disconnect lands while the run is still mining.
fn slow_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 400, 2.0, 30);
    let pattern = generate::random_connected_pattern(&mut rng, 10, 30, 3);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

/// A much bigger host for the admission test: its jobs must still be
/// running while quota and queue rejections are provoked (they are
/// cancelled afterwards, so the extra size costs little wall-clock).
fn very_slow_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 1500, 2.0, 30);
    let pattern = generate::random_connected_pattern(&mut rng, 10, 30, 3);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

/// A small host for the fast determinism runs.
fn small_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 120, 2.0, 8);
    let pattern = generate::random_connected_pattern(&mut rng, 6, 8, 2);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

fn request() -> MineRequest {
    MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(5)
        .d_max(6)
        .seed(11)
}

fn serve(service: &Arc<MiningService>, config: TransportConfig) -> (MiningServer, SocketAddr) {
    let server = MiningServer::bind("127.0.0.1:0", service.clone(), config).expect("bind server");
    let addr = server.local_addr();
    (server, addr)
}

/// Sends raw bytes on a fresh connection and returns the server's reaction:
/// `Ok(frame)` if it answered, `Err(true)` for a clean close, `Err(false)`
/// for anything pathological (timeout — the server must never just hang).
fn poke(addr: SocketAddr, bytes: &[u8]) -> Result<Frame, bool> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    // Best-effort write: the server may react to the first bad bytes and
    // close before the rest is even sent (a legitimate reaction).
    let _ = stream.write_all(bytes).and_then(|()| stream.flush());
    // Half-close so a server waiting for the rest of a frame sees EOF.
    let _ = stream.shutdown(Shutdown::Write);
    match read_frame(&mut stream) {
        Ok(frame) => Ok(frame),
        Err(TransportError::Closed) => Err(true),
        Err(TransportError::Io(_)) => Err(true), // reset by peer: also a close
        Err(_) => Err(false),
    }
}

#[test]
fn malformed_frames_get_typed_goodbyes_and_server_keeps_serving() {
    let service = Arc::new(MiningService::new(ServiceConfig::default()));
    service.catalog().register("net", small_graph(1));
    let (_server, addr) = serve(&service, TransportConfig::default());

    let hello = encode_frame(&Frame::Hello {
        client: "sweeper".into(),
    });

    // Bad magic: four bytes that are not `SPWF`.
    let mut bad_magic = hello.clone();
    bad_magic[0] ^= 0xff;
    // Unsupported version (checksum is checked after the version field, so
    // no need to re-hash).
    let mut bad_version = hello.clone();
    bad_version[4] = 0xee;
    bad_version[5] = 0xee;
    // Unknown frame type.
    let mut bad_type = hello.clone();
    bad_type[6] = 0x7f;
    // Oversized declared payload length (beyond the 64 MiB cap) — must be
    // refused before any allocation.
    let mut oversized = hello.clone();
    oversized[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    // Checksum bit-flip in the payload.
    let mut flipped = hello.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    // Truncation: half a frame, then close.
    let truncated = hello[..hello.len() - 3].to_vec();
    let mid_header = hello[..9].to_vec();

    for (name, bytes) in [
        ("bad magic", &bad_magic),
        ("bad version", &bad_version),
        ("bad frame type", &bad_type),
        ("oversized length", &oversized),
        ("checksum flip", &flipped),
        ("truncated payload", &truncated),
        ("truncated header", &mid_header),
        ("empty", &Vec::new()),
    ] {
        match poke(addr, bytes) {
            Ok(Frame::Goodbye { message, .. }) => {
                assert!(
                    message.contains("protocol error"),
                    "{name}: unexpected goodbye: {message}"
                );
            }
            Ok(frame) => panic!("{name}: unexpected answer {frame:?}"),
            Err(true) => {} // silent close: acceptable for unparseable bytes
            Err(false) => panic!("{name}: server neither answered nor closed"),
        }
    }

    // Frames that are valid but out of protocol: data before Hello, a
    // server-side frame, an invalid request payload after a handshake.
    let premature = encode_frame(&Frame::Cancel { id: 0 });
    assert!(
        matches!(poke(addr, &premature), Ok(Frame::Goodbye { .. })),
        "pre-handshake frames must be refused"
    );
    let server_side = encode_frame(&Frame::HelloAck {
        max_inflight: 1,
        idle_timeout_ms: 0,
    });
    let mut handshook = hello.clone();
    handshook.extend_from_slice(&server_side);
    assert!(
        matches!(poke(addr, &handshook), Ok(Frame::HelloAck { .. })),
        "handshake must still be answered first"
    );

    // Garbage *request payload* inside a checksummed frame: a per-request
    // rejection, not a connection error.
    let mut with_bad_request = hello.clone();
    with_bad_request.extend_from_slice(&encode_frame(&Frame::Request {
        id: 7,
        graph: "net".into(),
        request: vec![0xde, 0xad, 0xbe, 0xef],
        trace: 0,
    }));
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    stream.write_all(&with_bad_request).expect("send");
    stream.flush().expect("flush");
    match read_frame(&mut stream).expect("HelloAck") {
        Frame::HelloAck { .. } => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
    match read_frame(&mut stream).expect("Rejected") {
        Frame::Rejected { id, rejection } => {
            assert_eq!(id, 7);
            assert!(
                matches!(rejection, WireRejection::InvalidRequest(_)),
                "got {rejection:?}"
            );
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    // After the whole sweep the server still serves a healthy client, and
    // never panicked (a dead accept loop would refuse this connection).
    let client = MiningClient::connect(addr, "survivor").expect("connect after sweep");
    let job = client.submit("net", &request()).expect("submit");
    let result = job.outcome().expect("mine over the wire");
    assert!(!result.outcome.patterns.is_empty(), "patterns expected");
}

#[test]
fn admission_rejections_are_typed_not_closed_sockets() {
    let service = Arc::new(MiningService::new(ServiceConfig {
        dispatchers: 1,
        queue_depth: 1,
        ..ServiceConfig::default()
    }));
    service.catalog().register("slow", very_slow_graph(7));
    let (_server, addr) = serve(
        &service,
        TransportConfig {
            max_connections: 2,
            max_inflight_per_client: 2,
            ..TransportConfig::default()
        },
    );

    let client = MiningClient::connect(addr, "tenant").expect("connect");
    assert_eq!(client.max_inflight(), 2);

    // Unknown graph: typed, and the connection survives it.
    match client.submit("no-such-graph", &request()) {
        Err(TransportError::Rejected(WireRejection::UnknownGraph(name))) => {
            assert_eq!(name, "no-such-graph");
        }
        other => panic!("expected UnknownGraph, got {other:?}"),
    }

    // Fill the per-client quota with two slow jobs (distinct seeds so the
    // second doesn't park behind the first as a duplicate)...
    let job_a = client.submit("slow", &request()).expect("first in-flight");
    let job_b = client
        .submit("slow", &request().seed(12))
        .expect("second in-flight");
    // ...then the third is over quota — typed rejection, socket stays open.
    match client.submit("slow", &request().seed(13)) {
        Err(TransportError::Rejected(WireRejection::QuotaExceeded { in_flight, limit })) => {
            assert_eq!((in_flight, limit), (2, 2));
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // Quota is keyed by client name, not socket: a second connection of the
    // same tenant shares the budget.
    let second_socket = MiningClient::connect(addr, "tenant").expect("connect");
    match second_socket.submit("slow", &request().seed(14)) {
        Err(TransportError::Rejected(WireRejection::QuotaExceeded { .. })) => {}
        other => panic!("expected QuotaExceeded across sockets, got {other:?}"),
    }
    drop(second_socket);

    // Queue depth: `tenant` holds one running and one queued job, so the
    // scheduler's queue (depth 1) is full — a *different* client's request
    // passes its quota but bounces off the queue limit. Backoff-connect
    // because the server reaps the just-dropped second socket asynchronously.
    let other = MiningClient::connect_with_backoff(addr, "other", 40, Duration::from_millis(25))
        .expect("connect once the dropped socket is reaped");
    match other.submit("slow", &request().seed(15)) {
        Err(TransportError::Rejected(WireRejection::QueueFull { depth, limit })) => {
            assert_eq!((depth, limit), (1, 1));
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }

    // Connection cap: with `tenant` and `other` connected, the third
    // concurrent connection gets a typed Goodbye during its handshake.
    let extra = MiningClient::connect(addr, "overflow");
    match extra {
        Err(TransportError::Rejected(WireRejection::TooManyConnections { limit })) => {
            assert_eq!(limit, 2);
        }
        other => panic!(
            "expected TooManyConnections, got {:?}",
            other.map(|_| "a connection")
        ),
    }
    drop(other);

    // The in-flight jobs still settle: cancel and drain them.
    job_a.cancel().expect("cancel a");
    job_b.cancel().expect("cancel b");
    let a = job_a.outcome().expect("cancelled job still settles");
    let b = job_b.outcome().expect("cancelled job still settles");
    assert!(a.outcome.cancelled || !a.outcome.patterns.is_empty());
    assert!(b.outcome.cancelled || !b.outcome.patterns.is_empty());
}

#[test]
fn concurrent_clients_match_in_process_runs_and_disconnect_cancels() {
    const N: usize = 8;
    let service = Arc::new(MiningService::new(ServiceConfig {
        dispatchers: 2,
        ..ServiceConfig::default()
    }));
    service.catalog().register("gid-a", small_graph(1));
    service.catalog().register("gid-b", small_graph(2));
    service.catalog().register("gid-slow", slow_graph(7));
    let (_server, addr) = serve(&service, TransportConfig::default());

    // Ground truth: fresh in-process engine runs, canonically serialized.
    let fresh: Vec<Vec<u8>> = [small_graph(1), small_graph(2)]
        .iter()
        .map(|g| {
            let outcome = request()
                .build()
                .expect("valid request")
                .mine(&GraphSource::Single(g), &mut MineContext::new())
                .expect("fresh mine");
            encode_outcome_semantic(&outcome)
        })
        .collect();

    // One client disconnects mid-stream: submit against the slow graph,
    // take the first streamed pattern, and vanish without waiting.
    let disco = std::thread::spawn(move || {
        let client = MiningClient::connect(addr, "disco").expect("connect");
        let mut job = client.submit("gid-slow", &request()).expect("submit");
        let _first = job.next();
        // Dropping the job and client shuts the socket down mid-job; the
        // server must fire the job's cancel token.
    });

    // N wire clients, alternating graphs — every graph is requested N/2
    // times, so at most one run per graph misses the cache.
    let workers: Vec<_> = (0..N)
        .map(|i| {
            std::thread::spawn(move || {
                let client = MiningClient::connect(addr, &format!("client-{i}")).expect("connect");
                let graph = if i % 2 == 0 { "gid-a" } else { "gid-b" };
                let mut job = client.submit(graph, &request()).expect("submit");
                let mut streamed_supports: Vec<usize> = Vec::new();
                for pattern in job.by_ref() {
                    streamed_supports.push(pattern.support);
                }
                let result = job.outcome().expect("remote mine");
                (i % 2, streamed_supports, result)
            })
        })
        .collect();

    let mut cache_hits = [0usize; 2];
    for worker in workers {
        let (gi, streamed_supports, result) = worker.join().expect("worker thread");
        // Byte-identical to a fresh in-process run of the same request.
        assert_eq!(
            encode_outcome_semantic(&result.outcome),
            fresh[gi],
            "remote outcome differs from the in-process run (graph {gi})"
        );
        // The stream delivered every accepted pattern exactly once
        // (emission order may differ from outcome order).
        let mut outcome_supports: Vec<usize> =
            result.outcome.patterns.iter().map(|p| p.support).collect();
        let mut streamed_sorted = streamed_supports;
        streamed_sorted.sort_unstable();
        outcome_supports.sort_unstable();
        assert_eq!(streamed_sorted, outcome_supports);
        if result.from_cache {
            cache_hits[gi] += 1;
        }
    }
    for (gi, hits) in cache_hits.iter().enumerate() {
        assert!(
            *hits >= N / 2 - 1,
            "graph {gi}: only {hits} of {} requests were cache-served",
            N / 2
        );
    }

    // The disconnected client's job lands as cancelled — not failed.
    disco.join().expect("disco thread");
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.metrics().cancelled == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    let metrics = service.metrics();
    assert!(
        metrics.cancelled >= 1,
        "disconnect did not cancel the in-flight job: {metrics:?}"
    );
    assert_eq!(metrics.failed, 0, "disconnect must not count as a failure");

    // Per-client counters travel the wire in a Stats frame.
    let observer = MiningClient::connect(addr, "observer").expect("connect");
    let stats = observer.stats().expect("stats over the wire");
    let client_names: Vec<&str> = stats.clients.iter().map(|(n, _)| n.as_str()).collect();
    for i in 0..N {
        assert!(
            client_names.contains(&format!("client-{i}").as_str()),
            "client-{i} missing from per-client stats: {client_names:?}"
        );
    }
    let accepted: u64 = stats.clients.iter().map(|(_, s)| s.accepted).sum();
    let streamed: u64 = stats.clients.iter().map(|(_, s)| s.patterns_streamed).sum();
    let bytes: u64 = stats.clients.iter().map(|(_, s)| s.bytes_streamed).sum();
    assert!(accepted > N as u64, "accepted {accepted}");
    assert!(streamed > 0, "no patterns attributed to streaming clients");
    assert!(bytes > 0, "no bytes attributed to streaming clients");
}
