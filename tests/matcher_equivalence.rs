//! ISSUE-1 equivalence properties: the indexed CSR matcher, the bitset
//! support measures and the CSR spider miner must agree exactly with the
//! retained naive reference implementations on random Erdős–Rényi and
//! Barabási–Albert graphs.
//!
//! The matcher checks assert *sequence* equality, not just set equality: the
//! indexed matcher enumerates candidates in the same ascending host-id order
//! as the reference, so its embedding list (and any `limit`-truncated prefix)
//! must be byte-identical — this is what keeps mining results unchanged.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::iso::EdgeExtension;
use spidermine_graph::label::Label;
use spidermine_graph::{generate, iso};
use spidermine_mining::spider::{reference as spider_reference, SpiderCatalog, SpiderMiningConfig};
use spidermine_mining::support;
use std::collections::{BTreeSet, HashSet};

/// Strategy: a random ER or BA host graph plus a small pattern drawn from the
/// same label space (so embeddings actually exist reasonably often).
fn host_and_pattern() -> impl Strategy<Value = (LabeledGraph, LabeledGraph)> {
    (0u64..1_000, 10usize..60, 2u32..8, 0u32..2, 2usize..6).prop_map(
        |(seed, n, labels, family, pattern_vertices)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let host = if family == 0 {
                generate::erdos_renyi_average_degree(&mut rng, n, 3.0, labels)
            } else {
                generate::barabasi_albert(&mut rng, n, 2, labels)
            };
            let pattern = generate::random_connected_pattern(&mut rng, pattern_vertices, labels, 2);
            (host, pattern)
        },
    )
}

/// Naive MNI: one hash set per pattern position (the pre-bitset algorithm).
fn naive_minimum_image(pattern_vertices: usize, embeddings: &[Vec<VertexId>]) -> usize {
    if pattern_vertices == 0 || embeddings.is_empty() {
        return 0;
    }
    (0..pattern_vertices)
        .map(|p| {
            embeddings
                .iter()
                .map(|e| e[p])
                .collect::<HashSet<_>>()
                .len()
        })
        .min()
        .unwrap_or(0)
}

/// Naive greedy disjoint selection over a hash set of used vertices.
fn naive_greedy_disjoint(embeddings: &[Vec<VertexId>]) -> usize {
    let mut used: HashSet<VertexId> = HashSet::new();
    let mut count = 0;
    for e in embeddings {
        if e.iter().any(|v| used.contains(v)) {
            continue;
        }
        used.extend(e.iter().copied());
        count += 1;
    }
    count
}

/// Naive distinct-vertex-set count via a hash set of sorted keys.
fn naive_distinct_count(embeddings: &[Vec<VertexId>]) -> usize {
    let mut seen: HashSet<Vec<VertexId>> = HashSet::new();
    for e in embeddings {
        let mut key = e.clone();
        key.sort_unstable();
        seen.insert(key);
    }
    seen.len()
}

/// All one-edge extensions of `pattern` that at least one of `rows` can
/// realize in `host`, enumerated deterministically (forward by (vertex,
/// label), then closing edges by (u, v)).
fn candidate_extensions(
    host: &LabeledGraph,
    pattern: &LabeledGraph,
    rows: &[Vec<VertexId>],
) -> Vec<EdgeExtension> {
    let mut cands: Vec<EdgeExtension> = Vec::new();
    for p in pattern.vertices() {
        let mut labels: BTreeSet<u32> = BTreeSet::new();
        for row in rows {
            for &h in host.neighbors(row[p.index()]) {
                if !row.contains(&h) {
                    labels.insert(host.label(h).0);
                }
            }
        }
        cands.extend(labels.into_iter().map(|l| EdgeExtension::NewVertex {
            anchor: p,
            label: Label(l),
        }));
    }
    for u in pattern.vertices() {
        for v in pattern.vertices() {
            if u >= v || pattern.has_edge(u, v) {
                continue;
            }
            if rows
                .iter()
                .any(|row| host.has_edge(row[u.index()], row[v.index()]))
            {
                cands.push(EdgeExtension::ClosingEdge { u, v });
            }
        }
    }
    cands
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ISSUE-3 equivalence property: growing a pattern edge by edge while
    /// maintaining its embeddings with `iso::extend_embeddings` yields, at
    /// every step of a random growth chain, exactly the embedding set the
    /// retained scratch matcher finds for the child pattern — the two paths
    /// are byte-identical once both are brought to the canonical sorted
    /// order (the incremental engine enumerates in parent order, the scratch
    /// matcher in its own search order).
    #[test]
    fn incremental_extension_equals_scratch_along_growth_chains(
        seed in 0u64..1_000,
        n in 10usize..45,
        labels in 2u32..7,
        family in 0u32..2,
        steps in 1usize..5,
        choice in 0usize..1_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let host = if family == 0 {
            generate::erdos_renyi_average_degree(&mut rng, n, 3.0, labels)
        } else {
            generate::barabasi_albert(&mut rng, n, 2, labels)
        };
        let Some((u, v)) = host.edges().next() else {
            return Ok(());
        };
        // Chain start: the single-edge pattern of the host's first edge, with
        // its complete (uncapped) embedding set from the scratch matcher.
        let mut pattern =
            LabeledGraph::from_parts(&[host.label(u), host.label(v)], &[(0, 1)]);
        let mut rows = iso::find_embeddings(&pattern, &host, usize::MAX);
        for step in 0..steps {
            // Keep the chain tractable on dense same-label neighborhoods.
            if rows.is_empty() || rows.len() > 20_000 {
                break;
            }
            let cands = candidate_extensions(&host, &pattern, &rows);
            if cands.is_empty() {
                break;
            }
            let ext = cands[(choice + step * 7) % cands.len()];
            let child = iso::apply_edge_extension(&pattern, ext);
            let flat: Vec<VertexId> = rows.iter().flatten().copied().collect();
            let mut out = Vec::new();
            let outcome = iso::extend_embeddings(
                &host,
                pattern.vertex_count(),
                &flat,
                ext,
                usize::MAX,
                &mut out,
            );
            prop_assert!(!outcome.truncated, "unlimited extension never truncates");
            let child_arity = child.vertex_count();
            let mut incremental: Vec<Vec<VertexId>> = out
                .chunks_exact(child_arity)
                .map(<[VertexId]>::to_vec)
                .collect();
            incremental.sort_unstable();
            let mut scratch = iso::find_embeddings(&child, &host, usize::MAX);
            scratch.sort_unstable();
            prop_assert_eq!(&incremental, &scratch, "chain step {} diverged", step);
            pattern = child;
            rows = scratch;
        }
    }

    /// The indexed matcher returns exactly the reference's embedding sequence,
    /// induced and non-induced, with and without a limit.
    #[test]
    fn indexed_matcher_equals_reference((host, pattern) in host_and_pattern()) {
        let unlimited = iso::find_embeddings(&pattern, &host, usize::MAX);
        prop_assert_eq!(
            &unlimited,
            &iso::reference::find_embeddings(&pattern, &host, usize::MAX),
            "non-induced, unlimited"
        );
        prop_assert_eq!(
            iso::find_induced_embeddings(&pattern, &host, usize::MAX),
            iso::reference::find_induced_embeddings(&pattern, &host, usize::MAX),
            "induced, unlimited"
        );
        for limit in [1usize, 2, 7] {
            prop_assert_eq!(
                iso::find_embeddings(&pattern, &host, limit),
                iso::reference::find_embeddings(&pattern, &host, limit),
                "non-induced, limit {}", limit
            );
        }
        // Count helpers agree with the enumeration.
        prop_assert_eq!(
            iso::is_subgraph_of(&pattern, &host),
            !unlimited.is_empty()
        );
    }

    /// The bitset support measures agree with their naive hash-set versions on
    /// embeddings produced by the matcher — so supports are unchanged across
    /// the representation change.
    #[test]
    fn support_measures_unchanged((host, pattern) in host_and_pattern()) {
        let embeddings = iso::find_embeddings(&pattern, &host, 500);
        let k = pattern.vertex_count();
        prop_assert_eq!(
            support::minimum_image_support(k, &embeddings),
            naive_minimum_image(k, &embeddings)
        );
        prop_assert_eq!(
            support::greedy_disjoint_support(&embeddings),
            naive_greedy_disjoint(&embeddings)
        );
        prop_assert_eq!(
            support::distinct_embedding_count(&embeddings),
            naive_distinct_count(&embeddings)
        );
    }

    /// The CSR spider miner produces the exact catalog (same spiders, same
    /// order, same head lists) as the original hash-map implementation.
    #[test]
    fn spider_catalog_unchanged(
        seed in 0u64..1_000,
        n in 10usize..80,
        labels in 2u32..10,
        family in 0u32..2,
        sigma in 1usize..4,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let host = if family == 0 {
            generate::erdos_renyi_average_degree(&mut rng, n, 3.0, labels)
        } else {
            generate::barabasi_albert(&mut rng, n, 2, labels)
        };
        let config = SpiderMiningConfig {
            support_threshold: sigma,
            max_leaves: 4,
            ..SpiderMiningConfig::default()
        };
        let fast = SpiderCatalog::mine(&host, &config);
        let slow = spider_reference::mine(&host, &config);
        prop_assert!(
            spider_reference::catalogs_equal(&fast, &slow),
            "catalogs diverge: csr has {} spiders, reference {}",
            fast.len(),
            slow.len()
        );
        // Both execution paths (sequential in-place and parallel chunked)
        // must match the reference, whatever `mine` picked for this machine.
        for sequential in [true, false] {
            let pinned = SpiderCatalog::mine_with_mode(&host, &config, sequential);
            prop_assert!(
                spider_reference::catalogs_equal(&pinned, &slow),
                "{} catalog path diverges from the reference",
                if sequential { "sequential" } else { "parallel" }
            );
        }
        // Spider-support counting agrees at every vertex.
        for v in host.vertices() {
            prop_assert_eq!(
                fast.matching_at(&host, v),
                spider_reference::matching_at(&fast, &host, v),
                "matching_at diverges at {:?}", v
            );
        }
    }
}
