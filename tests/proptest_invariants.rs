//! Property-based tests on the core invariants of the workspace:
//! graph construction, isomorphism/signature consistency (Theorem 2),
//! support-measure ordering, spider correctness and IO round-trips.

use proptest::prelude::*;
use spidermine::spider_set::SpiderSet;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::label::Label;
use spidermine_graph::{io, iso, signature, traversal};
use spidermine_mining::spider::{SpiderCatalog, SpiderMiningConfig};
use spidermine_mining::support;

/// Strategy: a random small labeled graph given as (labels, edge pairs).
fn arbitrary_graph(max_vertices: usize, max_labels: u32) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_vertices).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..max_labels, n);
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(2 * n));
        (labels, edges).prop_map(|(labels, edges)| {
            let labels: Vec<Label> = labels.into_iter().map(Label).collect();
            let edges: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
            LabeledGraph::from_parts(&labels, &edges)
        })
    })
}

/// Relabels vertex ids of `g` by rotating them, producing an isomorphic graph.
fn rotate_vertices(g: &LabeledGraph, shift: usize) -> LabeledGraph {
    let n = g.vertex_count();
    if n == 0 {
        return g.clone();
    }
    let map = |v: VertexId| VertexId(((v.index() + shift) % n) as u32);
    let mut labels = vec![Label(0); n];
    for v in g.vertices() {
        labels[map(v).index()] = g.label(v);
    }
    let edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (map(u).0, map(v).0)).collect();
    LabeledGraph::from_parts(&labels, &edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The graph structure never contains duplicate or self-loop edges, and
    /// degrees sum to twice the edge count.
    #[test]
    fn graph_construction_invariants(g in arbitrary_graph(12, 5)) {
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        for v in g.vertices() {
            let neighbors = g.neighbors(v);
            prop_assert!(!neighbors.contains(&v), "self loop at {v:?}");
            let mut sorted = neighbors.to_vec();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), neighbors.len(), "duplicate neighbor");
        }
    }

    /// Theorem 2 and its signature analogue: a vertex-id relabeling produces an
    /// isomorphic graph with identical invariant signature and spider-set.
    #[test]
    fn relabeling_preserves_isomorphism_and_signatures(
        g in arbitrary_graph(9, 4),
        shift in 1usize..8,
    ) {
        let h = rotate_vertices(&g, shift);
        prop_assert!(iso::are_isomorphic(&g, &h));
        prop_assert_eq!(
            signature::invariant_signature(&g),
            signature::invariant_signature(&h)
        );
        prop_assert_eq!(SpiderSet::of(&g, 1), SpiderSet::of(&h, 1));
        prop_assert_eq!(SpiderSet::of(&g, 2), SpiderSet::of(&h, 2));
    }

    /// Adding one edge to a graph makes it non-isomorphic to the original
    /// (edge counts differ) and changes nothing about the original's signature.
    #[test]
    fn adding_an_edge_breaks_isomorphism(g in arbitrary_graph(10, 3)) {
        // Find a missing edge, if any.
        let mut extended = g.clone();
        let mut found = None;
        'outer: for u in g.vertices() {
            for v in g.vertices() {
                if u < v && !g.has_edge(u, v) {
                    found = Some((u, v));
                    break 'outer;
                }
            }
        }
        prop_assume!(found.is_some());
        let (u, v) = found.expect("checked above");
        extended.add_edge(u, v);
        prop_assert!(!iso::are_isomorphic(&g, &extended));
        prop_assert_ne!(
            signature::invariant_signature(&g),
            signature::invariant_signature(&extended)
        );
    }

    /// Every embedding returned by the VF2 matcher is injective, label
    /// preserving and maps pattern edges to host edges.
    #[test]
    fn embeddings_are_valid(
        host in arbitrary_graph(12, 3),
        pattern in arbitrary_graph(4, 3),
    ) {
        let embeddings = iso::find_embeddings(&pattern, &host, 50);
        for e in embeddings {
            prop_assert_eq!(e.len(), pattern.vertex_count());
            let mut seen = std::collections::HashSet::new();
            for &hv in &e {
                prop_assert!(seen.insert(hv), "non-injective embedding");
            }
            for p in pattern.vertices() {
                prop_assert_eq!(pattern.label(p), host.label(e[p.index()]));
            }
            for (a, b) in pattern.edges() {
                prop_assert!(host.has_edge(e[a.index()], e[b.index()]));
            }
        }
    }

    /// Support measures are consistently ordered:
    /// greedy-disjoint <= minimum-image <= embedding-count.
    #[test]
    fn support_measures_are_ordered(
        embeddings in proptest::collection::vec(
            proptest::collection::vec(0u32..30, 3),
            0..20,
        )
    ) {
        let embeddings: Vec<Vec<VertexId>> = embeddings
            .into_iter()
            .map(|e| {
                // Make each embedding injective by spreading duplicates.
                let mut seen = std::collections::HashSet::new();
                e.into_iter()
                    .enumerate()
                    .map(|(i, x)| {
                        let mut v = x;
                        while !seen.insert(v) {
                            v += 100 + i as u32;
                        }
                        VertexId(v)
                    })
                    .collect()
            })
            .collect();
        let d = support::greedy_disjoint_support(&embeddings);
        let m = support::minimum_image_support(3, &embeddings);
        let c = support::distinct_embedding_count(&embeddings);
        prop_assert!(d <= m, "disjoint {d} > MNI {m}");
        prop_assert!(m <= c, "MNI {m} > count {c}");
    }

    /// The word-parallel support kernels (single-pass MNI column matrix,
    /// bulk-probe greedy-disjoint) agree exactly with the retained scalar
    /// reference implementations on random embedding sets — including rows
    /// with repeated vertices and ids spanning multiple bitset words.
    #[test]
    fn word_parallel_kernels_match_scalar_reference(
        arity in 1usize..6,
        raw in proptest::collection::vec(proptest::collection::vec(0u32..400, 6), 0..60),
    ) {
        let embeddings: Vec<Vec<VertexId>> = raw
            .into_iter()
            .map(|e| e.into_iter().take(arity).map(VertexId).collect())
            .collect();
        let rows = || embeddings.iter().map(Vec::as_slice);
        prop_assert_eq!(
            support::minimum_image_support_rows(arity, rows(), embeddings.len()),
            support::minimum_image_support_rows_reference(arity, rows(), embeddings.len()),
            "MNI kernel diverged from reference"
        );
        prop_assert_eq!(
            support::greedy_disjoint_support_rows(rows()),
            support::greedy_disjoint_support_rows_reference(rows()),
            "greedy-disjoint kernel diverged from reference"
        );
    }

    /// The dispatched popcount sweep (AVX2 when the host has it, scalar
    /// otherwise) equals the always-compiled scalar reference on arbitrary
    /// word slices — the equivalence witness for both dispatch paths.
    #[test]
    fn popcount_dispatch_matches_scalar(
        words in proptest::collection::vec(0u64..u64::MAX, 0..80),
    ) {
        prop_assert_eq!(
            spidermine_mining::eval::popcount_words(&words),
            spidermine_mining::eval::popcount_words_scalar(&words)
        );
    }

    /// IO round-trip: parsing the serialized form reproduces the graph exactly.
    #[test]
    fn io_roundtrip(g in arbitrary_graph(15, 6)) {
        let text = io::write_graph(&g);
        let back = io::read_graph(&text).expect("parse back");
        prop_assert_eq!(back.vertex_count(), g.vertex_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        prop_assert_eq!(back.labels(), g.labels());
        for (u, v) in g.edges() {
            prop_assert!(back.has_edge(u, v));
        }
    }

    /// Every spider mined by Stage I really matches at every head it reports,
    /// and its support equals its head count.
    #[test]
    fn mined_spiders_match_their_heads(g in arbitrary_graph(20, 4)) {
        let catalog = SpiderCatalog::mine(
            &g,
            &SpiderMiningConfig {
                support_threshold: 2,
                max_leaves: 4,
                ..SpiderMiningConfig::default()
            },
        );
        for spider in catalog.spiders() {
            prop_assert!(spider.support() >= 2);
            prop_assert_eq!(spider.support(), spider.heads.len());
            for &head in spider.heads {
                prop_assert!(spider.matches_at(&g, head));
            }
            // The spider pattern is a star: r-bounded from the head with r=1.
            let pattern = spider.to_pattern();
            prop_assert!(traversal::is_r_bounded_from(&pattern, VertexId(0), 1));
        }
    }

    /// BFS distances satisfy the triangle property along edges: adjacent
    /// vertices' distances from any source differ by at most 1.
    #[test]
    fn bfs_distances_are_lipschitz(g in arbitrary_graph(15, 3)) {
        prop_assume!(g.vertex_count() > 0);
        let dist = traversal::bfs_distances(&g, VertexId(0));
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u.index()], dist[v.index()]);
            if du != traversal::UNREACHABLE && dv != traversal::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv, "one endpoint reachable, the other not");
            }
        }
    }
}

proptest! {
    // Each case runs six miners over four load paths; keep the case count
    // modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Loading a graph through any snapshot path — v1 eager, v2 eager from
    /// bytes, v2 buffered-read, v2 memory-mapped — yields byte-identical
    /// mining outcomes for all six algorithms. This is the contract that
    /// makes the mmap-backed zero-copy path a pure optimisation.
    #[test]
    fn snapshot_load_paths_are_mining_equivalent(g in arbitrary_graph(14, 4)) {
        use spidermine_engine::wire::encode_outcome_semantic;
        use spidermine_engine::{Algorithm, GraphSource, MineContext, MineRequest, Miner as _};
        use spidermine_graph::GraphDatabase;
        use std::sync::atomic::{AtomicUsize, Ordering};

        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "spidermine-prop-snap-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let v1 = dir.join("g.snap1");
        let v2 = dir.join("g.snap2");
        io::save_snapshot(&v1, &g).expect("save v1");
        io::save_snapshot_v2(&v2, &g).expect("save v2");

        let loads: Vec<(&str, LabeledGraph)> = vec![
            ("v1-eager", io::load_snapshot(&v1).expect("v1 load")),
            ("v2-eager", io::load_snapshot_v2(&v2, io::LoadMode::Eager).expect("v2 eager")),
            ("v2-buffered", io::load_snapshot_v2(&v2, io::LoadMode::Buffered).expect("v2 buffered")),
            ("v2-mapped", io::load_snapshot_v2(&v2, io::LoadMode::Mapped).expect("v2 mapped")),
        ];
        for algo in Algorithm::all() {
            let mut reference: Option<Vec<u8>> = None;
            for (path_name, loaded) in &loads {
                // A fresh engine per run: no state can leak between paths.
                let engine = MineRequest::new(algo)
                    .support_threshold(2)
                    .k(2)
                    .d_max(4)
                    .seed(7)
                    .build()
                    .expect("valid request");
                let db;
                let source = if algo.wants_transactions() {
                    db = GraphDatabase::new(vec![loaded.clone(), loaded.clone()]);
                    GraphSource::Transactions(&db)
                } else {
                    GraphSource::Single(loaded)
                };
                let outcome = engine
                    .mine(&source, &mut MineContext::new())
                    .unwrap_or_else(|e| panic!("{algo} on {path_name}: {e}"));
                let bytes = encode_outcome_semantic(&outcome);
                match &reference {
                    None => reference = Some(bytes),
                    Some(expected) => prop_assert_eq!(
                        &bytes, expected,
                        "{} outcome differs between load paths at {}", algo, path_name
                    ),
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
