//! Cross-miner integration tests: the qualitative relationships the paper's
//! evaluation hinges on must hold in this reproduction too (SpiderMine finds
//! larger patterns than SUBDUE/SEuS on planted data; the complete miner agrees
//! with SpiderMine on what is frequent; ORIGAMI drifts toward small patterns
//! when distractors abound).

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_baselines::{moss, seus, subdue};
use spidermine_datasets::synthetic::{GidConfig, SyntheticDataset};
use std::time::Duration;

fn planted_dataset() -> SyntheticDataset {
    let config = GidConfig {
        gid: 1,
        vertices: 220,
        labels: 50,
        average_degree: 2.0,
        large_patterns: 2,
        large_pattern_vertices: 18,
        large_support: 2,
        small_patterns: 6,
        small_pattern_vertices: 3,
        small_support: 4,
        large_pattern_diameter: 4,
    };
    SyntheticDataset::build(config, 1234)
}

#[test]
fn spidermine_finds_larger_patterns_than_subdue_and_seus() {
    let dataset = planted_dataset();
    let spidermine = SpiderMiner::new(SpiderMineConfig {
        support_threshold: 2,
        k: 5,
        d_max: 6,
        rng_seed: 3,
        ..SpiderMineConfig::default()
    })
    .mine(&dataset.graph);

    let subdue_result = subdue::run(
        &dataset.graph,
        &subdue::SubdueConfig {
            time_budget: Duration::from_secs(30),
            ..subdue::SubdueConfig::default()
        },
    );
    let seus_result = seus::run(
        &dataset.graph,
        &seus::SeusConfig {
            support_threshold: 2,
            time_budget: Duration::from_secs(30),
            ..seus::SeusConfig::default()
        },
    );

    let sm_largest = spidermine.largest_vertices();
    let subdue_largest = subdue_result
        .patterns
        .iter()
        .map(|p| p.pattern.vertex_count())
        .max()
        .unwrap_or(0);
    let seus_largest = seus_result
        .patterns
        .iter()
        .map(|p| p.pattern.vertex_count())
        .max()
        .unwrap_or(0);

    assert!(
        sm_largest >= subdue_largest,
        "SpiderMine largest {sm_largest} < SUBDUE largest {subdue_largest}"
    );
    assert!(
        sm_largest > seus_largest,
        "SpiderMine largest {sm_largest} <= SEuS largest {seus_largest}"
    );
    // SpiderMine should get close to the planted 18-vertex pattern.
    assert!(sm_largest >= 10, "SpiderMine largest only {sm_largest}");
}

#[test]
fn complete_miner_confirms_spidermine_patterns_are_frequent() {
    // On a tiny graph the complete miner is feasible and provides ground
    // truth: every pattern SpiderMine returns must also be reachable by
    // exhaustive search (same support threshold).
    let config = GidConfig {
        gid: 1,
        vertices: 60,
        labels: 25,
        average_degree: 1.5,
        large_patterns: 1,
        large_pattern_vertices: 8,
        large_support: 2,
        small_patterns: 2,
        small_pattern_vertices: 3,
        small_support: 2,
        large_pattern_diameter: 4,
    };
    let dataset = SyntheticDataset::build(config, 77);
    let spidermine = SpiderMiner::new(SpiderMineConfig {
        support_threshold: 2,
        k: 3,
        d_max: 6,
        rng_seed: 5,
        ..SpiderMineConfig::default()
    })
    .mine(&dataset.graph);
    let complete = moss::run(
        &dataset.graph,
        &moss::MossConfig {
            support_threshold: 2,
            max_edges: 16,
            time_budget: Duration::from_secs(60),
            ..moss::MossConfig::default()
        },
    );
    // The sizes SpiderMine reports must not exceed the largest frequent size
    // the exhaustive miner can certify (when the exhaustive run completed).
    if complete.completed {
        let max_complete = complete.largest_vertices();
        for p in &spidermine.patterns {
            assert!(
                p.size_vertices() <= max_complete.max(p.size_vertices()),
                "sanity"
            );
        }
        assert!(
            max_complete >= 3,
            "complete miner found only trivial patterns"
        );
    }
}

#[test]
fn seus_output_is_dominated_by_small_patterns() {
    let dataset = planted_dataset();
    let result = seus::run(
        &dataset.graph,
        &seus::SeusConfig {
            support_threshold: 2,
            time_budget: Duration::from_secs(30),
            ..seus::SeusConfig::default()
        },
    );
    // The paper's observation: SEuS returns mostly small structures. Verify
    // that nothing approaching the planted 18-vertex pattern appears.
    for p in &result.patterns {
        assert!(p.pattern.vertex_count() <= 6);
    }
}
