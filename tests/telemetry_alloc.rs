//! The disarmed-cost contract of the telemetry layer (ISSUE 10): with
//! tracing disarmed, every hot-path hook — span open/close, instants, retry
//! events, counter increments, histogram observations — must allocate
//! **zero** bytes. Guarded with the same byte-counting global allocator as
//! `snapshot_alloc.rs`; this file is its own test binary because a
//! `#[global_allocator]` is per-binary.

use spidermine_telemetry::{self as telemetry, Registry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

struct CountingAllocator;

static BYTES_ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(new_size, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Measures the bytes `f` allocates, taking the minimum over several
/// attempts: the counter is process-global, so an unrelated harness thread
/// can leak noise into one window, but noise is strictly additive.
fn min_bytes_allocated(mut f: impl FnMut()) -> usize {
    let mut fewest = usize::MAX;
    for _ in 0..5 {
        let before = BYTES_ALLOCATED.load(Ordering::SeqCst);
        f();
        let after = BYTES_ALLOCATED.load(Ordering::SeqCst);
        fewest = fewest.min(after - before);
    }
    fewest
}

#[test]
fn disarmed_hooks_allocate_nothing() {
    telemetry::disarm();
    // Handles resolved up front, exactly as the scheduler holds them: the
    // get-or-create lookup (which does allocate, once) is setup, not the
    // hot path.
    let registry = Registry::new();
    let counter = registry.counter("hot_counter_total");
    let gauge = registry.gauge("hot_gauge");
    let histogram = registry.histogram("hot_nanos");

    let bytes = min_bytes_allocated(|| {
        for i in 0..1000u64 {
            // The full per-pattern / per-stage hook set of a mining run.
            counter.inc();
            counter.add(3);
            gauge.set(i);
            histogram.observe(i * 17);
            histogram.observe_duration(Duration::from_nanos(i));
            let span = telemetry::span_start("hot_span", i, 0);
            telemetry::instant("hot_instant", i, span);
            telemetry::span_end("hot_span", i, span);
            telemetry::span_complete("hot_span", i, 0, 1);
            telemetry::retry_event("hot_retry", i, 1);
            telemetry::fault_event("hot_fault", i, 1);
        }
    });
    assert_eq!(
        bytes, 0,
        "disarmed telemetry hooks allocated {bytes} bytes over 1000 iterations"
    );
}

#[test]
fn metric_reads_after_writes_stay_consistent() {
    // Sanity companion: the cells written above are real (not optimized
    // away) and snapshot coherently.
    let registry = Registry::new();
    let counter = registry.counter("check_total");
    let histogram = registry.histogram("check_nanos");
    for i in 0..100 {
        counter.inc();
        histogram.observe(i);
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("check_total"), 100);
    assert_eq!(snap.histogram("check_nanos").count, 100);
}
