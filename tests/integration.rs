//! End-to-end integration tests spanning the whole workspace: datasets →
//! SpiderMine → results, on configurations shaped like the paper's evaluation
//! (scaled down so the suite stays fast).

use spidermine::{SpiderMineConfig, SpiderMiner, TransactionMiner};
use spidermine_datasets::synthetic::{GidConfig, SyntheticDataset};
use spidermine_datasets::transactions::{TransactionConfig, TransactionDataset};
use spidermine_graph::traversal;
use spidermine_mining::embedding::EmbeddedPattern;

/// A GID-1-like dataset scaled down for test speed: same structure
/// (ER background, injected 30-vertex large patterns with 2 embeddings,
/// small distractors), smaller background.
fn small_gid_like() -> SyntheticDataset {
    let config = GidConfig {
        gid: 1,
        vertices: 250,
        labels: 60,
        average_degree: 2.0,
        large_patterns: 2,
        large_pattern_vertices: 20,
        large_support: 2,
        small_patterns: 5,
        small_pattern_vertices: 3,
        small_support: 2,
        large_pattern_diameter: 4,
    };
    SyntheticDataset::build(config, 99)
}

fn default_miner(k: usize, d_max: u32) -> SpiderMiner {
    SpiderMiner::new(SpiderMineConfig {
        support_threshold: 2,
        k,
        d_max,
        rng_seed: 7,
        ..SpiderMineConfig::default()
    })
}

#[test]
fn spidermine_recovers_large_planted_patterns_from_gid_style_data() {
    let dataset = small_gid_like();
    let result = default_miner(10, 6).mine(&dataset.graph);
    assert!(!result.patterns.is_empty(), "mining returned nothing");
    // The largest returned pattern should be in the ballpark of the injected
    // 20-vertex patterns, far larger than the 3-vertex distractors.
    assert!(
        result.largest_vertices() >= 12,
        "largest pattern only has {} vertices",
        result.largest_vertices()
    );
    // Every returned pattern respects the support threshold and carries valid
    // embeddings.
    for p in &result.patterns {
        assert!(p.support >= 2);
        let ep = EmbeddedPattern::new(p.pattern.clone(), p.embeddings.clone());
        assert!(ep.validate_against(&dataset.graph));
        assert!(traversal::is_connected(&p.pattern));
    }
}

#[test]
fn spidermine_beats_the_small_distractors() {
    let dataset = small_gid_like();
    let result = default_miner(5, 6).mine(&dataset.graph);
    let distractor_size = dataset.config.small_pattern_vertices;
    // At least the top pattern must exceed every distractor.
    assert!(result.largest_vertices() > distractor_size);
}

#[test]
fn stats_reflect_the_three_stages() {
    let dataset = small_gid_like();
    let result = default_miner(5, 6).mine(&dataset.graph);
    let stats = &result.stats;
    assert!(stats.spider_count > 0, "Stage I produced no spiders");
    assert!(stats.seed_count >= 2, "Stage II drew fewer than 2 seeds");
    assert_eq!(stats.stage_two_iterations, 3, "Dmax=6, r=1 -> 3 iterations");
    assert!(stats.total_time >= stats.stage_one_time);
}

#[test]
fn diameter_of_returned_patterns_is_controlled() {
    let dataset = small_gid_like();
    let d_max = 6;
    let result = default_miner(5, d_max).mine(&dataset.graph);
    for p in &result.patterns {
        // Growth stops once the bound is reached; a single extra layer may
        // overshoot by at most 2 (see DESIGN.md), never more.
        assert!(
            p.diameter <= d_max + 2,
            "pattern diameter {} far exceeds Dmax {}",
            p.diameter,
            d_max
        );
    }
}

#[test]
fn transaction_setting_end_to_end() {
    let config = TransactionConfig {
        transactions: 5,
        vertices_per_transaction: 70,
        average_degree: 3.0,
        labels: 30,
        large_patterns: 2,
        large_pattern_vertices: 12,
        large_pattern_transactions: 4,
        small_patterns: 5,
        small_pattern_vertices: 4,
        small_pattern_transactions: 3,
    };
    let dataset = TransactionDataset::build(config, 55);
    let result = TransactionMiner::new(SpiderMineConfig {
        support_threshold: 3,
        k: 5,
        d_max: 6,
        rng_seed: 7,
        ..SpiderMineConfig::default()
    })
    .mine(&dataset.database);
    assert!(!result.patterns.is_empty());
    for p in &result.patterns {
        assert!(p.transaction_support >= 3);
        assert!(p.transaction_support <= dataset.database.len());
    }
    // The top pattern should be clearly larger than the small distractors.
    assert!(result.patterns[0].pattern.vertex_count() >= 6);
}

#[test]
fn mining_is_reproducible_across_runs() {
    let dataset = small_gid_like();
    let a = default_miner(5, 6).mine(&dataset.graph);
    let b = default_miner(5, 6).mine(&dataset.graph);
    let key = |r: &spidermine::MiningResult| -> Vec<(usize, usize, usize)> {
        r.patterns
            .iter()
            .map(|p| (p.size_vertices(), p.size_edges(), p.support))
            .collect()
    };
    assert_eq!(key(&a), key(&b));
}
