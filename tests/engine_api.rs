//! Workspace-level tests of the unified engine API.
//!
//! The redesign's contract: every algorithm reached through the [`Miner`]
//! trait produces **byte-identical** patterns to its pre-redesign entry point
//! (the old entry points are thin shims over the same `*_with`
//! implementations), invalid requests are rejected with the offending field
//! named, and a fired `CancelToken` mid-run yields a partial result instead
//! of a panic.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine::{SpiderMineConfig, SpiderMiner, TransactionMiner};
use spidermine_baselines::{moss, origami, seus, subdue};
use spidermine_baselines::{MossConfig, OrigamiConfig, SeusConfig, SubdueConfig};
use spidermine_engine::{
    Algorithm, CancelToken, GraphSource, MemoOracle, MineContext, MineError, MineRequest, Miner,
    MossEngine, OrigamiEngine, OwnedGraphSource, PatternStream, ProgressEvent, SeusEngine,
    SpiderMineEngine, SubdueEngine, SupportMeasure, SupportOracle, TransactionEngine,
};
use spidermine_graph::{generate, GraphDatabase, LabeledGraph};
use std::sync::Arc;

fn planted_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 250, 2.0, 30);
    let pattern = generate::random_connected_pattern(&mut rng, 10, 30, 3);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

fn planted_db(seed: u64) -> GraphDatabase {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pattern = generate::random_connected_pattern(&mut rng, 7, 20, 2);
    let mut db = GraphDatabase::default();
    for _ in 0..4 {
        let mut g = generate::erdos_renyi_average_degree(&mut rng, 50, 2.0, 20);
        generate::inject_pattern(&mut rng, &mut g, &pattern, 1, 2);
        db.push(g);
    }
    db
}

/// Structural fingerprint of a pattern graph: labels plus sorted edge list.
fn graph_key(g: &LabeledGraph) -> (Vec<u32>, Vec<(u32, u32)>) {
    (
        g.labels().iter().map(|l| l.0).collect(),
        g.edges().map(|(u, v)| (u.0, v.0)).collect(),
    )
}

fn spidermine_config(seed: u64) -> SpiderMineConfig {
    SpiderMineConfig {
        support_threshold: 2,
        k: 5,
        d_max: 8,
        rng_seed: seed,
        ..SpiderMineConfig::default()
    }
}

#[test]
fn spidermine_engine_is_byte_identical_to_legacy_entry_point() {
    let host = planted_graph(11);
    let config = spidermine_config(17);
    let legacy = SpiderMiner::new(config.clone()).mine(&host);
    let engine = SpiderMineEngine::new(config).expect("valid config");
    let outcome = engine
        .mine(&GraphSource::Single(&host), &mut MineContext::new())
        .expect("single graph accepted");
    assert_eq!(outcome.algorithm, Algorithm::SpiderMine);
    assert_eq!(outcome.patterns.len(), legacy.patterns.len());
    for (new, old) in outcome.patterns.iter().zip(&legacy.patterns) {
        assert_eq!(graph_key(&new.pattern), graph_key(&old.pattern));
        assert_eq!(new.support, old.support);
        assert_eq!(new.embeddings, old.embeddings);
    }
    // The engine records the driver's stage timings.
    let stages: Vec<&str> = outcome.stages.iter().map(|t| t.stage).collect();
    assert_eq!(stages, vec!["spiders", "identify", "recover", "select"]);
}

#[test]
fn transaction_engine_is_byte_identical_to_legacy_entry_point() {
    let db = planted_db(9);
    let config = SpiderMineConfig {
        support_threshold: 3,
        ..spidermine_config(3)
    };
    let legacy = TransactionMiner::new(config.clone()).mine(&db);
    let engine = TransactionEngine::new(config).expect("valid config");
    let outcome = engine
        .mine(&GraphSource::Transactions(&db), &mut MineContext::new())
        .expect("transaction db accepted");
    assert_eq!(outcome.patterns.len(), legacy.patterns.len());
    for (new, old) in outcome.patterns.iter().zip(&legacy.patterns) {
        assert_eq!(graph_key(&new.pattern), graph_key(&old.pattern));
        assert_eq!(new.support, old.transaction_support);
    }
}

#[test]
fn subdue_engine_is_byte_identical_to_legacy_entry_point() {
    let host = planted_graph(23);
    let config = SubdueConfig::default();
    let legacy = subdue::run(&host, &config);
    let outcome = SubdueEngine::new(config)
        .expect("valid config")
        .mine(&GraphSource::Single(&host), &mut MineContext::new())
        .expect("single graph accepted");
    assert_eq!(outcome.patterns.len(), legacy.patterns.len());
    for (new, old) in outcome.patterns.iter().zip(&legacy.patterns) {
        assert_eq!(graph_key(&new.pattern), graph_key(&old.pattern));
        assert_eq!(new.support, old.instances);
    }
}

#[test]
fn moss_engine_is_byte_identical_to_legacy_entry_point() {
    let host = planted_graph(31);
    let config = MossConfig {
        max_edges: 6,
        ..MossConfig::default()
    };
    let legacy = moss::run(&host, &config);
    let outcome = MossEngine::new(config)
        .expect("valid config")
        .mine(&GraphSource::Single(&host), &mut MineContext::new())
        .expect("single graph accepted");
    assert_eq!(outcome.patterns.len(), legacy.patterns.len());
    for (new, old) in outcome.patterns.iter().zip(&legacy.patterns) {
        assert_eq!(graph_key(&new.pattern), graph_key(&old.pattern));
        assert_eq!(new.support, old.support);
    }
}

#[test]
fn seus_engine_is_byte_identical_to_legacy_entry_point() {
    let host = planted_graph(41);
    let config = SeusConfig::default();
    let legacy = seus::run(&host, &config);
    let outcome = SeusEngine::new(config)
        .expect("valid config")
        .mine(&GraphSource::Single(&host), &mut MineContext::new())
        .expect("single graph accepted");
    assert_eq!(outcome.patterns.len(), legacy.patterns.len());
    for (new, old) in outcome.patterns.iter().zip(&legacy.patterns) {
        assert_eq!(graph_key(&new.pattern), graph_key(&old.pattern));
        assert_eq!(new.support, old.support);
    }
}

#[test]
fn origami_engine_is_byte_identical_to_legacy_entry_point() {
    let db = planted_db(47);
    let config = OrigamiConfig::default();
    let legacy = origami::run(&db, &config);
    let outcome = OrigamiEngine::new(config)
        .expect("valid config")
        .mine(&GraphSource::Transactions(&db), &mut MineContext::new())
        .expect("transaction db accepted");
    assert_eq!(outcome.patterns.len(), legacy.patterns.len());
    for (new, old) in outcome.patterns.iter().zip(&legacy.patterns) {
        assert_eq!(graph_key(&new.pattern), graph_key(&old.pattern));
        assert_eq!(new.support, old.support);
    }
}

#[test]
fn every_algorithm_is_reachable_through_the_request_builder() {
    let host = planted_graph(53);
    let db = planted_db(53);
    for algo in Algorithm::all() {
        let engine = MineRequest::new(algo)
            .support_threshold(2)
            .k(3)
            .d_max(6)
            .seed(5)
            .build()
            .expect("valid request");
        assert_eq!(engine.algorithm(), algo);
        let source = if algo.wants_transactions() {
            GraphSource::Transactions(&db)
        } else {
            GraphSource::Single(&host)
        };
        let outcome = engine
            .mine(&source, &mut MineContext::new())
            .unwrap_or_else(|e| panic!("{algo} failed: {e}"));
        assert_eq!(outcome.algorithm, algo);
        assert!(!outcome.cancelled);
        assert!(!outcome.stages.is_empty(), "{algo} recorded no stages");
    }
}

#[test]
fn invalid_requests_name_the_offending_field() {
    for (field, request) in [
        (
            "support_threshold",
            MineRequest::new(Algorithm::SpiderMine).support_threshold(0),
        ),
        ("k", MineRequest::new(Algorithm::Subdue).k(0)),
        (
            "epsilon",
            MineRequest::new(Algorithm::SpiderMine).epsilon(1.5),
        ),
        ("radius", MineRequest::new(Algorithm::SpiderMine).radius(0)),
        (
            "threads",
            MineRequest::new(Algorithm::SpiderMine).threads(0),
        ),
    ] {
        match request.build() {
            Err(MineError::InvalidConfig { field: named, .. }) => assert_eq!(named, field),
            other => panic!("expected InvalidConfig({field}), got {other:?}"),
        }
    }
}

/// ISSUE-4: the work-stealing runtime's reductions are order-preserving, so
/// mining is **byte-identical at every thread count** — pattern structures,
/// supports, retained embeddings, and the merge accounting all match across
/// widths for all six algorithms. Width 8 oversubscribes small CI runners on
/// purpose: preemption-heavy schedules are where nondeterminism would show.
#[test]
fn outcomes_are_byte_identical_across_thread_counts() {
    let host = planted_graph(83);
    let db = planted_db(83);
    type OutcomeKey = (
        Vec<((Vec<u32>, Vec<(u32, u32)>), usize, Vec<Vec<u32>>)>,
        usize,
    );
    for algo in Algorithm::all() {
        let outcome_at = |threads: usize| -> OutcomeKey {
            let engine = MineRequest::new(algo)
                .support_threshold(2)
                .k(4)
                .d_max(6)
                .seed(19)
                .threads(threads)
                .build()
                .expect("valid request");
            let source = if algo.wants_transactions() {
                GraphSource::Transactions(&db)
            } else {
                GraphSource::Single(&host)
            };
            let outcome = engine
                .mine(&source, &mut MineContext::new())
                .unwrap_or_else(|e| panic!("{algo} failed: {e}"));
            assert_eq!(outcome.threads, threads, "{algo} ran at the wrong width");
            (
                outcome
                    .patterns
                    .iter()
                    .map(|p| {
                        let rows: Vec<Vec<u32>> = p
                            .embeddings
                            .iter()
                            .map(|e| e.iter().map(|v| v.0).collect())
                            .collect();
                        (graph_key(&p.pattern), p.support, rows)
                    })
                    .collect(),
                outcome.dropped_embeddings,
            )
        };
        let sequential = outcome_at(1);
        for threads in [2usize, 8] {
            assert_eq!(
                sequential,
                outcome_at(threads),
                "{algo} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn raw_engine_constructors_also_validate() {
    assert_eq!(
        SubdueEngine::new(SubdueConfig {
            min_instances: 0,
            ..SubdueConfig::default()
        })
        .expect_err("rejected")
        .field(),
        Some("min_instances")
    );
    assert_eq!(
        MossEngine::new(MossConfig {
            support_threshold: 0,
            ..MossConfig::default()
        })
        .expect_err("rejected")
        .field(),
        Some("support_threshold")
    );
    assert_eq!(
        OrigamiEngine::new(OrigamiConfig {
            samples: 0,
            ..OrigamiConfig::default()
        })
        .expect_err("rejected")
        .field(),
        Some("samples")
    );
    assert_eq!(
        SeusEngine::new(SeusConfig {
            max_vertices: 1,
            ..SeusConfig::default()
        })
        .expect_err("rejected")
        .field(),
        Some("max_vertices")
    );
    assert!(SpiderMineEngine::new(SpiderMineConfig {
        support_threshold: 0,
        ..SpiderMineConfig::default()
    })
    .is_err());
}

#[test]
fn mismatched_source_is_a_typed_error() {
    let host = planted_graph(59);
    let db = planted_db(59);
    let origami = MineRequest::new(Algorithm::Origami).build().unwrap();
    let err = origami
        .mine(&GraphSource::Single(&host), &mut MineContext::new())
        .expect_err("origami needs transactions");
    assert!(matches!(err, MineError::UnsupportedSource { .. }));
    let spidermine = MineRequest::new(Algorithm::SpiderMine).build().unwrap();
    let err = spidermine
        .mine(&GraphSource::Transactions(&db), &mut MineContext::new())
        .expect_err("spidermine needs a single graph");
    assert!(matches!(err, MineError::UnsupportedSource { .. }));
}

/// The redesign's cancellation contract: firing the token mid-Stage-II makes
/// the run wind down and return partial results — no panic, no error.
#[test]
fn cancellation_mid_stage_two_yields_partial_outcome() {
    let host = planted_graph(61);
    let engine = MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(5)
        .d_max(8)
        .seed(13)
        .build()
        .expect("valid request");
    let mut ctx = MineContext::new();
    let token = ctx.cancel_token();
    ctx = ctx.on_progress(move |e| {
        if matches!(
            e,
            ProgressEvent::Iteration {
                stage: "identify",
                iteration: 0
            }
        ) {
            token.fire();
        }
    });
    let outcome = engine
        .mine(&GraphSource::Single(&host), &mut ctx)
        .expect("cancellation is not an error");
    assert!(outcome.cancelled, "the outcome reports the cancellation");
    // A full (uncancelled) run finds at least as many patterns.
    let full = engine
        .mine(&GraphSource::Single(&host), &mut MineContext::new())
        .expect("full run");
    assert!(!full.cancelled);
    assert!(outcome.patterns.len() <= full.patterns.len());
}

/// ISSUE-3: the eval layer's `SupportOracle` memoizes per canonical pattern
/// through the `MineContext`, so a context reused across runs answers the
/// second run's pattern-level support queries from the memo — and the
/// memoized answers reproduce the first run's outcome exactly.
#[test]
fn support_oracle_memoizes_across_runs_through_the_context() {
    let host = planted_graph(71);
    let engine = MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(4)
        .d_max(6)
        .seed(31)
        .build()
        .expect("valid request");
    let oracle = Arc::new(MemoOracle::new(SupportMeasure::MinimumImage));
    let mut ctx = MineContext::new().with_support_oracle(oracle.clone());
    let first = engine
        .mine(&GraphSource::Single(&host), &mut ctx)
        .expect("first run");
    let after_first = oracle.stats();
    assert!(after_first.misses > 0, "the first run evaluates supports");
    let second = engine
        .mine(&GraphSource::Single(&host), &mut ctx)
        .expect("second run");
    let after_second = oracle.stats();
    assert!(
        after_second.hits > after_first.hits,
        "the second run answers from the shared memo (hits {} -> {})",
        after_first.hits,
        after_second.hits
    );
    // Memoized supports are the first run's values, so the outcomes agree.
    let key = |o: &spidermine_engine::MineOutcome| -> Vec<_> {
        o.patterns
            .iter()
            .map(|p| (graph_key(&p.pattern), p.support))
            .collect()
    };
    assert_eq!(key(&first), key(&second));
    assert_eq!(first.dropped_embeddings, 0);
}

#[test]
fn streamed_patterns_match_the_outcome() {
    let host = planted_graph(67);
    let engine = MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(4)
        .d_max(6)
        .seed(29)
        .build()
        .expect("valid request");
    let stream = PatternStream::spawn(
        engine.clone(),
        OwnedGraphSource::Single(host.clone()),
        CancelToken::new(),
    );
    let mut streamed: Vec<_> = stream.map(|p| (graph_key(&p.pattern), p.support)).collect();
    let outcome = engine
        .mine(&GraphSource::Single(&host), &mut MineContext::new())
        .expect("mine");
    let mut returned: Vec<_> = outcome
        .patterns
        .iter()
        .map(|p| (graph_key(&p.pattern), p.support))
        .collect();
    // Streaming is in acceptance order, the outcome is ranked: compare as
    // multisets.
    streamed.sort();
    returned.sort();
    assert_eq!(streamed, returned);
}
