//! The no-re-freeze contract: a graph loaded from a snapshot ships with its
//! CSR index pre-seeded, so neither `csr()` nor catalog registration may
//! rebuild (re-freeze) the flat arrays. Guarded with a byte-counting
//! allocator: a re-freeze of an N-vertex graph would allocate at least the
//! offsets array (4(N+1) bytes), orders of magnitude above the bookkeeping
//! the registration path is allowed.

use spidermine_datasets::synthetic;
use spidermine_graph::io::{self, LoadMode};
use spidermine_service::GraphCatalog;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static BYTES_ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(new_size, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const VERTICES: usize = 4000;

/// Bytes a CSR re-freeze could not possibly stay under: the offsets array
/// alone is `4 * (VERTICES + 1)` bytes. Registration bookkeeping (a name, an
/// `Arc`, a map entry) is a few hundred bytes.
const REFREEZE_FLOOR: usize = 4 * (VERTICES + 1);

fn snapshot_path() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spidermine-alloc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("host.snap2");
    if !path.exists() {
        let (graph, _) = synthetic::scalability_graph(VERTICES, 42);
        io::save_snapshot_v2(&path, &graph).expect("save");
    }
    path
}

/// Measures the bytes `f` allocates, taking the minimum over several
/// attempts: the counter is process-global, so an unrelated harness thread
/// can leak noise into one window, but noise is strictly additive.
fn min_bytes_allocated(mut f: impl FnMut()) -> usize {
    let mut fewest = usize::MAX;
    for _ in 0..5 {
        let before = BYTES_ALLOCATED.load(Ordering::SeqCst);
        f();
        fewest = fewest.min(BYTES_ALLOCATED.load(Ordering::SeqCst) - before);
    }
    fewest
}

#[test]
fn csr_access_on_a_loaded_graph_allocates_nothing() {
    let path = snapshot_path();
    for mode in [LoadMode::Buffered, LoadMode::Mapped] {
        let graph = io::load_snapshot_v2(&path, mode).expect("load");
        // Pattern injection grows the generator's graph slightly past
        // VERTICES; compare against the graph itself.
        let n = graph.vertex_count();
        assert!(n >= VERTICES);
        let bytes = min_bytes_allocated(|| {
            let csr = graph.csr();
            assert_eq!(csr.vertex_count(), n);
        });
        assert_eq!(
            bytes, 0,
            "csr() on a {mode:?}-loaded graph allocated {bytes} bytes (re-freeze?)"
        );
    }
}

#[test]
fn catalog_registration_does_not_refreeze_loaded_graphs() {
    let path = snapshot_path();
    let catalog = GraphCatalog::new();
    // Warm-up: the map's first insert may allocate its table.
    catalog.register(
        "warmup",
        io::load_snapshot_v2(&path, LoadMode::Buffered).expect("load"),
    );
    let mut i = 0;
    let bytes = min_bytes_allocated(|| {
        let graph = io::load_snapshot_v2(&path, LoadMode::Mapped).expect("load");
        let before = BYTES_ALLOCATED.load(Ordering::SeqCst);
        let snapshot = catalog.register(format!("g{i}"), graph);
        let registered = BYTES_ALLOCATED.load(Ordering::SeqCst) - before;
        assert!(snapshot.is_loaded());
        i += 1;
        // Only charge the register() window; the load above is the setup.
        assert!(
            registered < REFREEZE_FLOOR,
            "registering a snapshot-loaded graph allocated {registered} bytes \
             (>= the {REFREEZE_FLOOR}-byte re-freeze floor)"
        );
    });
    // `bytes` includes the load itself; the assertion above is the contract.
    let _ = bytes;
}

#[test]
fn lazy_label_index_is_the_only_deferred_section() {
    // Faulting the label index on a mapped graph is allowed to allocate
    // (decode bookkeeping), but must not re-derive the CSR arrays first:
    // vertices_with_label on the packed index goes straight to the mapping.
    let path = snapshot_path();
    let graph = io::load_snapshot_v2(&path, LoadMode::Mapped).expect("load");
    let csr = graph.csr();
    // First touch decodes the packed section.
    let label = graph.label(spidermine_graph::VertexId(0));
    let first = csr.vertices_with_label(label).len();
    assert!(first > 0);
    // Subsequent touches are allocation-free reads of the decoded index.
    let bytes = min_bytes_allocated(|| {
        assert_eq!(csr.vertices_with_label(label).len(), first);
    });
    assert_eq!(bytes, 0, "warm label-index read allocated {bytes} bytes");
}
