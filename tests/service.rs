//! Workspace-level tests of the service layer (ISSUE 5): snapshot
//! persistence, concurrent-job determinism with cache accounting, and
//! deadline/cancellation semantics.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_engine::{Algorithm, GraphSource, MineContext, MineOutcome, MineRequest, Miner};
use spidermine_graph::{generate, io, LabeledGraph};
use spidermine_service::{JobStatus, MiningService, ServiceConfig, ServiceError};
use std::sync::Arc;
use std::time::Duration;

/// A host with planted structure, big enough that SpiderMine takes real time
/// (so deadlines and cancellations land mid-run) but small enough for CI.
fn host_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 400, 2.0, 30);
    let pattern = generate::random_connected_pattern(&mut rng, 10, 30, 3);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

/// A small host for the fast determinism runs.
fn small_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 120, 2.0, 8);
    let pattern = generate::random_connected_pattern(&mut rng, 6, 8, 2);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

fn request() -> MineRequest {
    MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(5)
        .d_max(6)
        .seed(11)
}

/// Canonical byte serialization of everything semantic in an outcome
/// (patterns, supports, embeddings, flags — not wall-clock or width).
fn outcome_bytes(o: &MineOutcome) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut s = String::new();
    writeln!(
        s,
        "algo={};cancelled={};timed_out={};dropped={}",
        o.algorithm, o.cancelled, o.timed_out, o.dropped_embeddings
    )
    .expect("write to string");
    for p in &o.patterns {
        s.push_str(&io::write_graph(&p.pattern));
        writeln!(s, "support={}", p.support).expect("write to string");
        for e in &p.embeddings {
            writeln!(s, "{e:?}").expect("write to string");
        }
    }
    s.into_bytes()
}

#[test]
fn snapshot_roundtrip_through_files_is_byte_identical() {
    let g = host_graph(5);
    let bytes = io::snapshot_bytes(&g);
    let dir = std::env::temp_dir().join(format!("spidermine-svc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("host.snap");
    io::save_snapshot(&path, &g).expect("save");
    let back = io::load_snapshot(&path).expect("load");
    // Saved → loaded → re-saved: identical bytes, stable fingerprint.
    assert_eq!(io::snapshot_bytes(&back), bytes);
    io::save_snapshot(&path, &back).expect("re-save");
    assert_eq!(std::fs::read(&path).expect("read back"), bytes);
    assert_eq!(
        io::snapshot_fingerprint(&bytes).expect("header"),
        spidermine_graph::signature::graph_fingerprint(&back),
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_snapshots_fail_typed_never_panic() {
    let bytes = io::snapshot_bytes(&small_graph(9));
    // Truncations at every section boundary and a sweep of interior cuts.
    for len in [0, 4, 8, 12, 20, 27, 28, 40, bytes.len() - 1] {
        let err = io::graph_from_snapshot(&bytes[..len.min(bytes.len())])
            .expect_err("truncated snapshot decoded");
        assert!(
            matches!(
                err,
                io::SnapshotError::Truncated { .. } | io::SnapshotError::ChecksumMismatch { .. }
            ),
            "unexpected error for prefix {len}: {err:?}"
        );
    }
    // Bit flips across the whole file: typed errors, no panics.
    for i in (0..bytes.len()).step_by(7) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x01;
        assert!(
            io::graph_from_snapshot(&corrupt).is_err(),
            "bit flip at byte {i} decoded"
        );
    }
}

#[test]
fn concurrent_identical_jobs_are_deterministic_and_cache_served() {
    const K: usize = 4;
    let service = MiningService::new(ServiceConfig {
        dispatchers: 4,
        ..ServiceConfig::default()
    });
    service.catalog().register("net-a", small_graph(1));
    service.catalog().register("net-b", small_graph(2));

    // Fresh single-run outcomes straight through the engine, as ground truth
    // for "cached == fresh".
    let fresh: Vec<Vec<u8>> = [small_graph(1), small_graph(2)]
        .iter()
        .map(|g| {
            let outcome = request()
                .build()
                .expect("valid request")
                .mine(&GraphSource::Single(g), &mut MineContext::new())
                .expect("fresh mine");
            outcome_bytes(&outcome)
        })
        .collect();

    // K identical jobs per graph, all in flight before any wait.
    let handles: Vec<(usize, spidermine_service::JobHandle)> = (0..K)
        .flat_map(|_| {
            [("net-a", 0usize), ("net-b", 1usize)]
                .map(|(name, gi)| (gi, service.submit(name, request()).expect("submit")))
        })
        .collect();

    let mut from_cache = [0usize; 2];
    for (gi, handle) in &handles {
        let outcome = handle.wait().expect("mine");
        assert_eq!(handle.status(), JobStatus::Done);
        assert!(!outcome.cancelled);
        assert_eq!(
            outcome_bytes(&outcome),
            fresh[*gi],
            "job #{} outcome differs from a fresh single run",
            handle.id()
        );
        if handle.metrics().expect("terminal").from_cache {
            from_cache[*gi] += 1;
        }
    }
    // The cache (plus single-flight dedup) serves all but the first job per
    // graph: ≥ K−1 hits each.
    for (gi, hits) in from_cache.iter().enumerate() {
        assert!(
            *hits >= K - 1,
            "graph {gi}: only {hits} of {K} jobs were cache-served"
        );
    }
    let m = service.metrics();
    assert!(m.cache.hits >= 2 * (K as u64 - 1));
    assert_eq!(m.completed, 2 * K as u64);
    assert_eq!(m.failed, 0);
    assert!(m.patterns_emitted > 0);
}

#[test]
fn deadline_expiry_yields_partial_results_not_an_error() {
    // Direct engine path: the request's deadline_ms arms the context.
    let miner = request().deadline_ms(1).build().expect("valid request");
    let g = host_graph(7);
    let outcome = miner
        .mine(&GraphSource::Single(&g), &mut MineContext::new())
        .expect("timeout is not an error");
    assert!(outcome.timed_out, "1ms deadline must fire mid-run");
    assert!(outcome.cancelled, "a timeout is a cancellation");

    // Service path: the job lands Cancelled with its partial outcome.
    let service = MiningService::new(ServiceConfig::default());
    service.catalog().register("big", host_graph(7));
    let handle = service
        .submit("big", request().deadline_ms(1))
        .expect("submit");
    let outcome = handle.wait().expect("timeout is not an error");
    assert!(outcome.timed_out);
    assert!(outcome.cancelled);
    assert_eq!(handle.status(), JobStatus::Cancelled);
    // Partial results are not cached: an identical follow-up mines afresh.
    assert_eq!(service.metrics().cache.hits, 0);

    // Without a deadline the flag stays clear.
    let outcome = request()
        .build()
        .expect("valid request")
        .mine(
            &GraphSource::Single(&small_graph(3)),
            &mut MineContext::new(),
        )
        .expect("mine");
    assert!(!outcome.timed_out);
}

#[test]
fn mid_run_cancellation_yields_partial_results_not_an_error() {
    let service = MiningService::new(ServiceConfig::default());
    service.catalog().register("big", host_graph(13));
    let handle = service.submit("big", request()).expect("submit");
    // Let the run get going, then cancel it mid-flight.
    std::thread::sleep(Duration::from_millis(50));
    handle.cancel();
    let outcome = handle.wait().expect("cancellation is not an error");
    assert!(outcome.cancelled);
    assert!(!outcome.timed_out);
    assert_eq!(handle.status(), JobStatus::Cancelled);
}

#[test]
fn admission_control_rejections_are_typed() {
    let service = MiningService::new(ServiceConfig {
        queue_depth: 0,
        ..ServiceConfig::default()
    });
    service.catalog().register("g", small_graph(4));
    assert!(matches!(
        service.submit("g", request()),
        Err(ServiceError::QueueFull { .. })
    ));
    assert!(matches!(
        service.submit("ghost", request()),
        Err(ServiceError::UnknownGraph(_))
    ));
    match service.submit("g", request().deadline_ms(0)) {
        Err(ServiceError::InvalidRequest(e)) => assert_eq!(e.field(), Some("deadline_ms")),
        other => panic!("expected InvalidRequest naming deadline_ms, got {other:?}"),
    }
}

#[test]
fn catalog_snapshots_share_one_csr_across_handles() {
    let service = MiningService::new(ServiceConfig::default());
    let registered = service.catalog().register("g", small_graph(4));
    let fetched = service.catalog().get("g").expect("registered");
    assert!(Arc::ptr_eq(&registered, &fetched));
    assert_eq!(
        registered.fingerprint(),
        spidermine_graph::signature::graph_fingerprint(fetched.graph())
    );
}

#[test]
fn catalog_restore_roundtrip_mines_identically_and_serves_cache() {
    let dir = std::env::temp_dir().join(format!("spidermine-svc-restore-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // First life of the service: register three graphs, persist, record
    // fresh ground-truth outcomes, then drop everything.
    let fresh: Vec<(String, Vec<u8>)> = {
        let service = MiningService::new(ServiceConfig::default());
        for (name, seed) in [("alpha", 1), ("beta", 2), ("gamma", 3)] {
            service.catalog().register(name, small_graph(seed));
        }
        service.catalog().persist(&dir).expect("persist");
        service
            .catalog()
            .names()
            .into_iter()
            .map(|name| {
                let outcome = service
                    .submit(&name, request())
                    .expect("submit")
                    .wait()
                    .expect("mine");
                (name, outcome_bytes(&outcome))
            })
            .collect()
    };

    // Second life: a brand-new service restores the whole catalog in one
    // call, header-only (nothing loaded until a job arrives).
    let service = MiningService::new(ServiceConfig::default());
    let restored = service.catalog().restore(&dir).expect("restore");
    assert_eq!(restored.len(), 3);
    for name in &restored {
        assert!(
            !service.catalog().get(name).expect("restored").is_loaded(),
            "{name} was materialized during restore"
        );
    }

    for (name, expected) in &fresh {
        let first = service
            .submit(name, request())
            .expect("submit")
            .wait()
            .expect("mine restored graph");
        assert_eq!(
            &outcome_bytes(&first),
            expected,
            "{name}: restored outcome differs from the pre-restart run"
        );
        // The same request again must be served from the result cache — the
        // fingerprint survived the persist/restore round-trip.
        let again = service.submit(name, request()).expect("resubmit");
        let second = again.wait().expect("cached mine");
        assert_eq!(&outcome_bytes(&second), expected);
        assert!(
            again.metrics().expect("terminal").from_cache,
            "{name}: second identical run missed the cache"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jobs_against_a_corrupt_restored_snapshot_are_rejected_at_submit() {
    let dir = std::env::temp_dir().join(format!("spidermine-svc-corrupt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let service = MiningService::new(ServiceConfig::default());
        service.catalog().register("g", small_graph(5));
        service.catalog().persist(&dir).expect("persist");
    }
    let service = MiningService::new(ServiceConfig::default());
    service.catalog().restore(&dir).expect("restore");
    // Corrupt a core section of the (sole) snapshot file after restore but
    // before first use: admission must fail typed, not panic a dispatcher.
    let snap_file = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "snap"))
        .expect("snapshot file");
    let mut bytes = std::fs::read(&snap_file).expect("read");
    bytes[io::SNAPSHOT_PAGE] ^= 0xff;
    std::fs::write(&snap_file, &bytes).expect("write");
    assert!(matches!(
        service.submit("g", request()),
        Err(ServiceError::Snapshot(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}
