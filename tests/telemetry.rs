//! Span-completeness tests for the telemetry layer (ISSUE 10): every job
//! the scheduler runs — including the awkward paths (cache hit, cancel,
//! deadline, panic-retry) — must leave a *balanced* span tree in the
//! capture buffer: every `SpanStart` matched by exactly one `SpanEnd`, every
//! parent reference pointing at a span of the same trace, exactly one root
//! `job` span, and exactly one terminal instant.
//!
//! Tracing state (the armed flag and the capture buffer) is process-global,
//! so every test here serializes on one mutex and filters captured events by
//! the job's own trace id ([`JobHandle::trace`]).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_engine::{Algorithm, MineRequest};
use spidermine_faultline::{FaultInjector, FaultPlan, RetryPolicy};
use spidermine_graph::{generate, LabeledGraph};
use spidermine_service::{MiningService, ServiceConfig, SubmitOptions};
use spidermine_telemetry::{self as telemetry, Event, EventKind};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Serializes the tests in this binary: they share the global armed flag
/// and capture buffer.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn small_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 120, 2.0, 8);
    let pattern = generate::random_connected_pattern(&mut rng, 6, 8, 2);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

/// A host big enough that cancellation and deadlines land mid-run.
fn host_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 400, 2.0, 30);
    let pattern = generate::random_connected_pattern(&mut rng, 10, 30, 3);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

fn request(seed: u64) -> MineRequest {
    MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(5)
        .d_max(6)
        .seed(seed)
}

const TERMINALS: [&str; 3] = ["job_done", "job_cancelled", "job_failed"];

/// Events of one trace, polled until its root `job` span has closed (the
/// dispatcher records the tail of the tree just after `wait()` returns).
fn events_of(trace: u64) -> Vec<Event> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let events: Vec<Event> = telemetry::capture_snapshot()
            .into_iter()
            .filter(|e| e.trace == trace)
            .collect();
        let job_closed = events
            .iter()
            .any(|e| e.kind == EventKind::SpanEnd && e.name == "job");
        if job_closed || Instant::now() >= deadline {
            return events;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The core invariant: a balanced span tree plus exactly one terminal
/// instant. Returns the terminal's name.
fn assert_balanced(events: &[Event], trace: u64) -> &'static str {
    assert!(
        !events.is_empty(),
        "no events captured for trace {trace:#x}"
    );
    // span id -> (name, parent, closed)
    let mut spans: HashMap<u64, (&'static str, u64, bool)> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::SpanStart => {
                assert_ne!(e.span, 0, "span id 0 on a start: {e:?}");
                let prior = spans.insert(e.span, (e.name, e.parent, false));
                assert!(prior.is_none(), "span id {0} opened twice", e.span);
            }
            EventKind::SpanEnd => {
                let entry = spans
                    .get_mut(&e.span)
                    .unwrap_or_else(|| panic!("end without start: {e:?}"));
                assert_eq!(entry.0, e.name, "start/end name mismatch for {e:?}");
                assert!(!entry.2, "span {0} closed twice", e.span);
                entry.2 = true;
            }
            _ => {}
        }
    }
    for (span, (name, parent, closed)) in &spans {
        assert!(closed, "span `{name}` ({span}) never closed");
        if *parent != 0 {
            assert!(
                spans.contains_key(parent),
                "span `{name}` has parent {parent} outside its trace"
            );
        }
    }
    let roots: Vec<_> = spans
        .values()
        .filter(|(name, parent, _)| *parent == 0 && *name == "job")
        .collect();
    assert_eq!(roots.len(), 1, "expected exactly one root `job` span");
    let terminals: Vec<&'static str> = events
        .iter()
        .filter(|e| e.kind == EventKind::Instant && TERMINALS.contains(&e.name))
        .map(|e| e.name)
        .collect();
    assert_eq!(
        terminals.len(),
        1,
        "expected one terminal, got {terminals:?}"
    );
    terminals[0]
}

fn span_count(events: &[Event], name: &str) -> usize {
    events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart && e.name == name)
        .count()
}

#[test]
fn normal_run_produces_balanced_tree_with_engine_span() {
    let _serial = serial();
    telemetry::arm();
    telemetry::start_capture();
    let service = MiningService::new(ServiceConfig::default());
    service.catalog().register("net", small_graph(3));
    let handle = service.submit("net", request(21)).expect("admit");
    let trace = handle.trace();
    assert_ne!(trace, 0, "armed jobs always carry a trace id");
    handle.wait().expect("job runs");
    let events = events_of(trace);
    assert_eq!(assert_balanced(&events, trace), "job_done");
    assert_eq!(span_count(&events, "queued"), 1);
    assert_eq!(span_count(&events, "running"), 1);
    assert_eq!(span_count(&events, "engine_mine"), 1);
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::Instant && e.name == "admitted"),
        "admission instant missing"
    );
    telemetry::stop_capture();
    telemetry::disarm();
}

#[test]
fn cache_hit_tree_balances_without_rerunning_the_engine() {
    let _serial = serial();
    telemetry::arm();
    telemetry::start_capture();
    let service = MiningService::new(ServiceConfig::default());
    service.catalog().register("net", small_graph(3));
    service
        .submit("net", request(22))
        .expect("admit")
        .wait()
        .expect("leader runs");
    let hit = service.submit("net", request(22)).expect("admit");
    let trace = hit.trace();
    hit.wait().expect("cache hit");
    let events = events_of(trace);
    assert_eq!(assert_balanced(&events, trace), "job_done");
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::Instant && e.name == "cache_hit"),
        "cache-served job should record a cache_hit instant"
    );
    assert_eq!(
        span_count(&events, "engine_mine"),
        0,
        "a cache hit must not re-enter the engine"
    );
    telemetry::stop_capture();
    telemetry::disarm();
}

#[test]
fn cancelled_job_still_balances_its_spans() {
    let _serial = serial();
    telemetry::arm();
    telemetry::start_capture();
    let service = MiningService::new(ServiceConfig::default());
    service.catalog().register("net", host_graph(5));
    let handle = service.submit("net", request(23)).expect("admit");
    let trace = handle.trace();
    handle.cancel();
    handle.wait().expect("cancelled jobs settle with partials");
    let events = events_of(trace);
    // The cancel races the run: either it landed (job_cancelled) or the job
    // finished first (job_done). Balance holds either way.
    let terminal = assert_balanced(&events, trace);
    assert!(
        terminal == "job_cancelled" || terminal == "job_done",
        "unexpected terminal {terminal}"
    );
    telemetry::stop_capture();
    telemetry::disarm();
}

#[test]
fn deadline_expiry_balances_and_reports_done() {
    let _serial = serial();
    telemetry::arm();
    telemetry::start_capture();
    let service = MiningService::new(ServiceConfig::default());
    service.catalog().register("net", host_graph(5));
    let handle = service
        .submit("net", request(24).deadline_ms(1))
        .expect("admit");
    let trace = handle.trace();
    let _outcome = handle
        .wait()
        .expect("deadline yields a partial, not an error");
    let events = events_of(trace);
    // An expired deadline winds the run down through the cooperative cancel
    // flag, so the terminal is `job_cancelled` when the deadline landed
    // mid-run and `job_done` when the run beat it. Balance — the property
    // under test — must hold either way.
    let terminal = assert_balanced(&events, trace);
    assert!(
        terminal == "job_done" || terminal == "job_cancelled",
        "unexpected terminal {terminal}"
    );
    telemetry::stop_capture();
    telemetry::disarm();
}

#[test]
fn panic_retry_closes_both_running_spans_and_records_the_retry() {
    let _serial = serial();
    telemetry::arm();
    telemetry::start_capture();
    let service = MiningService::new(ServiceConfig {
        retry: RetryPolicy::fast(3),
        ..ServiceConfig::default()
    });
    service.catalog().register("net", small_graph(4));
    let plan = FaultPlan::parse("exec:0:panic").expect("plan parses");
    let injector = FaultInjector::install(&plan);
    let handle = service
        .submit_with_options("net", request(25), SubmitOptions::default())
        .expect("admit");
    let trace = handle.trace();
    let result = handle.wait();
    drop(injector);
    result.expect("one injected panic retries to success");
    let events = events_of(trace);
    assert_eq!(assert_balanced(&events, trace), "job_done");
    assert_eq!(
        span_count(&events, "running"),
        2,
        "the panicked attempt and the retry each get a closed `running` span"
    );
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::Retry && e.name == "exec_panic_retry"),
        "retry event missing"
    );
    telemetry::stop_capture();
    telemetry::disarm();
}
