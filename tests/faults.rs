//! ISSUE 9 fault-plan sweep suite: the service must survive *every* seeded
//! fault plan — disk, execution, and wire — without a panic or a hang, and
//! every operation must either succeed (byte-identical to a fault-free run,
//! under the engine's semantic encoding), retry to success, or fail with a
//! typed error. 220 seeded plans total (80 disk + 60 exec + 80 wire), plus
//! directed proof scenarios: reconnect-and-resume served byte-identically
//! from the result cache, graceful drain resolving every waiter, and the
//! heartbeat/idle-timeout reaper.
//!
//! The injector is process-global, so every test here starts by taking
//! `SERIAL`: one test's plan must never fire inside another test's I/O.
//! (Other test binaries are separate processes and cannot be affected.)

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_engine::wire::encode_outcome_semantic;
use spidermine_engine::{Algorithm, GraphSource, MineContext, MineRequest, Miner};
use spidermine_faultline::{FaultInjector, FaultPlan, FaultSite, RetryPolicy};
use spidermine_graph::io::LoadMode;
use spidermine_graph::{generate, io, LabeledGraph};
use spidermine_service::{GraphCatalog, MiningService, ServiceConfig, SubmitOptions};
use spidermine_transport::{MiningClient, MiningServer, ResilientClient, TransportConfig};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Serializes all tests in this binary around the process-global injector.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    // A panicking test (its own bug) must not wedge the rest of the suite.
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `body` under a watchdog: a scenario that outlives `timeout` is a
/// hang, and hangs are failures — the suite must never sit silent in CI.
fn with_watchdog<T: Send + 'static>(
    name: &str,
    timeout: Duration,
    body: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let _ = tx.send(body());
        })
        .expect("spawn watchdog worker");
    match rx.recv_timeout(timeout) {
        Ok(value) => {
            let _ = worker.join();
            value
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match worker.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(_) => unreachable!("worker exited without sending"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("scenario `{name}` hung past {timeout:?}")
        }
    }
}

/// A small host that mines in milliseconds.
fn small_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 120, 2.0, 8);
    let pattern = generate::random_connected_pattern(&mut rng, 6, 8, 2);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

/// A host big enough that a drain deadline lands mid-run.
fn slow_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 1200, 2.0, 30);
    let pattern = generate::random_connected_pattern(&mut rng, 10, 30, 3);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

fn request(seed: u64) -> MineRequest {
    MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(5)
        .d_max(6)
        .seed(seed)
}

/// Fault-free ground truth: a fresh engine run, semantically encoded.
fn reference_bytes(host: &LabeledGraph, seed: u64) -> Vec<u8> {
    let outcome = request(seed)
        .build()
        .expect("valid request")
        .mine(&GraphSource::Single(host), &mut MineContext::new())
        .expect("fault-free mine");
    encode_outcome_semantic(&outcome)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spidermine-faults-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

// ---------------------------------------------------------------------------
// Sweep 1: disk faults (probe / read / write), 80 seeded plans.
// ---------------------------------------------------------------------------

#[test]
fn disk_fault_sweep_typed_errors_and_clean_recovery() {
    let _serial = serial();
    with_watchdog("disk-sweep", Duration::from_secs(120), || {
        let dir = temp_dir("disk");
        let host = small_graph(3);
        let vertices = host.vertex_count();
        let snap = dir.join("host.snap");
        io::save_snapshot(&snap, &host).expect("fault-free save");

        const SITES: [FaultSite; 3] = [
            FaultSite::DiskProbe,
            FaultSite::DiskRead,
            FaultSite::DiskWrite,
        ];
        for seed in 0..80u64 {
            let plan = FaultPlan::random_for(seed, &SITES);
            let injector = FaultInjector::install(&plan);

            // A faulted save must be atomic: either the file lands whole or
            // the target is untouched — never a torn snapshot. (Verified
            // after disarm, below, so the verification probe itself is not
            // under injection.)
            let out = dir.join(format!("out-{seed}.snap"));
            let catalog = GraphCatalog::new();
            catalog.register("host", host.clone());
            let saved = catalog.save("host", &out);

            // A faulted lazy load yields a typed error or the real graph —
            // and nothing it does can poison a later, fault-free load.
            match catalog.register_snapshot_file("lazy", &snap, LoadMode::Buffered) {
                Ok(snapshot) => match snapshot.ensure_loaded() {
                    Ok(graph) => assert_eq!(graph.vertex_count(), vertices, "plan `{plan}`"),
                    Err(error) => {
                        // Typed, and carries a classification the retry
                        // machinery can act on.
                        let _ = error.is_transient();
                    }
                },
                Err(_probe_error) => {}
            }
            drop(injector);

            // Atomicity, checked disarmed: a clean save probes whole; a
            // faulted save left either nothing or a whole file behind.
            match saved {
                Ok(()) => {
                    io::probe_snapshot(&out).expect("saved snapshot must probe clean");
                }
                Err(error) => {
                    assert!(
                        !out.exists() || io::probe_snapshot(&out).is_ok(),
                        "plan `{plan}` left a torn snapshot: {error}"
                    );
                }
            }

            // Disarmed: the same file loads cleanly — no sticky residue from
            // transient faults (satellite 2's contract).
            let clean = GraphCatalog::new();
            let snapshot = clean
                .register_snapshot_file("lazy", &snap, LoadMode::Buffered)
                .expect("disarmed probe");
            assert_eq!(
                snapshot
                    .ensure_loaded()
                    .expect("disarmed load")
                    .vertex_count(),
                vertices,
                "seed {seed}: load after disarm must succeed"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    });
}

// ---------------------------------------------------------------------------
// Sweep 2: execution faults (injected panics / stalls), 60 seeded plans.
// ---------------------------------------------------------------------------

#[test]
fn exec_fault_sweep_retries_to_identical_or_fails_typed() {
    let _serial = serial();
    with_watchdog("exec-sweep", Duration::from_secs(240), || {
        let host = small_graph(4);
        let service = MiningService::new(ServiceConfig {
            dispatchers: 2,
            retry: RetryPolicy::fast(3),
            ..ServiceConfig::default()
        });
        service.catalog().register("net", host.clone());

        for seed in 0..60u64 {
            let plan = FaultPlan::random_for(seed, &[FaultSite::ExecRun]);
            let injector = FaultInjector::install(&plan);
            // A fresh request seed per plan: cache hits never re-execute, so
            // only fresh runs exercise the execution site.
            let run_seed = 10_000 + seed;
            let result = service
                .submit_with_options("net", request(run_seed), SubmitOptions::default())
                .expect("admission is not under fault here")
                .wait();
            drop(injector);
            match result {
                Ok(outcome) => {
                    // Retried-to-success must be byte-identical to an
                    // uninterrupted run: a retry re-executes from scratch,
                    // never resumes half-done state.
                    assert_eq!(
                        encode_outcome_semantic(&outcome),
                        reference_bytes(&host, run_seed),
                        "plan `{plan}` produced a divergent outcome"
                    );
                }
                Err(error) => {
                    // Retries exhausted: typed, and classified transient
                    // (a panicked run is tail tolerance, not a verdict).
                    assert!(
                        error.is_transient(),
                        "plan `{plan}` gave a non-transient error: {error}"
                    );
                }
            }
        }
        // The sweep's injected panics are visible in the retry counters.
        assert!(
            service.metrics().retries > 0,
            "60 exec plans fired no retries"
        );
        service.shutdown();
    });
}

// ---------------------------------------------------------------------------
// Sweep 3: wire faults (read/write errors, bit-flips, truncations,
// disconnects), 80 seeded plans against a live server.
// ---------------------------------------------------------------------------

#[test]
fn wire_fault_sweep_resilient_client_recovers_or_fails_typed() {
    let _serial = serial();
    with_watchdog("wire-sweep", Duration::from_secs(240), || {
        let host = small_graph(5);
        let reference = reference_bytes(&host, 11);
        let service = Arc::new(MiningService::new(ServiceConfig::default()));
        service.catalog().register("net", host);
        let server = MiningServer::bind("127.0.0.1:0", service, TransportConfig::default())
            .expect("bind server");
        let addr = server.local_addr().to_string();

        // Prime the cache so every sweep iteration is a fast replay.
        let prime = MiningClient::connect(&addr, "primer").expect("connect");
        let primed = prime
            .submit("net", &request(11))
            .expect("submit")
            .outcome()
            .expect("prime mine");
        assert_eq!(encode_outcome_semantic(&primed.outcome), reference);
        drop(prime);

        const SITES: [FaultSite; 2] = [FaultSite::WireRead, FaultSite::WireWrite];
        let mut recovered = 0u32;
        for seed in 0..80u64 {
            let plan = FaultPlan::random_for(seed, &SITES);
            let injector = FaultInjector::install(&plan);
            let client = match ResilientClient::connect(
                &addr,
                &format!("chaos-{seed}"),
                RetryPolicy::fast(4),
            ) {
                Ok(client) => client,
                // Even the handshake can be under fault; a typed failure
                // after bounded retries is an accepted outcome. (It is not
                // always transient: a bit-flip that corrupts the server's
                // view of the Hello surfaces as a protocol-level Goodbye.)
                Err(error) => {
                    let _ = error.to_string();
                    continue;
                }
            };
            match client.mine("net", &request(11)) {
                Ok(result) => {
                    assert_eq!(
                        encode_outcome_semantic(&result.outcome),
                        reference,
                        "plan `{plan}` delivered divergent bytes"
                    );
                    if client.reconnects() > 0 || client.retries() > 0 {
                        recovered += 1;
                    }
                }
                Err(error) => {
                    // Bounded retries exhausted — the error must be the
                    // transient kind that justified retrying, or a typed
                    // rejection. Never a panic, never a hang.
                    let _ = error.to_string();
                }
            }
            drop(injector);
        }
        // The sweep must actually exercise the recovery path, not just the
        // fault-free fast path.
        assert!(
            recovered > 0,
            "80 wire plans never exercised reconnect-resume"
        );
    });
}

// ---------------------------------------------------------------------------
// Directed proofs.
// ---------------------------------------------------------------------------

/// Reconnect-and-resume, end to end: a mid-replay disconnect severs the
/// stream; the resilient client reconnects, resubmits under the same
/// canonical cache key, and receives byte-identical results from the cache.
#[test]
fn reconnect_resume_is_cache_served_and_byte_identical() {
    let _serial = serial();
    with_watchdog("reconnect-resume", Duration::from_secs(60), || {
        let host = small_graph(6);
        let reference = reference_bytes(&host, 11);
        let service = Arc::new(MiningService::new(ServiceConfig::default()));
        service.catalog().register("net", host);
        let server = MiningServer::bind("127.0.0.1:0", service, TransportConfig::default())
            .expect("bind server");
        let addr = server.local_addr().to_string();

        // Prime the cache fault-free.
        let prime = MiningClient::connect(&addr, "primer").expect("connect");
        let primed = prime
            .submit("net", &request(11))
            .expect("submit")
            .outcome()
            .expect("prime mine");
        assert!(
            primed.outcome.patterns.len() >= 2,
            "scenario needs a few streamed patterns to sever mid-replay"
        );
        drop(prime);

        // With a single client and no heartbeats, wire writes are causally
        // ordered: HelloAck(0) < Request(1) < Accepted(2) < Pattern(3) …
        // nth=4 lands mid-replay, after the client has already consumed the
        // first streamed pattern.
        let plan = FaultPlan::parse("wire-write:4:disconnect").expect("valid spec");
        let injector = FaultInjector::install(&plan);
        let client =
            ResilientClient::connect(&addr, "resumer", RetryPolicy::fast(4)).expect("connect");
        let result = client.mine("net", &request(11)).expect("resumed mine");
        assert_eq!(injector.fired_count(), 1, "the disconnect must have fired");
        drop(injector);

        assert_eq!(
            encode_outcome_semantic(&result.outcome),
            reference,
            "resumed outcome must be byte-identical to the fault-free run"
        );
        assert!(result.from_cache, "the resubmission must be cache-served");
        assert!(
            client.reconnects() >= 1,
            "a severed stream must force a reconnect"
        );
    });
}

/// Graceful drain over the wire: in-flight jobs (and their parked
/// duplicates) all resolve — finished or cancelled-partial, never hung —
/// the client hears a typed `Draining` first, and the listener closes.
#[test]
fn server_drain_resolves_every_waiter_and_stops_accepting() {
    let _serial = serial();
    // No injector needed, but hold an empty plan so concurrent sweep tests
    // (which do install plans) cannot fire into this scenario's sockets.
    let _quiesce = FaultInjector::install(&FaultPlan::new());
    with_watchdog("server-drain", Duration::from_secs(60), || {
        let service = Arc::new(MiningService::new(ServiceConfig {
            dispatchers: 1,
            ..ServiceConfig::default()
        }));
        service.catalog().register("big", slow_graph(7));
        let mut server =
            MiningServer::bind("127.0.0.1:0", service.clone(), TransportConfig::default())
                .expect("bind server");
        let addr = server.local_addr();

        let client = MiningClient::connect(addr, "drainee").expect("connect");
        // Two identical slow requests: the second parks on the first via
        // single-flight; both waiters must resolve through the drain.
        let job_a = client.submit("big", &request(21)).expect("submit a");
        let job_b = client.submit("big", &request(21)).expect("submit b");
        let waiter_a = std::thread::spawn(move || job_a.outcome());
        let waiter_b = std::thread::spawn(move || job_b.outcome());

        // Let the lead job actually start mining before draining.
        std::thread::sleep(Duration::from_millis(150));
        let drain_client = client.clone();
        let clean = server.shutdown(Duration::from_millis(250));
        assert!(!clean, "a multi-second job cannot finish a 250ms deadline");

        // The drain announcement reached the client before the close.
        assert!(
            drain_client.is_draining(),
            "client never saw the Draining frame"
        );

        // Both waiters resolve: cancelled partial outcomes, not errors, and
        // certainly not hangs (the watchdog enforces that).
        let out_a = waiter_a.join().expect("waiter a");
        let out_b = waiter_b.join().expect("waiter b");
        for out in [out_a, out_b] {
            let out = out.expect("drained job settles with a partial outcome");
            assert!(
                out.outcome.cancelled,
                "a job cut by the drain deadline reports cancelled"
            );
        }

        // The listener is gone: new connections are refused outright.
        assert!(
            TcpStream::connect(addr).is_err() || MiningClient::connect(addr, "late").is_err(),
            "a drained server must not accept new clients"
        );

        // The in-process drain on the shared service is now a no-op (queue
        // empty), and reports clean.
        assert!(service.drain(Duration::from_millis(100)));
    });
}

/// In-process drain: running and queued jobs all settle inside the
/// deadline's cancellation, and every handle resolves.
#[test]
fn service_drain_cancels_stragglers_and_settles_queued_jobs() {
    let _serial = serial();
    let _quiesce = FaultInjector::install(&FaultPlan::new());
    with_watchdog("service-drain", Duration::from_secs(60), || {
        let service = MiningService::new(ServiceConfig {
            dispatchers: 1,
            ..ServiceConfig::default()
        });
        service.catalog().register("big", slow_graph(8));
        // One running job, one queued behind it (single dispatcher).
        let running = service.submit("big", request(31)).expect("submit running");
        let queued = service.submit("big", request(32)).expect("submit queued");
        std::thread::sleep(Duration::from_millis(100));

        let start = Instant::now();
        let clean = service.drain(Duration::from_millis(300));
        assert!(!clean, "slow jobs cannot drain clean in 300ms");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "drain must return promptly after cancelling stragglers"
        );

        // Every handle settles; the cut-off job is cancelled-partial.
        let running = running.wait().expect("running job settles");
        assert!(running.cancelled);
        let queued = queued.wait().expect("queued job settles");
        assert!(queued.cancelled);

        // Post-drain, admission is closed — typed, not hung.
        assert!(service.submit("big", request(33)).is_err());
    });
}

/// The idle reaper: a half-open connection (no frames, no heartbeats) is
/// reaped after the announced window and releases its slot, while a
/// heartbeating client survives arbitrarily long idle spells.
#[test]
fn idle_connections_are_reaped_but_heartbeats_keep_clients_alive() {
    let _serial = serial();
    let _quiesce = FaultInjector::install(&FaultPlan::new());
    with_watchdog("idle-reap", Duration::from_secs(60), || {
        let service = Arc::new(MiningService::new(ServiceConfig::default()));
        service.catalog().register("net", small_graph(9));
        let server = MiningServer::bind(
            "127.0.0.1:0",
            service,
            TransportConfig {
                idle_timeout: Some(Duration::from_millis(200)),
                ..TransportConfig::default()
            },
        )
        .expect("bind server");
        let addr = server.local_addr();

        // A real client: handshakes, learns the window, heartbeats at a
        // third of it — and stays usable far past several windows.
        let client = MiningClient::connect(addr, "beater").expect("connect");
        assert_eq!(client.idle_timeout(), Some(Duration::from_millis(200)));

        // A half-open socket: TCP-connected, then silent forever.
        let half_open = TcpStream::connect(addr).expect("raw connect");
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.connection_count() > 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(
            server.connection_count(),
            1,
            "the silent connection was never reaped"
        );
        drop(half_open);

        // Several idle windows later, the heartbeating client still works.
        std::thread::sleep(Duration::from_millis(700));
        let outcome = client
            .submit("net", &request(11))
            .expect("idle client must still be accepted")
            .outcome()
            .expect("mine after idling");
        assert!(!outcome.outcome.patterns.is_empty());
    });
}

/// `connect_with_policy` surfaces attempt counts and backs off with jitter
/// until the server appears (satellite 1).
#[test]
fn connect_with_policy_retries_until_server_appears() {
    let _serial = serial();
    let _quiesce = FaultInjector::install(&FaultPlan::new());
    with_watchdog("connect-backoff", Duration::from_secs(60), || {
        // Reserve an address, then release it so the first attempts refuse.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
            listener.local_addr().expect("probe addr")
        };
        let service = Arc::new(MiningService::new(ServiceConfig::default()));
        let ready = Arc::new(AtomicBool::new(false));
        let server_thread = {
            let service = service.clone();
            let ready = ready.clone();
            std::thread::spawn(move || {
                // Let a couple of connect attempts fail first.
                std::thread::sleep(Duration::from_millis(120));
                let server =
                    MiningServer::bind(addr, service, TransportConfig::default()).expect("bind");
                ready.store(true, Ordering::Release);
                // Hold the server until the test finishes with it.
                std::thread::sleep(Duration::from_secs(5));
                drop(server);
            })
        };

        let policy = RetryPolicy {
            max_attempts: 50,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
            jitter: true,
        };
        let (client, attempts) =
            MiningClient::connect_with_policy(addr, "patient", &policy).expect("eventual connect");
        assert!(
            attempts > 1,
            "the pre-bind refusals must be visible in the attempt count"
        );
        assert!(client.max_inflight() > 0);
        drop(client);
        server_thread.join().expect("server thread");
    });
}
