//! `mine` — run any of the six miners through the unified engine API.
//!
//! ```text
//! cargo run -p spidermine-examples --example mine -- \
//!     --algo spidermine --sigma 2 --k 5 --dmax 8
//! ```
//!
//! Flags:
//!
//! * `--algo NAME`   — spidermine | spidermine-transactions | subdue | moss |
//!   origami | seus (default: spidermine)
//! * `--sigma N`     — support threshold σ (default 2)
//! * `--k N`         — number of patterns to report (default 5)
//! * `--dmax N`      — diameter bound `Dmax` (default 8)
//! * `--seed N`      — RNG seed (default 7)
//! * `--threads N`   — worker threads for the run (default: the pool's
//!   `RAYON_NUM_THREADS` / machine parallelism; results are identical at
//!   every thread count)
//! * `--support-measure M` — support definition for the measures-pluggable
//!   algorithms: embeddings | mni | greedy-disjoint (per-algorithm default
//!   when omitted: MNI for SpiderMine, greedy-disjoint for MoSS)
//! * `--deadline-ms N` — wall-clock deadline for the run; an expired
//!   deadline winds the run down cooperatively and reports the partial
//!   result with a `timed out` marker (never an error)
//! * `--edges FILE`  — mine a graph in the gSpan-style `v`/`e` text format
//!   (`t` records make it a transaction database) instead of the synthetic
//!   default
//! * `--load-graph FILE` — mine a binary CSR snapshot (`io::save_snapshot`
//!   format) instead of the synthetic default; mutually exclusive with
//!   `--edges`, single-graph algorithms only
//! * `--save-graph FILE` — persist the mined host graph as a binary CSR
//!   snapshot before mining (works with `--edges` and the synthetic default)
//! * `--serve-demo`  — run the service-layer batch driver instead of one
//!   mine: registers two graphs in a catalog, submits concurrent jobs
//!   (several of them identical), and prints per-job statuses plus the
//!   scheduler/cache metrics
//! * `--serve ADDR`  — expose the mining service over TCP: registers the
//!   synthetic graphs `gid-a` and `gid-b` in a catalog, binds the streaming
//!   wire protocol on `ADDR` (e.g. `127.0.0.1:7733`, port 0 for ephemeral),
//!   and serves until killed
//! * `--connect ADDR` — submit this invocation's request to a remote
//!   `--serve` instance instead of mining in-process: patterns stream back
//!   over the wire as the server accepts them, and the summary reports
//!   whether the server answered from its result cache
//! * `--graph NAME`  — catalog name to mine in `--connect` mode
//!   (default `gid-a`)
//! * `--catalog-dir DIR` — with `--serve`: restore the catalog from DIR's
//!   manifest when one exists (warm restart, header-only registration), or
//!   persist the freshly registered catalog to DIR for the next restart
//! * `--fault-plan SPEC` — arm deterministic fault injection for this
//!   invocation from an explicit plan (`site:nth:kind[=arg]`, comma
//!   separated — e.g. `wire-write:4:disconnect,disk-read:0:bit-flip=3`);
//!   the rules that actually fired are reported at exit, and the telemetry
//!   flight recorder is armed automatically — its dump (recent spans,
//!   faults and retries per thread) prints alongside the fired-rule report
//! * `--chaos SEED`  — arm fault injection from a seeded random plan
//!   (mutually exclusive with `--fault-plan`); the same seed always
//!   produces the same plan, so a chaotic run is replayable. Arms the
//!   flight recorder like `--fault-plan`
//! * `--metrics`     — print the telemetry registries in Prometheus text
//!   format at exit (counters, gauges, latency histograms with
//!   p50/p95/p99). In `--connect` mode the *server's* registries are
//!   fetched over the wire; in `--serve` mode they print at drain
//! * `--trace-out FILE` — arm structured span tracing and write the
//!   captured events to FILE as Chrome trace-event JSON (open in
//!   `chrome://tracing` or Perfetto). In `--connect` mode the server's
//!   captured trace is fetched over the wire (the server must also run
//!   with `--trace-out` or armed telemetry); in `--serve` mode the
//!   capture is written at drain
//!
//! In `--connect` mode with faults armed, the client runs through the
//! resilient reconnect-and-resume path and prints its retry/reconnect
//! counters. In `--serve` mode, `SIGTERM`/`SIGINT` triggers a graceful
//! drain (in-flight jobs get a grace window, clients get a typed
//! `Draining` notice) instead of an abrupt exit.
//!
//! Patterns stream to stdout as the miner accepts them, followed by the
//! per-stage wall-clock timings of the run — both through the one
//! `MineContext` every engine shares.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_engine::{
    Algorithm, GraphSource, MineContext, MineError, MineRequest, Miner, ProgressEvent,
    SupportMeasure,
};
use spidermine_faultline::{FaultInjector, FaultPlan};
use spidermine_graph::{generate, io, GraphDatabase, LabeledGraph};
use spidermine_service::{MiningService, ServiceConfig};
use spidermine_telemetry as telemetry;
use spidermine_transport::{
    MiningClient, MiningServer, ResilientClient, RetryPolicy, TransportConfig,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// How long a SIGTERM-triggered drain lets in-flight jobs finish before
/// cancelling the stragglers.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// SIGTERM/SIGINT → a flag the serve loop polls, so a kill becomes a
/// graceful drain. Registered through the raw C `signal` entry point (no
/// external crates; the only thing the handler does is the async-signal-safe
/// store of one atomic).
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_term as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn terminated() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

struct Cli {
    algo: Algorithm,
    sigma: usize,
    k: usize,
    d_max: u32,
    seed: u64,
    threads: Option<usize>,
    support_measure: Option<SupportMeasure>,
    deadline_ms: Option<u64>,
    edges: Option<String>,
    load_graph: Option<String>,
    save_graph: Option<String>,
    serve_demo: bool,
    serve: Option<String>,
    connect: Option<String>,
    graph: String,
    catalog_dir: Option<String>,
    fault_plan: Option<String>,
    chaos: Option<u64>,
    metrics: bool,
    trace_out: Option<String>,
}

fn usage() -> String {
    format!(
        "usage: mine [--algo {}] [--sigma N] [--k N] [--dmax N] [--seed N] [--threads N] [--support-measure {}] [--deadline-ms N] [--edges FILE] [--load-graph FILE] [--save-graph FILE] [--serve-demo] [--serve ADDR] [--connect ADDR] [--graph NAME] [--catalog-dir DIR] [--fault-plan SPEC] [--chaos SEED] [--metrics] [--trace-out FILE]",
        Algorithm::all().map(|a| a.name()).join("|"),
        SupportMeasure::all().map(|m| m.name()).join("|")
    )
}

/// Parses the flags; `Ok(None)` means `--help` was requested (usage already
/// printed to stdout).
fn parse_cli() -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        algo: Algorithm::SpiderMine,
        sigma: 2,
        k: 5,
        d_max: 8,
        seed: 7,
        threads: None,
        support_measure: None,
        deadline_ms: None,
        edges: None,
        load_graph: None,
        save_graph: None,
        serve_demo: false,
        serve: None,
        connect: None,
        graph: "gid-a".into(),
        catalog_dir: None,
        fault_plan: None,
        chaos: None,
        metrics: false,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--algo" => {
                cli.algo = value("--algo")?
                    .parse::<Algorithm>()
                    .map_err(|e| e.to_string())?;
            }
            "--sigma" => {
                cli.sigma = value("--sigma")?
                    .parse()
                    .map_err(|e| format!("--sigma: {e}"))?;
            }
            "--k" => cli.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--dmax" => {
                cli.d_max = value("--dmax")?
                    .parse()
                    .map_err(|e| format!("--dmax: {e}"))?;
            }
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                cli.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--support-measure" => {
                cli.support_measure = Some(
                    value("--support-measure")?
                        .parse::<SupportMeasure>()
                        .map_err(|e| format!("--support-measure: {e}"))?,
                );
            }
            "--deadline-ms" => {
                cli.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--edges" => cli.edges = Some(value("--edges")?),
            "--load-graph" => cli.load_graph = Some(value("--load-graph")?),
            "--save-graph" => cli.save_graph = Some(value("--save-graph")?),
            "--serve-demo" => cli.serve_demo = true,
            "--serve" => cli.serve = Some(value("--serve")?),
            "--connect" => cli.connect = Some(value("--connect")?),
            "--graph" => cli.graph = value("--graph")?,
            "--catalog-dir" => cli.catalog_dir = Some(value("--catalog-dir")?),
            "--fault-plan" => cli.fault_plan = Some(value("--fault-plan")?),
            "--metrics" => cli.metrics = true,
            "--trace-out" => cli.trace_out = Some(value("--trace-out")?),
            "--chaos" => {
                cli.chaos = Some(
                    value("--chaos")?
                        .parse()
                        .map_err(|e| format!("--chaos: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(Some(cli))
}

/// A synthetic single graph: Erdős–Rényi noise with two planted copies of a
/// 10-vertex pattern, like the paper's GID workloads at toy scale.
fn synthetic_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 400, 2.0, 30);
    let pattern = generate::random_connected_pattern(&mut rng, 10, 30, 3);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

/// A synthetic transaction database: each transaction carries one copy of a
/// shared pattern plus noise.
fn synthetic_database(seed: u64) -> GraphDatabase {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pattern = generate::random_connected_pattern(&mut rng, 7, 20, 2);
    let mut db = GraphDatabase::default();
    for _ in 0..6 {
        let mut g = generate::erdos_renyi_average_degree(&mut rng, 50, 2.0, 20);
        generate::inject_pattern(&mut rng, &mut g, &pattern, 1, 2);
        db.push(g);
    }
    db
}

fn build_request(cli: &Cli) -> MineRequest {
    let mut request = MineRequest::new(cli.algo)
        .support_threshold(cli.sigma)
        .k(cli.k)
        .d_max(cli.d_max)
        .seed(cli.seed);
    if let Some(measure) = cli.support_measure {
        request = request.support_measure(measure);
    }
    if let Some(threads) = cli.threads {
        request = request.threads(threads);
    }
    if let Some(ms) = cli.deadline_ms {
        request = request.deadline_ms(ms);
    }
    request
}

/// The `--serve-demo` batch driver: a catalog with two registered graphs, a
/// burst of concurrent jobs (several identical, so the cache and the
/// single-flight gate do real work), then the metrics.
fn serve_demo(cli: &Cli) -> Result<(), String> {
    if cli.algo.wants_transactions() {
        return Err(format!(
            "--serve-demo serves single-graph snapshots; `{}` mines a transaction database",
            cli.algo
        ));
    }
    let service = MiningService::new(ServiceConfig {
        dispatchers: 4,
        ..ServiceConfig::default()
    });
    for (name, seed) in [("gid-a", cli.seed), ("gid-b", cli.seed + 1)] {
        let snapshot = service.catalog().register(name, synthetic_graph(seed));
        println!(
            "registered `{name}`: |V|={} |E|={} fingerprint={:#018x}",
            snapshot.graph().vertex_count(),
            snapshot.graph().edge_count(),
            snapshot.fingerprint()
        );
    }

    // Submit everything up front: per graph, three identical jobs (one mines,
    // two are deduplicated/cache-served) plus one distinct request.
    let mut handles = Vec::new();
    for name in ["gid-a", "gid-b"] {
        for _ in 0..3 {
            handles.push(
                service
                    .submit(name, build_request(cli))
                    .map_err(|e| e.to_string())?,
            );
        }
        handles.push(
            service
                .submit(name, build_request(cli).seed(cli.seed + 100))
                .map_err(|e| e.to_string())?,
        );
    }
    println!("submitted {} concurrent jobs", handles.len());
    for handle in &handles {
        let outcome = handle.wait().map_err(|e| e.to_string())?;
        let metrics = handle.metrics().expect("terminal job");
        let work = if metrics.from_cache {
            format!("cache-served in {:.1?}", metrics.cache_wait)
        } else {
            format!("mined in {:.1?}", metrics.run_time)
        };
        println!(
            "  job #{} on {}: {:?}, {} patterns, queued {:.1?}, {work}",
            handle.id(),
            handle.graph_name(),
            handle.status(),
            outcome.patterns.len(),
            metrics.queue_wait,
        );
    }

    let m = service.metrics();
    println!(
        "\nservice: {} completed / {} cancelled / {} failed / {} retries; queue wait total {:.1?}, run total {:.1?}",
        m.completed, m.cancelled, m.failed, m.retries, m.queue_wait_total, m.run_time_total
    );
    println!(
        "cache: {} hits / {} misses / {} evictions ({} resident)",
        m.cache.hits, m.cache.misses, m.cache.evictions, m.cache.entries
    );
    if cli.metrics {
        println!("\n# --metrics: telemetry registries (Prometheus text)");
        print!(
            "{}",
            telemetry::prometheus_text(&[
                service.registry().snapshot(),
                telemetry::global().snapshot(),
            ])
        );
    }
    Ok(())
}

/// The `--serve ADDR` mode: the service catalog behind the TCP wire
/// protocol, running until killed. With `--catalog-dir DIR`, the catalog is
/// restored from DIR's manifest when one exists (a warm restart: every graph
/// registers header-only and materializes on first use) and persisted to DIR
/// otherwise; without the flag, the synthetic `gid-a`/`gid-b` graphs of
/// `--serve-demo` are registered.
fn serve(cli: &Cli, addr: &str) -> Result<(), String> {
    let service = Arc::new(MiningService::new(ServiceConfig {
        dispatchers: 2,
        ..ServiceConfig::default()
    }));
    let manifest = cli
        .catalog_dir
        .as_ref()
        .map(|dir| std::path::Path::new(dir).join(spidermine_service::MANIFEST_FILE))
        .filter(|m| m.exists());
    if let (Some(dir), Some(_)) = (&cli.catalog_dir, &manifest) {
        let restored = service
            .catalog()
            .restore(dir)
            .map_err(|e| format!("--catalog-dir {dir}: {e}"))?;
        for name in &restored {
            let snapshot = service.catalog().get(name).expect("just restored");
            println!(
                "restored `{name}`: fingerprint={:#018x} (header-only, loads on first use)",
                snapshot.fingerprint()
            );
        }
    } else {
        for (name, seed) in [("gid-a", cli.seed), ("gid-b", cli.seed + 1)] {
            let snapshot = service.catalog().register(name, synthetic_graph(seed));
            println!(
                "registered `{name}`: |V|={} |E|={} fingerprint={:#018x}",
                snapshot.graph().vertex_count(),
                snapshot.graph().edge_count(),
                snapshot.fingerprint()
            );
        }
        if let Some(dir) = &cli.catalog_dir {
            service
                .catalog()
                .persist(dir)
                .map_err(|e| format!("--catalog-dir {dir}: {e}"))?;
            println!("persisted catalog to {dir} (next --serve restarts warm)");
        }
    }
    let mut server = MiningServer::bind(addr, service.clone(), TransportConfig::default())
        .map_err(|e| format!("--serve {addr}: {e}"))?;
    #[cfg(unix)]
    {
        sig::install();
        println!(
            "serving on {} (SIGTERM/SIGINT drains gracefully, {DRAIN_DEADLINE:?} deadline)",
            server.local_addr()
        );
        while !sig::terminated() {
            std::thread::sleep(Duration::from_millis(100));
        }
        println!("signal received: draining ({DRAIN_DEADLINE:?} deadline) ...");
        let server_clean = server.shutdown(DRAIN_DEADLINE);
        let service_clean = service.drain(DRAIN_DEADLINE);
        let m = service.metrics();
        println!(
            "drain complete: clean={} ({} completed, {} cancelled, {} failed, {} retries)",
            server_clean && service_clean,
            m.completed,
            m.cancelled,
            m.failed,
            m.retries
        );
        if cli.metrics {
            println!("\n# --metrics: telemetry registries (Prometheus text)");
            print!(
                "{}",
                telemetry::prometheus_text(&[
                    service.registry().snapshot(),
                    telemetry::global().snapshot(),
                ])
            );
        }
        Ok(())
    }
    #[cfg(not(unix))]
    {
        println!("serving on {}", server.local_addr());
        loop {
            std::thread::park();
        }
    }
}

/// The `--connect ADDR` mode: this invocation's request, mined remotely.
fn connect(cli: &Cli, addr: &str) -> Result<(), String> {
    if cli.algo.wants_transactions() {
        return Err(format!(
            "--connect serves single-graph snapshots; `{}` mines a transaction database",
            cli.algo
        ));
    }
    let policy = RetryPolicy {
        max_attempts: 40,
        base_delay: Duration::from_millis(250),
        ..RetryPolicy::default()
    };
    // With fault injection armed, run through the self-healing client: it
    // reconnects and resubmits across injected disconnects/corruption, and
    // its counters show what the chaos actually cost.
    if spidermine_faultline::armed() {
        let client = ResilientClient::connect(addr, "mine-cli", policy)
            .map_err(|e| format!("--connect {addr}: {e}"))?;
        let result = client
            .mine(&cli.graph, &build_request(cli))
            .map_err(|e| e.to_string())?;
        println!(
            "{}: {} patterns on `{}`{}",
            result.outcome.algorithm,
            result.outcome.patterns.len(),
            cli.graph,
            if result.outcome.timed_out {
                " (timed out, partial)"
            } else if result.outcome.cancelled {
                " (cancelled, partial)"
            } else {
                ""
            }
        );
        println!("cache-served: {}", result.from_cache);
        println!(
            "resilience: {} reconnects, {} resubmissions",
            client.reconnects(),
            client.retries()
        );
        if cli.metrics {
            let text = client.metrics_text().map_err(|e| e.to_string())?;
            println!("\n# --metrics: server telemetry registries (Prometheus text)");
            print!("{text}");
        }
        if let Some(path) = &cli.trace_out {
            let json = client.trace_json().map_err(|e| e.to_string())?;
            std::fs::write(path, &json).map_err(|e| format!("--trace-out {path}: {e}"))?;
            println!("wrote server trace ({} bytes) to {path}", json.len());
        }
        return Ok(());
    }
    let (client, attempts) = MiningClient::connect_with_policy(addr, "mine-cli", &policy)
        .map_err(|e| format!("--connect {addr}: {e}"))?;
    println!(
        "connected to {addr} after {attempts} attempt{} (per-client quota: {} in flight)",
        if attempts == 1 { "" } else { "s" },
        client.max_inflight()
    );
    let mut job = client
        .submit(&cli.graph, &build_request(cli))
        .map_err(|e| e.to_string())?;
    println!("job #{} accepted on `{}`", job.job_id(), cli.graph);
    let mut streamed = 0usize;
    for p in job.by_ref() {
        streamed += 1;
        println!(
            "  pattern #{streamed}: |V|={} |E|={} support={}",
            p.pattern.vertex_count(),
            p.pattern.edge_count(),
            p.support
        );
    }
    let result = job.outcome().map_err(|e| e.to_string())?;
    println!(
        "\n{}: {} patterns ({} streamed mid-run){}",
        result.outcome.algorithm,
        result.outcome.patterns.len(),
        streamed,
        if result.outcome.timed_out {
            " (timed out, partial)"
        } else if result.outcome.cancelled {
            " (cancelled, partial)"
        } else {
            ""
        }
    );
    println!("cache-served: {}", result.from_cache);
    let stats = client.stats().map_err(|e| e.to_string())?;
    println!(
        "server totals: {} completed ({} retries), cache {} hits / {} misses",
        stats.completed, stats.retries, stats.cache.hits, stats.cache.misses
    );
    if let Some((_, s)) = stats.clients.iter().find(|(n, _)| n == "mine-cli") {
        println!(
            "this client: {} accepted / {} rejected, {} patterns ({} bytes) streamed",
            s.accepted, s.rejected, s.patterns_streamed, s.bytes_streamed
        );
    }
    if cli.metrics {
        let text = client.metrics_text().map_err(|e| e.to_string())?;
        println!("\n# --metrics: server telemetry registries (Prometheus text)");
        print!("{text}");
    }
    if let Some(path) = &cli.trace_out {
        // The server's captured span tree for this (and every recent) job —
        // empty `[]` if the server runs with tracing disarmed.
        let json = client.trace_json().map_err(|e| e.to_string())?;
        std::fs::write(path, &json).map_err(|e| format!("--trace-out {path}: {e}"))?;
        println!("wrote server trace ({} bytes) to {path}", json.len());
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let Some(cli) = parse_cli()? else {
        return Ok(()); // --help
    };
    // Arm deterministic fault injection for the whole invocation. The guard
    // lives to the end of `run`, and the exit report shows exactly which of
    // the plan's rules fired — a chaotic run is replayable from its flag.
    let injector = match (&cli.fault_plan, cli.chaos) {
        (Some(_), Some(_)) => {
            return Err("--fault-plan and --chaos are mutually exclusive: pick one".into());
        }
        (Some(spec), None) => {
            let plan = FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
            println!("fault injection armed: {plan}");
            Some(FaultInjector::install(&plan))
        }
        (None, Some(seed)) => {
            let plan = FaultPlan::random(seed);
            println!("fault injection armed (chaos seed {seed}): {plan}");
            Some(FaultInjector::install(&plan))
        }
        (None, None) => None,
    };
    // Arm the telemetry hooks when anything wants their events: span
    // capture for --trace-out, the flight recorder for fault-plan runs.
    if cli.trace_out.is_some() || injector.is_some() {
        telemetry::arm();
    }
    if cli.trace_out.is_some() {
        telemetry::start_capture();
    }
    let result = dispatch(&cli);
    if cli.metrics && cli.connect.is_none() && cli.serve.is_none() && !cli.serve_demo {
        // Local mine: only the process-global registry (engine, graph I/O,
        // oracle) has cells; service modes print their registry themselves.
        println!("\n# --metrics: telemetry registries (Prometheus text)");
        print!(
            "{}",
            telemetry::prometheus_text(&[telemetry::global().snapshot()])
        );
    }
    if let (Some(path), None) = (&cli.trace_out, &cli.connect) {
        // Connect mode fetched the server's trace instead.
        let json = telemetry::chrome_trace_json(&telemetry::take_capture());
        std::fs::write(path, &json).map_err(|e| format!("--trace-out {path}: {e}"))?;
        println!("wrote trace ({} bytes) to {path}", json.len());
    }
    if let Some(injector) = &injector {
        let fired = injector.fired();
        println!("\nfault injection report: {} rule(s) fired", fired.len());
        for fault in &fired {
            println!("  {fault}");
        }
        // The flight recorder was armed with the plan: its per-thread ring
        // of recent spans/faults/retries is the "what led up to it" record.
        println!("\nflight recorder dump:");
        print!("{}", telemetry::flight_dump());
    }
    result
}

fn dispatch(cli: &Cli) -> Result<(), String> {
    if cli.serve_demo {
        return serve_demo(cli);
    }
    if let Some(addr) = &cli.serve {
        return serve(cli, addr);
    }
    if let Some(addr) = &cli.connect {
        return connect(cli, addr);
    }
    let miner = build_request(cli)
        .build()
        .map_err(|e: MineError| e.to_string())?;

    // Assemble the source: a gSpan-format text file, a binary CSR snapshot,
    // or synthetic data matching what the algorithm mines.
    if cli.edges.is_some() && cli.load_graph.is_some() {
        return Err("--edges and --load-graph are mutually exclusive: pick one input".into());
    }
    let wants_db = cli.algo.wants_transactions();
    if cli.load_graph.is_some() && wants_db {
        return Err(format!(
            "--load-graph provides a single-graph snapshot; `{}` mines a transaction database",
            cli.algo
        ));
    }
    let loaded: Option<String> = match &cli.edges {
        Some(path) => Some(std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?),
        None => None,
    };
    let (single, db): (Option<LabeledGraph>, Option<GraphDatabase>) = match (&loaded, wants_db) {
        (Some(text), false) => (Some(io::read_graph(text).map_err(|e| e.to_string())?), None),
        (Some(text), true) => (
            None,
            Some(io::read_database(text).map_err(|e| e.to_string())?),
        ),
        (None, false) => match &cli.load_graph {
            Some(path) => (
                Some(io::load_snapshot(path).map_err(|e| e.to_string())?),
                None,
            ),
            None => (Some(synthetic_graph(cli.seed)), None),
        },
        (None, true) => (None, Some(synthetic_database(cli.seed))),
    };

    if let Some(path) = &cli.save_graph {
        match &single {
            Some(g) => {
                io::save_snapshot(path, g).map_err(|e| e.to_string())?;
                let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                println!(
                    "saved snapshot {path} ({bytes} bytes, fingerprint {:#018x})",
                    spidermine_graph::signature::graph_fingerprint(g)
                );
            }
            None => {
                return Err(format!(
                    "--save-graph persists a single-graph snapshot; `{}` mines a transaction database",
                    cli.algo
                ));
            }
        }
    }
    let source = match (&single, &db) {
        (Some(g), _) => {
            println!(
                "host: |V|={} |E|={} (single graph)",
                g.vertex_count(),
                g.edge_count()
            );
            GraphSource::Single(g)
        }
        (_, Some(d)) => {
            println!("host: {} transactions", d.len());
            GraphSource::Transactions(d)
        }
        _ => unreachable!("one source is always built"),
    };

    // Stream patterns and stage transitions as the run progresses.
    let mut streamed = 0usize;
    let mut ctx = MineContext::new()
        .on_progress(|e: &ProgressEvent| {
            if let ProgressEvent::StageStarted { stage } = e {
                println!("stage {stage} ...");
            }
        })
        .on_pattern(move |p| {
            streamed += 1;
            println!(
                "  pattern #{streamed}: |V|={} |E|={} support={}",
                p.pattern.vertex_count(),
                p.pattern.edge_count(),
                p.support
            );
        });

    let outcome = miner.mine(&source, &mut ctx).map_err(|e| e.to_string())?;

    println!(
        "\n{}: {} patterns, largest |E|={} |V|={}{}",
        outcome.algorithm,
        outcome.patterns.len(),
        outcome.largest_edges(),
        outcome.largest_vertices(),
        if outcome.timed_out {
            " (timed out, partial)"
        } else if outcome.cancelled {
            " (cancelled, partial)"
        } else {
            ""
        }
    );
    println!("per-stage timings ({} worker threads):", outcome.threads);
    for t in &outcome.stages {
        println!("  {:<18} {:>10.3?}", t.stage, t.elapsed);
    }
    println!("total: {:.3?}", outcome.total_time);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
