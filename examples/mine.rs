//! `mine` — run any of the six miners through the unified engine API.
//!
//! ```text
//! cargo run -p spidermine-examples --example mine -- \
//!     --algo spidermine --sigma 2 --k 5 --dmax 8
//! ```
//!
//! Flags:
//!
//! * `--algo NAME`   — spidermine | spidermine-transactions | subdue | moss |
//!   origami | seus (default: spidermine)
//! * `--sigma N`     — support threshold σ (default 2)
//! * `--k N`         — number of patterns to report (default 5)
//! * `--dmax N`      — diameter bound `Dmax` (default 8)
//! * `--seed N`      — RNG seed (default 7)
//! * `--threads N`   — worker threads for the run (default: the pool's
//!   `RAYON_NUM_THREADS` / machine parallelism; results are identical at
//!   every thread count)
//! * `--support-measure M` — support definition for the measures-pluggable
//!   algorithms: embeddings | mni | greedy-disjoint (per-algorithm default
//!   when omitted: MNI for SpiderMine, greedy-disjoint for MoSS)
//! * `--edges FILE`  — mine a graph in the gSpan-style `v`/`e` text format
//!   (`t` records make it a transaction database) instead of the synthetic
//!   default
//!
//! Patterns stream to stdout as the miner accepts them, followed by the
//! per-stage wall-clock timings of the run — both through the one
//! `MineContext` every engine shares.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_engine::{
    Algorithm, GraphSource, MineContext, MineError, MineRequest, Miner, ProgressEvent,
    SupportMeasure,
};
use spidermine_graph::{generate, io, GraphDatabase, LabeledGraph};
use std::process::ExitCode;

struct Cli {
    algo: Algorithm,
    sigma: usize,
    k: usize,
    d_max: u32,
    seed: u64,
    threads: Option<usize>,
    support_measure: Option<SupportMeasure>,
    edges: Option<String>,
}

fn usage() -> String {
    format!(
        "usage: mine [--algo {}] [--sigma N] [--k N] [--dmax N] [--seed N] [--threads N] [--support-measure {}] [--edges FILE]",
        Algorithm::all().map(|a| a.name()).join("|"),
        SupportMeasure::all().map(|m| m.name()).join("|")
    )
}

/// Parses the flags; `Ok(None)` means `--help` was requested (usage already
/// printed to stdout).
fn parse_cli() -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        algo: Algorithm::SpiderMine,
        sigma: 2,
        k: 5,
        d_max: 8,
        seed: 7,
        threads: None,
        support_measure: None,
        edges: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--algo" => {
                cli.algo = value("--algo")?
                    .parse::<Algorithm>()
                    .map_err(|e| e.to_string())?;
            }
            "--sigma" => {
                cli.sigma = value("--sigma")?
                    .parse()
                    .map_err(|e| format!("--sigma: {e}"))?;
            }
            "--k" => cli.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--dmax" => {
                cli.d_max = value("--dmax")?
                    .parse()
                    .map_err(|e| format!("--dmax: {e}"))?;
            }
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                cli.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--support-measure" => {
                cli.support_measure = Some(
                    value("--support-measure")?
                        .parse::<SupportMeasure>()
                        .map_err(|e| format!("--support-measure: {e}"))?,
                );
            }
            "--edges" => cli.edges = Some(value("--edges")?),
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(Some(cli))
}

/// A synthetic single graph: Erdős–Rényi noise with two planted copies of a
/// 10-vertex pattern, like the paper's GID workloads at toy scale.
fn synthetic_graph(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, 400, 2.0, 30);
    let pattern = generate::random_connected_pattern(&mut rng, 10, 30, 3);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    g
}

/// A synthetic transaction database: each transaction carries one copy of a
/// shared pattern plus noise.
fn synthetic_database(seed: u64) -> GraphDatabase {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pattern = generate::random_connected_pattern(&mut rng, 7, 20, 2);
    let mut db = GraphDatabase::default();
    for _ in 0..6 {
        let mut g = generate::erdos_renyi_average_degree(&mut rng, 50, 2.0, 20);
        generate::inject_pattern(&mut rng, &mut g, &pattern, 1, 2);
        db.push(g);
    }
    db
}

fn run() -> Result<(), String> {
    let Some(cli) = parse_cli()? else {
        return Ok(()); // --help
    };
    let mut request = MineRequest::new(cli.algo)
        .support_threshold(cli.sigma)
        .k(cli.k)
        .d_max(cli.d_max)
        .seed(cli.seed);
    if let Some(measure) = cli.support_measure {
        request = request.support_measure(measure);
    }
    if let Some(threads) = cli.threads {
        request = request.threads(threads);
    }
    let miner = request.build().map_err(|e: MineError| e.to_string())?;

    // Assemble the source: a file in the gSpan text format, or synthetic data
    // matching what the algorithm mines.
    let loaded: Option<String> = match &cli.edges {
        Some(path) => Some(std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?),
        None => None,
    };
    let wants_db = cli.algo.wants_transactions();
    let (single, db): (Option<LabeledGraph>, Option<GraphDatabase>) = match (&loaded, wants_db) {
        (Some(text), false) => (Some(io::read_graph(text).map_err(|e| e.to_string())?), None),
        (Some(text), true) => (
            None,
            Some(io::read_database(text).map_err(|e| e.to_string())?),
        ),
        (None, false) => (Some(synthetic_graph(cli.seed)), None),
        (None, true) => (None, Some(synthetic_database(cli.seed))),
    };
    let source = match (&single, &db) {
        (Some(g), _) => {
            println!(
                "host: |V|={} |E|={} (single graph)",
                g.vertex_count(),
                g.edge_count()
            );
            GraphSource::Single(g)
        }
        (_, Some(d)) => {
            println!("host: {} transactions", d.len());
            GraphSource::Transactions(d)
        }
        _ => unreachable!("one source is always built"),
    };

    // Stream patterns and stage transitions as the run progresses.
    let mut streamed = 0usize;
    let mut ctx = MineContext::new()
        .on_progress(|e: &ProgressEvent| {
            if let ProgressEvent::StageStarted { stage } = e {
                println!("stage {stage} ...");
            }
        })
        .on_pattern(move |p| {
            streamed += 1;
            println!(
                "  pattern #{streamed}: |V|={} |E|={} support={}",
                p.pattern.vertex_count(),
                p.pattern.edge_count(),
                p.support
            );
        });

    let outcome = miner.mine(&source, &mut ctx).map_err(|e| e.to_string())?;

    println!(
        "\n{}: {} patterns, largest |E|={} |V|={}{}",
        outcome.algorithm,
        outcome.patterns.len(),
        outcome.largest_edges(),
        outcome.largest_vertices(),
        if outcome.cancelled {
            " (cancelled, partial)"
        } else {
            ""
        }
    );
    println!("per-stage timings ({} worker threads):", outcome.threads);
    for t in &outcome.stages {
        println!("  {:<18} {:>10.3?}", t.stage, t.elapsed);
    }
    println!("total: {:.3?}", outcome.total_time);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
