//! Software-engineering scenario (the paper's Jeti use case): mine the
//! recurring "API-usage backbone" from a method-call graph whose labels are
//! the classes the methods belong to. Large patterns here reveal tightly
//! coupled class communities — useful for program comprehension and design
//! smell detection (Section D of the paper).
//!
//! ```text
//! cargo run -p spidermine-examples --example software_backbone --release
//! ```

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_datasets::jeti::{self, JetiConfig};
use spidermine_examples::describe_result;
use std::collections::BTreeSet;

fn main() {
    let dataset = jeti::generate(&JetiConfig::default(), 11);
    println!(
        "call graph: |V|={} methods, |E|={} calls, {} classes, max degree {}",
        dataset.graph.vertex_count(),
        dataset.graph.edge_count(),
        dataset.graph.distinct_label_count(),
        dataset.graph.max_degree()
    );

    let result = SpiderMiner::new(SpiderMineConfig {
        support_threshold: 8,
        k: 5,
        d_max: 8,
        ..SpiderMineConfig::default()
    })
    .mine(&dataset.graph);
    describe_result("SpiderMine: top call-graph backbones", &result);

    // For the largest backbone, report which classes participate — high
    // cohesion among a handful of classes is the design signal the paper
    // discusses (Figure 24).
    if let Some(top) = result.patterns.first() {
        let classes: BTreeSet<u32> = top.pattern.labels().iter().map(|l| l.0).collect();
        println!(
            "largest backbone spans {} methods across {} classes: {:?}",
            top.size_vertices(),
            classes.len(),
            classes
        );
    }
    println!(
        "(ground truth: {} planted backbones of {} methods each)",
        dataset.backbones.len(),
        dataset.backbones[0].vertex_count()
    );
}
