//! Graph-transaction scenario: mine the top-K largest patterns shared across a
//! database of graphs (the setting of the paper's Figures 14–15), and compare
//! with the ORIGAMI representative-pattern baseline.
//!
//! ```text
//! cargo run -p spidermine-examples --example transaction_topk --release
//! ```

use spidermine::{SpiderMineConfig, TransactionMiner};
use spidermine_baselines::origami;
use spidermine_datasets::transactions::{TransactionConfig, TransactionDataset};

fn main() {
    let dataset = TransactionDataset::build(TransactionConfig::figure15(0.2), 5);
    println!(
        "transaction database: {} graphs, {} total vertices, {} total edges",
        dataset.database.len(),
        dataset.database.total_vertices(),
        dataset.database.total_edges()
    );
    println!(
        "injected: {} large patterns ({} vertices each) and {} small distractors",
        dataset.large_patterns.len(),
        dataset.config.large_pattern_vertices,
        dataset.small_patterns.len()
    );

    let result = TransactionMiner::new(SpiderMineConfig {
        support_threshold: 4,
        k: 5,
        d_max: 8,
        ..SpiderMineConfig::default()
    })
    .mine(&dataset.database);
    println!(
        "SpiderMine (transaction setting): top-{} patterns",
        result.patterns.len()
    );
    for (rank, p) in result.patterns.iter().enumerate() {
        println!(
            "  #{rank:<3} |V|={:<4} |E|={:<4} transactions={}",
            p.pattern.vertex_count(),
            p.pattern.edge_count(),
            p.transaction_support
        );
    }

    let origami_result = origami::run(
        &dataset.database,
        &origami::OrigamiConfig {
            support_threshold: 4,
            samples: 25,
            ..origami::OrigamiConfig::default()
        },
    );
    println!(
        "ORIGAMI for comparison: {} representatives, largest has {} vertices (drifts small when many small patterns exist)",
        origami_result.patterns.len(),
        origami_result
            .patterns
            .first()
            .map(|p| p.pattern.vertex_count())
            .unwrap_or(0)
    );
}
