//! Social-network scenario (the paper's DBLP use case): mine large
//! collaborative patterns from a co-authorship network whose vertices are
//! labeled with author seniority, and contrast them with what SUBDUE finds.
//!
//! ```text
//! cargo run -p spidermine-examples --example coauthorship_communities --release
//! ```

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_baselines::subdue;
use spidermine_datasets::dblp::{self, DblpConfig};
use spidermine_examples::describe_result;

fn main() {
    // A DBLP-like co-authorship graph: four seniority labels (Prolific,
    // Senior, Junior, Beginner), research-group community structure and a few
    // collaborative patterns recurring across groups.
    let dataset = dblp::generate(&DblpConfig::scaled(0.08), 7);
    println!(
        "co-authorship network: |V|={} |E|={} labels={}",
        dataset.graph.vertex_count(),
        dataset.graph.edge_count(),
        dataset.graph.distinct_label_count()
    );
    println!(
        "planted collaborative patterns: {} (each ~{} authors)",
        dataset.planted_patterns.len(),
        dataset.planted_patterns[0].vertex_count()
    );

    let result = SpiderMiner::new(SpiderMineConfig {
        support_threshold: 4,
        k: 10,
        d_max: 8,
        max_spider_leaves: 5,
        ..SpiderMineConfig::default()
    })
    .mine(&dataset.graph);
    describe_result("SpiderMine: top collaborative patterns", &result);

    // SUBDUE, for contrast, concentrates on tiny high-frequency structures —
    // with only four labels, small co-authorship motifs are ubiquitous and
    // uninformative (the paper's point in Section 1 and Figure 20).
    let subdue_result = subdue::run(&dataset.graph, &subdue::SubdueConfig::default());
    let subdue_largest = subdue_result
        .patterns
        .iter()
        .map(|p| p.pattern.vertex_count())
        .max()
        .unwrap_or(0);
    println!(
        "SUBDUE for comparison: {} substructures, largest has {} vertices",
        subdue_result.patterns.len(),
        subdue_largest
    );
}
