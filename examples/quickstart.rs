//! Quickstart: mine the top-K largest frequent patterns from a small synthetic
//! network with planted structure.
//!
//! ```text
//! cargo run -p spidermine-examples --example quickstart --release
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_examples::describe_result;
use spidermine_graph::generate;

fn main() {
    // 1. Build a network: an Erdős–Rényi background of 500 vertices with a
    //    12-vertex pattern planted 3 times.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut network = generate::erdos_renyi_average_degree(&mut rng, 500, 2.5, 40);
    let planted = generate::random_connected_pattern(&mut rng, 12, 40, 4);
    generate::inject_pattern(&mut rng, &mut network, &planted, 3, 2);
    println!(
        "network: |V|={} |E|={}   planted pattern: |V|={} |E|={} x3 copies",
        network.vertex_count(),
        network.edge_count(),
        planted.vertex_count(),
        planted.edge_count()
    );

    // 2. Configure SpiderMine: support threshold sigma, number of patterns K,
    //    error bound epsilon, and the diameter bound Dmax.
    let config = SpiderMineConfig {
        support_threshold: 2,
        k: 5,
        epsilon: 0.1,
        d_max: 8,
        ..SpiderMineConfig::default()
    };

    // 3. Mine and report.
    let result = SpiderMiner::new(config).mine(&network);
    describe_result("top-5 largest frequent patterns:", &result);
    println!(
        "largest pattern found has {} vertices (planted: {})",
        result.largest_vertices(),
        planted.vertex_count()
    );
}
