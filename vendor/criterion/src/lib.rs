//! Vendored stand-in for `criterion`, implementing the subset of the API the
//! `bench` crate uses (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `sample_size`, `criterion_group!`,
//! `criterion_main!`).
//!
//! Each benchmark is auto-calibrated so one sample runs for at least ~2 ms,
//! then `sample_size` samples are taken and the **median** per-iteration time
//! is reported. On top of printing human-readable results, the harness
//! appends every measurement to a JSON summary (default
//! `BENCH_embedding.json` at the workspace root, override with the
//! `BENCH_JSON` environment variable) so the performance trajectory can be
//! tracked across PRs — see DESIGN.md.

use std::cell::RefCell;
use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark, e.g. `group/name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher<'a> {
    samples: usize,
    result_ns: &'a mut f64,
}

impl Bencher<'_> {
    /// Measures `routine`, storing the median per-iteration nanoseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Call through an opaque dyn reference so a pure routine cannot be
        // hoisted out of the timing loop as a loop invariant.
        let routine: &mut dyn FnMut() -> O = &mut routine;
        let routine = black_box(routine);
        // Warm-up + calibration: find an iteration count whose batch takes
        // at least ~2 ms so timer resolution noise is negligible.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= (1 << 24) {
                break;
            }
            let target = Duration::from_millis(3).as_nanos() as u64;
            let got = elapsed.as_nanos().max(1) as u64;
            iters_per_sample =
                (iters_per_sample * target / got).clamp(iters_per_sample + 1, 1 << 24);
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        *self.result_ns = samples_ns[samples_ns.len() / 2];
    }
}

thread_local! {
    static RESULTS: RefCell<Vec<(String, f64)>> = const { RefCell::new(Vec::new()) };
}

/// Returns the recorded value for `name` (median ns for benchmarks, raw value
/// for metrics) from this process's completed measurements.
pub fn measurement(name: &str) -> Option<f64> {
    RESULTS.with(|r| r.borrow().iter().find(|(n, _)| n == name).map(|&(_, v)| v))
}

/// Records an arbitrary derived metric (e.g. a speedup ratio) into the JSON
/// summary alongside the benchmark timings.
pub fn record_metric(name: &str, value: f64) {
    println!("bench {name:<55} {value:>14.2}");
    RESULTS.with(|r| r.borrow_mut().push((name.to_owned(), value)));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher<'_>)) {
        let full = format!("{}/{}", self.name, id);
        let mut median_ns = f64::NAN;
        let mut bencher = Bencher {
            samples: self.sample_size,
            result_ns: &mut median_ns,
        };
        f(&mut bencher);
        println!("bench {full:<55} {:>14}", format_ns(median_ns));
        RESULTS.with(|r| r.borrow_mut().push((full, median_ns)));
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(id.into().id, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run_one(id.into().id, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (no-op in the vendored harness).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a standalone (ungrouped) benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 20,
            _criterion: self,
        };
        // Standalone benches report under their own name, not `name/name`.
        let mut median_ns = f64::NAN;
        let mut bencher = Bencher {
            samples: group.sample_size,
            result_ns: &mut median_ns,
        };
        f(&mut bencher);
        println!("bench {name:<55} {:>14}", format_ns(median_ns));
        RESULTS.with(|r| r.borrow_mut().push((name.to_owned(), median_ns)));
        group.finish();
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "(not measured)".to_owned()
    } else if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Where the JSON summary goes: `$BENCH_JSON` (a relative value resolves
/// against the workspace root, not the bench binary's working directory),
/// else `BENCH_embedding.json` next to the workspace root (located by walking
/// up from the running bench's `CARGO_MANIFEST_DIR` to the outermost
/// directory containing a `Cargo.toml`).
fn summary_path() -> PathBuf {
    let workspace_root = || {
        let mut dir = std::env::var("CARGO_MANIFEST_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")));
        let mut root = dir.clone();
        while let Some(parent) = dir.parent() {
            if parent.join("Cargo.toml").exists() {
                root = parent.to_path_buf();
            }
            dir = parent.to_path_buf();
        }
        root
    };
    if let Ok(p) = std::env::var("BENCH_JSON") {
        let p = PathBuf::from(p);
        return if p.is_absolute() {
            p
        } else {
            workspace_root().join(p)
        };
    }
    workspace_root().join("BENCH_embedding.json")
}

/// Merges this process's results into the JSON summary and writes it out.
/// Called automatically by `criterion_main!`.
pub fn finalize() {
    let new: Vec<(String, f64)> = RESULTS.with(|r| r.borrow().clone());
    if new.is_empty() {
        return;
    }
    let path = summary_path();
    let mut entries: Vec<(String, f64)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        entries = parse_flat_json(&existing);
    }
    for (name, ns) in new {
        if let Some(slot) = entries.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = ns;
        } else {
            entries.push((name, ns));
        }
    }
    let mut out = String::from("{\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!("  \"{}\": {:.1}{}\n", escape(name), ns, comma));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("bench summary written to {}", path.display());
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses the flat `{"name": number, ...}` JSON this harness itself writes.
fn parse_flat_json(text: &str) -> Vec<(String, f64)> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, value)) = rest.split_once("\":") else {
            continue;
        };
        if let Ok(ns) = value.trim().parse::<f64>() {
            entries.push((name.replace("\\\"", "\"").replace("\\\\", "\\"), ns));
        }
    }
    entries
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, then writes the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut ns = f64::NAN;
        let mut b = Bencher {
            samples: 5,
            result_ns: &mut ns,
        };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(ns.is_finite() && ns > 0.0);
    }

    #[test]
    fn flat_json_roundtrip() {
        let text = "{\n  \"a/b\": 12.5,\n  \"c\": 7.0\n}\n";
        let entries = parse_flat_json(text);
        assert_eq!(
            entries,
            vec![("a/b".to_owned(), 12.5), ("c".to_owned(), 7.0)]
        );
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("x", 4).id, "x/4");
        assert_eq!(BenchmarkId::from_parameter(9).id, "9");
    }
}
