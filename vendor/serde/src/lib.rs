//! Vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize` / `Deserialize` on a few core types but
//! never actually serializes anything (there is no `serde_json` or similar in
//! the tree — graph persistence goes through `spidermine_graph::io`'s text
//! format). Since the build environment has no crates.io mirror, this stub
//! provides the two traits as blanket-implemented markers plus derive macros
//! that expand to nothing, keeping the annotations compiling at zero cost.
//!
//! If real serialization is ever needed, replace this vendored crate with the
//! genuine `serde` dependency.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
