//! Vendored stand-in for a memory-mapping crate (`memmap2` and friends).
//!
//! The snapshot loader in `spidermine_graph::io` wants two byte sources with
//! one shape:
//!
//! * [`Mmap`] — a read-only, private (`MAP_PRIVATE`) mapping of a file, so a
//!   multi-gigabyte CSR snapshot costs address space, not resident memory:
//!   pages fault in on first touch and are shared with every other process
//!   mapping the same file through the page cache. Available on Linux, where
//!   `mmap(2)`/`munmap(2)` are reached through the C library that `std`
//!   already links — no `libc` crate needed.
//! * [`AlignedBuf`] — the portable fallback: the whole file read into an
//!   8-byte-aligned heap buffer. Compiled and tested everywhere (including
//!   Linux, where the snapshot test-suite exercises it explicitly), and the
//!   path taken when [`Mmap::supported`] is false or a mapping fails.
//!
//! Both deref to `&[u8]`; both guarantee at least 8-byte base alignment, which
//! is what lets the snapshot reader reinterpret page-aligned `u32` sections
//! in place. Mappings are read-only — there is deliberately no `MAP_SHARED`,
//! no write support, and no `mprotect`: the snapshot format is immutable by
//! contract and the narrow surface keeps the `unsafe` auditable.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;

#[cfg(target_os = "linux")]
mod sys {
    //! Raw `mmap(2)` bindings. `std` on Linux already links the C library,
    //! so declaring the two symbols is enough — no external crate.
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
    }
}

/// A read-only, private memory mapping of an entire file.
///
/// On non-Linux targets [`Mmap::map`] always returns
/// [`io::ErrorKind::Unsupported`]; callers fall back to [`AlignedBuf`].
#[derive(Debug)]
pub struct Mmap {
    /// Base address; null for the empty mapping (`mmap` rejects length 0).
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) for its whole
// lifetime; sharing &[u8] views across threads is no different from sharing a
// frozen Vec<u8>.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Whether this target can map files at all.
    pub const fn supported() -> bool {
        cfg!(target_os = "linux")
    }

    /// Maps `file` read-only in its entirety.
    ///
    /// The mapping length is the file length at call time; an empty file maps
    /// to an empty slice without touching `mmap` (the syscall rejects
    /// zero-length mappings).
    #[cfg(target_os = "linux")]
    pub fn map(file: &File) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;

        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(Self {
                ptr: std::ptr::null(),
                len: 0,
            });
        }
        // SAFETY: length is non-zero and the fd is valid for the duration of
        // the call; we hand the kernel a null hint and let it pick the
        // (page-aligned) address. The result is checked against MAP_FAILED.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// Maps `file` read-only in its entirety (unsupported on this target).
    #[cfg(not(target_os = "linux"))]
    pub fn map(_file: &File) -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap is only wired up on Linux; use AlignedBuf::read",
        ))
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        if self.ptr.is_null() {
            &[]
        } else {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by self.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mapping is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if !self.ptr.is_null() {
            // SAFETY: ptr/len came from a successful mmap owned exclusively
            // by self; unmapping exactly once on drop.
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

/// A whole file read into an 8-byte-aligned owned buffer.
///
/// `Vec<u8>` only guarantees byte alignment, which would make reinterpreting
/// a `u32` section undefined behavior on the read-into-memory path; backing
/// the bytes with a `Vec<u64>` gives the same alignment guarantee a mapping
/// has (pages are 4096-aligned, this is 8-aligned — both satisfy every
/// fixed-width section type the snapshot format uses).
#[derive(Debug)]
pub struct AlignedBuf {
    storage: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// Reads `file` from the start to EOF into a fresh aligned buffer.
    pub fn read(file: &mut File) -> io::Result<Self> {
        file.seek(SeekFrom::Start(0))?;
        let expected = file.metadata()?.len() as usize;
        let mut storage = vec![0u64; expected.div_ceil(8)];
        // SAFETY: u64s are plain bytes; the slice covers exactly the
        // allocated storage and is fully initialized (zeroed above).
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(storage.as_mut_ptr() as *mut u8, storage.len() * 8)
        };
        let mut filled = 0;
        while filled < expected {
            match file.read(&mut bytes[filled..expected])? {
                0 => break,
                n => filled += n,
            }
        }
        // The file may have been truncated between metadata and read; trust
        // what was actually read.
        Ok(Self {
            storage,
            len: filled,
        })
    }

    /// Wraps an in-memory copy (tests, byte-level tooling).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut storage = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: as in `read` — the u64 storage viewed as initialized bytes.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(storage.as_mut_ptr() as *mut u8, storage.len() * 8)
        };
        dst[..bytes.len()].copy_from_slice(bytes);
        Self {
            storage,
            len: bytes.len(),
        }
    }

    /// The buffered bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: storage holds at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.storage.as_ptr() as *const u8, self.len) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for AlignedBuf {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("mmap-lite-{}-{name}", std::process::id()));
        let mut f = File::create(&path).expect("create temp file");
        f.write_all(contents).expect("write");
        f.sync_all().expect("sync");
        path
    }

    #[test]
    fn aligned_buf_matches_file_and_is_aligned() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_001).collect();
        let path = temp_file("aligned", &data);
        let mut f = File::open(&path).expect("open");
        let buf = AlignedBuf::read(&mut f).expect("read");
        assert_eq!(&*buf, &data[..]);
        assert_eq!(buf.as_slice().as_ptr() as usize % 8, 0, "8-byte aligned");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn aligned_buf_from_bytes_roundtrips() {
        for len in [0usize, 1, 7, 8, 9, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let buf = AlignedBuf::from_bytes(&data);
            assert_eq!(&*buf, &data[..]);
            assert_eq!(buf.len(), len);
        }
        assert!(AlignedBuf::from_bytes(&[]).is_empty());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmap_matches_file_and_is_page_aligned() {
        let data: Vec<u8> = (0..9000usize).map(|i| (i % 253) as u8).collect();
        let path = temp_file("mapped", &data);
        let f = File::open(&path).expect("open");
        let map = Mmap::map(&f).expect("map");
        assert!(Mmap::supported());
        assert_eq!(&*map, &data[..]);
        assert_eq!(map.len(), data.len());
        assert_eq!(
            map.as_slice().as_ptr() as usize % 4096,
            0,
            "mappings are page aligned"
        );
        std::fs::remove_file(&path).ok();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmap_of_empty_file_is_empty() {
        let path = temp_file("empty", &[]);
        let f = File::open(&path).expect("open");
        let map = Mmap::map(&f).expect("map");
        assert!(map.is_empty());
        assert_eq!(&*map, &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }
}
