//! Vendored stand-in for `rand`, implementing exactly the API surface this
//! workspace uses: `RngCore`, `SeedableRng::{from_seed, seed_from_u64}`, the
//! `Rng` extension trait (`gen`, `gen_bool`, `gen_range` over integer and
//! float ranges) and `seq::SliceRandom::{shuffle, choose}`.
//!
//! Streams are NOT bit-compatible with the upstream crate — the workspace only
//! relies on determinism for a fixed seed and on basic statistical quality,
//! both of which hold here. The concrete generator lives in the sibling
//! vendored `rand_chacha` crate.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same convenient entry point the real crate offers.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain via `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A range samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply bounded sampling; the bias is < 2^-64,
                // far below anything the experiments could observe.
                let r = rng.next_u64() as u128;
                self.start + ((r * width) >> 64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range range");
                let width = (end as u128) - (start as u128) + 1;
                let r = rng.next_u64() as u128;
                start + ((r * width) >> 64) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Extension methods over any [`RngCore`] — the user-facing sampling API.
pub trait Rng: RngCore {
    /// Uniform sample over the full domain of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample_standard(self) < p
    }

    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related random operations (`shuffle`, `choose`).

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift64* so the stream looks random enough for range tests.
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=4);
            assert!(y <= 4);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = Counter(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
