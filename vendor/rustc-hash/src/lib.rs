//! Vendored stand-in for the `rustc-hash` crate.
//!
//! This workspace builds in an offline environment with no crates.io mirror,
//! so the handful of external dependencies are vendored as minimal
//! implementations of exactly the API surface the workspace uses. This one
//! provides the Fx multiplicative hasher behind [`FxHashMap`] / [`FxHashSet`].

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using the fast, non-cryptographic Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using the fast, non-cryptographic Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiplicative hasher (rotate, xor, multiply per word).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<Vec<u32>> = FxHashSet::default();
        assert!(s.insert(vec![1, 2, 3]));
        assert!(!s.insert(vec![1, 2, 3]));
    }

    #[test]
    fn hashing_is_deterministic() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one("spider"), b.hash_one("spider"));
        assert_ne!(b.hash_one("spider"), b.hash_one("mine"));
    }
}
