//! Vendored stand-in for `rand_chacha`: a genuine ChaCha8 keystream generator
//! behind the [`ChaCha8Rng`] type the workspace seeds everywhere.
//!
//! The keystream follows the ChaCha construction (Bernstein) with 8 rounds;
//! the word-level output order is not guaranteed to be bit-identical to the
//! upstream crate, but every property the workspace relies on — determinism
//! for a fixed seed, long period, high statistical quality — holds.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A deterministic ChaCha-8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key (8 words) captured from the seed.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    block: [u32; BLOCK_WORDS],
    /// Next word index in `block` (BLOCK_WORDS = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // 4 double rounds = 8 rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be essentially disjoint");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut buckets = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            let expected = n / 8;
            assert!(
                (b as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket {b} too far from {expected}"
            );
        }
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
