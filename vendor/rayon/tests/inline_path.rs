//! The 1-thread contract: a parallel region at effective width 1 must hit
//! the inline path — no pool traffic and **zero scaffolding allocations**
//! beyond the result buffer itself. Guarded with a counting allocator so the
//! old shim's `parts`/handle round-trip cannot sneak back in.

use rayon::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn width_one_region_allocates_only_the_result() {
    rayon::with_width(1, || {
        let input: Vec<u64> = (0..50_000).collect();
        // Warm up once so any lazily-initialized statics are out of the way.
        let warmup: Vec<u64> = input.par_iter().map(|&x| x + 1).collect();
        assert_eq!(warmup.len(), input.len());

        // The counter is process-global, so a harness thread can leak an
        // unrelated allocation into the measured window. Noise is strictly
        // additive: take the minimum over a few attempts — if any attempt
        // stays at the floor, the inline path itself did.
        let mut fewest = usize::MAX;
        for _ in 0..5 {
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
            let allocated = ALLOCATIONS.load(Ordering::SeqCst) - before;
            assert_eq!(out.len(), input.len());
            assert_eq!(out[123], 246);
            fewest = fewest.min(allocated);
        }
        // Exactly the result Vec (one sized allocation; `collect` may move it
        // once more) — no chunk buffers, no thread handles, no job boxes.
        assert!(
            fewest <= 2,
            "width-1 par_iter made {fewest} allocations (expected the result only)"
        );

        let mut fewest = usize::MAX;
        for _ in 0..5 {
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            let sum: u64 = input.par_chunks(64).fold_reduce(
                || 0u64,
                |acc, c| acc + c.iter().sum::<u64>(),
                |a, b| a + b,
            );
            let allocated = ALLOCATIONS.load(Ordering::SeqCst) - before;
            assert_eq!(sum, input.iter().sum::<u64>());
            fewest = fewest.min(allocated);
        }
        assert_eq!(
            fewest, 0,
            "width-1 fold_reduce must not allocate at all, made {fewest}"
        );
    });
}
