//! Stress and model tests for the lock-free scheduling substrate: a
//! randomized multi-thread torture test of the Chase–Lev deque (no element
//! may be lost or handed out twice) and a single-thread model test of
//! ring-buffer growth across the wraparound boundary.
//!
//! The torture test is the CI witness for the deque's core safety claim —
//! every pushed element is consumed exactly once, under concurrent owner
//! pops, steals from many threads, and repeated buffer growth.

use rayon::deque::{deque, Injector, Steal};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Multi-thread torture: one owner interleaves pushes and pops while a pack
/// of stealers hammers the top. Every element carries a unique id; a shared
/// tally asserts each id is claimed exactly once and none vanish.
#[test]
fn torture_no_lost_or_duplicated_elements() {
    // Stealer count comes from RAYON_NUM_THREADS so CI can sweep widths
    // ({2, 8}) with the same binary; default 4.
    let stealers = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4);
    const TOTAL: usize = 200_000;

    let (worker, stealer) = deque::<usize>();
    let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..TOTAL).map(|_| AtomicUsize::new(0)).collect());
    let done = Arc::new(AtomicBool::new(false));
    let stolen = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..stealers)
        .map(|_| {
            let stealer = stealer.clone();
            let claims = Arc::clone(&claims);
            let done = Arc::clone(&done);
            let stolen = Arc::clone(&stolen);
            thread::spawn(move || loop {
                match stealer.steal() {
                    Steal::Success(id) => {
                        claims[id].fetch_add(1, Ordering::Relaxed);
                        stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) && stealer.is_empty() {
                            return;
                        }
                        std::hint::spin_loop();
                    }
                }
            })
        })
        .collect();

    // Owner: pseudo-random bursts of pushes and pops. Bursts larger than the
    // initial capacity force growth while stealers are mid-read; pops race
    // the stealers for the last element.
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    let mut next_id = 0usize;
    while next_id < TOTAL {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let burst = (rng as usize % 97) + 1;
        for _ in 0..burst {
            if next_id == TOTAL {
                break;
            }
            worker.push(next_id);
            next_id += 1;
        }
        let pops = rng as usize % 64;
        for _ in 0..pops {
            if let Some(id) = worker.pop() {
                claims[id].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    // Owner drains whatever the stealers left behind.
    while let Some(id) = worker.pop() {
        claims[id].fetch_add(1, Ordering::Relaxed);
    }

    let mut lost = 0usize;
    let mut duplicated = 0usize;
    for c in claims.iter() {
        match c.load(Ordering::Relaxed) {
            1 => {}
            0 => lost += 1,
            _ => duplicated += 1,
        }
    }
    assert_eq!(
        (lost, duplicated),
        (0, 0),
        "every element must be claimed exactly once ({} stolen, {} stealers)",
        stolen.load(Ordering::Relaxed),
        stealers
    );
}

/// Single-thread model test of growth at the wraparound boundary: drive
/// `bottom`/`top` far past the initial capacity with steal/push cycles so
/// the live window straddles the ring seam, then grow mid-window and verify
/// FIFO-steal/LIFO-pop order is fully preserved.
#[test]
fn growth_at_wraparound_preserves_order_model() {
    let (worker, stealer) = deque::<usize>();
    // The vendored deque starts at capacity 64. Advance both ends by 48 so
    // the indices sit near the seam, keeping the deque small.
    let mut next = 0usize;
    for _ in 0..48 {
        worker.push(next);
        next += 1;
    }
    let mut expected_front = 0usize;
    for _ in 0..48 {
        assert_eq!(stealer.steal(), Steal::Success(expected_front));
        expected_front += 1;
    }
    // Live window now empty at index 48. Fill past the seam (48 + 40 wraps
    // beyond 64), then keep pushing to force two growths (64 -> 128 -> 256)
    // while the window origin is mid-ring.
    for _ in 0..400 {
        worker.push(next);
        next += 1;
    }
    // Steal half from the front: strict FIFO from the oldest.
    for _ in 0..200 {
        assert_eq!(stealer.steal(), Steal::Success(expected_front));
        expected_front += 1;
    }
    // Pop the rest from the back: strict LIFO down to the steal frontier.
    let mut expected_back = next;
    while let Some(v) = worker.pop() {
        expected_back -= 1;
        assert_eq!(v, expected_back);
    }
    assert_eq!(expected_back, expected_front, "no element lost at the seam");
    assert_eq!(stealer.steal(), Steal::Empty);
}

/// The injector's take-all/splice protocol under concurrent producers and
/// filtered consumers: every value pushed is taken exactly once, and
/// ineligible values are never handed to the wrong consumer.
#[test]
fn injector_filtered_consumption_is_exact() {
    let inj = Arc::new(Injector::<usize>::new());
    const PER_PRODUCER: usize = 20_000;
    const PRODUCERS: usize = 2;
    const TOTAL: usize = PER_PRODUCER * PRODUCERS;
    let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..TOTAL).map(|_| AtomicUsize::new(0)).collect());

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let inj = Arc::clone(&inj);
            thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    inj.push(p * PER_PRODUCER + i);
                }
            })
        })
        .collect();
    // Two consumers with complementary eligibility filters (even/odd). Each
    // exits after claiming its exact share — `is_empty` is no exit signal
    // here, since the peer's take-all scan detaches the chain transiently.
    let consumers: Vec<_> = (0..2)
        .map(|parity| {
            let inj = Arc::clone(&inj);
            let claims = Arc::clone(&claims);
            thread::spawn(move || {
                let mut mine = 0usize;
                while mine < TOTAL / 2 {
                    let (got, _repushed) = inj.take_where(|&v| v % 2 == parity);
                    match got {
                        Some(v) => {
                            assert_eq!(v % 2, parity, "filter violated");
                            claims[v].fetch_add(1, Ordering::Relaxed);
                            mine += 1;
                        }
                        None => std::hint::spin_loop(),
                    }
                }
            })
        })
        .collect();
    for h in producers {
        h.join().unwrap();
    }
    for h in consumers {
        h.join().unwrap();
    }
    assert!(inj.is_empty());
    assert!(
        claims.iter().all(|c| c.load(Ordering::Relaxed) == 1),
        "every injected value must be consumed exactly once"
    );
}
