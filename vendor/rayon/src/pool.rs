//! The work-stealing runtime: a lazily-initialized persistent worker pool,
//! per-worker LIFO deques with randomized stealing, and the [`join`]
//! primitive every parallel iterator is built on.
//!
//! ## Execution model
//!
//! Workers are OS threads spawned **once** (on first parallel use) and kept
//! for the life of the process, parking when idle. Each worker owns a deque:
//! it pushes and pops work at the back (LIFO — the hot, cache-warm end) while
//! idle workers steal from the front (FIFO — the largest, oldest subtrees).
//! Victim order is randomized per steal attempt so contention spreads instead
//! of convoying on worker 0.
//!
//! [`join(a, b)`](join) is the only scheduling primitive: it publishes `b` on
//! the local deque, runs `a` inline, then either pops `b` back (nobody wanted
//! it — run inline, zero inter-thread traffic) or, if `b` was stolen, keeps
//! executing *other* stolen work until the thief finishes. Nested parallel
//! regions therefore compose: an inner `par_iter` executed on a worker just
//! pushes more jobs onto the same deque, where siblings can steal them — no
//! "already parallel, run sequentially" suppression flag.
//!
//! ## Region width
//!
//! A parallel region runs at a *width*: the maximum number of workers that
//! may participate. The default width is `RAYON_NUM_THREADS` (or the
//! machine's available parallelism); [`with_width`] caps or raises it for a
//! scope, and the cap is inherited by every job the region spawns (only
//! workers with `index < width` may steal a region's jobs). Width 1 never
//! touches the pool at all — callers check [`current_num_threads`] and run
//! inline. Results never depend on the width: every combinator in this crate
//! reduces in input order.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Hard cap on pool size: a safety valve against absurd width requests (the
/// per-request `threads` knob upstream is user input).
pub const MAX_WORKERS: usize = 128;

/// Spin-yield rounds before an idle worker parks on the condvar. Short:
/// parked workers must cost nothing, so sequential phases on the calling
/// thread (and other processes on small boxes) are not taxed by the pool.
const IDLE_SPINS: u32 = 8;

/// Default number of worker threads: `RAYON_NUM_THREADS` if set (and ≥ 1),
/// else the machine's available parallelism. Resolved once and cached.
fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n.min(MAX_WORKERS);
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_WORKERS)
    })
}

/// Widths requested before the pool existed (grown into on creation).
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Index of this thread inside the pool, `usize::MAX` for non-workers.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Width of the region this thread is currently executing; 0 = unset
    /// (fall back to the default width).
    static REGION_WIDTH: Cell<usize> = const { Cell::new(0) };
    /// Per-thread xorshift state for randomized victim selection.
    static STEAL_RNG: Cell<u64> = const { Cell::new(0) };
}

/// Width of the current region (the default width outside any region).
fn current_width() -> usize {
    let w = REGION_WIDTH.with(Cell::get);
    if w == 0 {
        default_threads()
    } else {
        w
    }
}

/// Number of threads the current parallel region may use (mirrors
/// `rayon::current_num_threads`): the region's width cap, or the default
/// width (`RAYON_NUM_THREADS` / available parallelism) outside any
/// [`with_width`] scope. A return value of 1 means parallel regions run
/// inline on the calling thread.
pub fn current_num_threads() -> usize {
    current_width().clamp(1, MAX_WORKERS)
}

/// Asks the pool to grow to at least `threads` workers (clamped to
/// [`MAX_WORKERS`]). Spawns the missing workers immediately if the pool
/// exists, or records the request for its creation. Never shrinks: widths
/// above the default only take effect through [`with_width`].
pub fn ensure_pool_size(threads: usize) {
    let threads = threads.clamp(1, MAX_WORKERS);
    REQUESTED.fetch_max(threads, Ordering::Relaxed);
    if threads > 1 {
        registry().ensure_workers(threads);
    }
}

/// Runs `f` with the parallel width capped (or raised) to `width`: every
/// parallel region entered inside `f` on this thread uses at most `width`
/// workers. `width == 1` makes all of them run inline with zero pool
/// traffic; widths above the default spawn the extra workers on demand.
/// Results are identical at every width — only the wall-clock changes.
pub fn with_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    let width = width.clamp(1, MAX_WORKERS);
    if width > 1 {
        ensure_pool_size(width);
    }
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            REGION_WIDTH.with(|w| w.set(self.0));
        }
    }
    let prev = REGION_WIDTH.with(|w| {
        let prev = w.get();
        w.set(width);
        prev
    });
    let _reset = Reset(prev);
    f()
}

/// Context passed to [`join_context`] closures: whether the closure was
/// *migrated* (executed by a thief rather than the thread that forked it).
/// Adaptive splitters use this as the demand signal — a steal means idle
/// workers exist, so split finer.
#[derive(Clone, Copy, Debug)]
pub struct FnContext {
    migrated: bool,
}

impl FnContext {
    /// True when the closure ran on a different worker than the one that
    /// forked it.
    pub fn migrated(&self) -> bool {
        self.migrated
    }
}

// ---------------------------------------------------------------------------
// Jobs and latches
// ---------------------------------------------------------------------------

/// Type-erased pointer to a job waiting in a deque. The pointee is a
/// [`StackJob`] on the stack of the thread that forked it, which blocks until
/// the job completes — so the pointer never dangles.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
    /// Width of the forking region: only workers with `index < width` may
    /// execute this job.
    width: usize,
}

// SAFETY: a JobRef is only created from a StackJob whose owner blocks until
// the latch is set, and the execute path is the unique consumer of the
// closure (guarded by `Option::take`).
unsafe impl Send for JobRef {}

impl JobRef {
    unsafe fn execute(self) {
        (self.execute_fn)(self.data)
    }
}

/// Completion flag with both spin-probe and blocking-wait interfaces.
struct Latch {
    set: AtomicBool,
    lock: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    fn new() -> Self {
        Self {
            set: AtomicBool::new(false),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    #[inline]
    fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    fn set(&self) {
        self.set.store(true, Ordering::Release);
        // Lock-then-notify so a waiter that checked `probe` under the lock
        // cannot miss the wakeup.
        let _guard = self.lock.lock().unwrap();
        self.cond.notify_all();
    }

    /// Blocks until the latch is set (for non-worker threads, which have no
    /// deque to drain while they wait).
    fn wait_blocking(&self) {
        let mut guard = self.lock.lock().unwrap();
        while !self.probe() {
            guard = self.cond.wait(guard).unwrap();
        }
    }

    /// Parks for at most `dur` or until the latch is set.
    fn wait_timeout(&self, dur: Duration) {
        let guard = self.lock.lock().unwrap();
        if !self.probe() {
            let _ = self.cond.wait_timeout(guard, dur).unwrap();
        }
    }
}

enum JobResult<R> {
    Incomplete,
    Ok(R),
    Panic(Box<dyn Any + Send + 'static>),
}

/// A forked closure living on its owner's stack, shared with a potential
/// thief through a [`JobRef`].
struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    latch: Latch,
    width: usize,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce(FnContext) -> R + Send,
    R: Send,
{
    fn new(f: F, width: usize) -> Self {
        Self {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(JobResult::Incomplete),
            latch: Latch::new(),
            width,
        }
    }

    /// # Safety
    /// The caller must keep `self` alive (and on this stack frame) until the
    /// latch is set or the ref is popped back un-executed.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute_fn: Self::execute_stolen,
            width: self.width,
        }
    }

    /// Entry point when a thief (or the same worker draining its own deque
    /// while waiting on an unrelated latch) executes the job.
    unsafe fn execute_stolen(data: *const ()) {
        let job = &*(data as *const Self);
        let f = (*job.f.get()).take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(FnContext { migrated: true })));
        *job.result.get() = match result {
            Ok(r) => JobResult::Ok(r),
            Err(payload) => JobResult::Panic(payload),
        };
        job.latch.set();
    }

    /// Takes the closure back (the owner popped the job before any thief ran
    /// it).
    fn take_f(&self) -> F {
        unsafe { (*self.f.get()).take().expect("job executed twice") }
    }

    /// Takes the result once the latch is set.
    fn take_result(&self) -> JobResult<R> {
        unsafe { std::mem::replace(&mut *self.result.get(), JobResult::Incomplete) }
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

struct WorkerHandle {
    deque: Mutex<VecDeque<JobRef>>,
}

struct Registry {
    /// All worker slots, preallocated to [`MAX_WORKERS`]; only the first
    /// `live` are backed by threads.
    workers: Vec<WorkerHandle>,
    /// Number of spawned workers.
    live: AtomicUsize,
    /// Overflow queue for jobs submitted from outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// Idle-worker parking lot.
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
    sleepers: AtomicUsize,
    /// Serializes pool growth; holds the spawned-so-far count.
    grow_lock: Mutex<usize>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    let reg = REGISTRY.get_or_init(|| Registry {
        workers: (0..MAX_WORKERS)
            .map(|_| WorkerHandle {
                deque: Mutex::new(VecDeque::new()),
            })
            .collect(),
        live: AtomicUsize::new(0),
        injector: Mutex::new(VecDeque::new()),
        idle_lock: Mutex::new(()),
        idle_cond: Condvar::new(),
        sleepers: AtomicUsize::new(0),
        grow_lock: Mutex::new(0),
    });
    reg.ensure_workers(default_threads().max(REQUESTED.load(Ordering::Relaxed)));
    reg
}

impl Registry {
    /// Spawns workers until at least `target` are live. Idempotent.
    fn ensure_workers(&'static self, target: usize) {
        let target = target.min(MAX_WORKERS);
        if self.live.load(Ordering::Acquire) >= target {
            return;
        }
        let mut spawned = self.grow_lock.lock().unwrap();
        while *spawned < target {
            let index = *spawned;
            std::thread::Builder::new()
                .name(format!("rayon-worker-{index}"))
                .spawn(move || worker_main(self, index))
                .expect("failed to spawn pool worker");
            *spawned += 1;
            self.live.store(*spawned, Ordering::Release);
        }
    }

    /// Wakes parked workers after new work was published.
    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.idle_lock.lock().unwrap();
            self.idle_cond.notify_all();
        }
    }

    fn push_local(&self, index: usize, job: JobRef) {
        self.workers[index].deque.lock().unwrap().push_back(job);
        self.notify();
    }

    /// Pops the back of `index`'s deque if it is exactly `data` (the job this
    /// frame pushed and nobody stole).
    fn pop_local_if(&self, index: usize, data: *const ()) -> bool {
        let mut deque = self.workers[index].deque.lock().unwrap();
        if deque.back().is_some_and(|j| std::ptr::eq(j.data, data)) {
            deque.pop_back();
            true
        } else {
            false
        }
    }

    fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
        self.notify();
    }

    /// Finds the next job for worker `index`: own deque back (LIFO), then the
    /// injector, then a randomized sweep of the other workers' deque fronts.
    /// Width caps are honored everywhere except the own deque, whose jobs
    /// were pushed by regions this worker already participates in.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.workers[index].deque.lock().unwrap().pop_back() {
            return Some(job);
        }
        if let Some(job) = take_eligible(&mut self.injector.lock().unwrap(), index) {
            return Some(job);
        }
        let live = self.live.load(Ordering::Acquire);
        if live <= 1 {
            return None;
        }
        let start = (steal_rng_next() as usize) % live;
        for k in 0..live {
            let victim = (start + k) % live;
            if victim == index {
                continue;
            }
            if let Some(job) = take_eligible(&mut self.workers[victim].deque.lock().unwrap(), index)
            {
                return Some(job);
            }
        }
        None
    }
}

/// Removes the oldest job in `deque` that worker `index` may execute
/// (steals are FIFO: the front holds the largest unsplit subtrees).
fn take_eligible(deque: &mut VecDeque<JobRef>, index: usize) -> Option<JobRef> {
    let pos = deque.iter().position(|j| index < j.width)?;
    deque.remove(pos)
}

fn steal_rng_next() -> u64 {
    STEAL_RNG.with(|rng| {
        let mut x = rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        rng.set(x);
        x
    })
}

/// Executes a job with the region width it was forked under.
unsafe fn execute_job(job: JobRef) {
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            REGION_WIDTH.with(|w| w.set(self.0));
        }
    }
    let prev = REGION_WIDTH.with(|w| {
        let prev = w.get();
        w.set(job.width);
        prev
    });
    let _reset = Reset(prev);
    job.execute();
}

fn worker_main(reg: &'static Registry, index: usize) {
    WORKER_INDEX.with(|w| w.set(index));
    STEAL_RNG.with(|rng| rng.set(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1) | 1));
    let mut idle = 0u32;
    loop {
        if let Some(job) = reg.find_work(index) {
            idle = 0;
            unsafe { execute_job(job) };
            continue;
        }
        idle += 1;
        if idle < IDLE_SPINS {
            std::thread::yield_now();
            continue;
        }
        // Park until new work is published. Register as a sleeper, then
        // re-check for work while *holding* the idle lock: a publisher pushes
        // first and only then takes the idle lock to notify (never holding a
        // deque lock across it), so either this re-check sees the job or the
        // publisher's notify happens after the wait begins — a wakeup cannot
        // be lost. The long timeout is a belt-and-braces fallback, not a
        // poll: parked workers must not burn CPU the sequential phases need.
        reg.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = reg.idle_lock.lock().unwrap();
        if let Some(job) = reg.find_work(index) {
            drop(guard);
            reg.sleepers.fetch_sub(1, Ordering::SeqCst);
            idle = 0;
            unsafe { execute_job(job) };
            continue;
        }
        let _ = reg
            .idle_cond
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap();
        reg.sleepers.fetch_sub(1, Ordering::SeqCst);
        // Woken (or timed out): try one sweep, and if it fails go straight
        // back to parking instead of a fresh yield storm.
        idle = IDLE_SPINS;
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs `a` and `b`, potentially in parallel, returning both results. The
/// fundamental fork-join primitive: `b` is made available for stealing while
/// the calling thread runs `a`; if nobody stole it, `b` runs inline with no
/// synchronization beyond two deque operations.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    join_context(|_| a(), |_| b())
}

/// [`join`] with an [`FnContext`] telling each closure whether it migrated to
/// another worker — the demand signal adaptive splitters key off.
pub fn join_context<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce(FnContext) -> RA + Send,
    B: FnOnce(FnContext) -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a(FnContext { migrated: false });
        let rb = b(FnContext { migrated: false });
        return (ra, rb);
    }
    let index = WORKER_INDEX.with(Cell::get);
    if index == usize::MAX {
        // Not on a pool thread: move the whole join into the pool and block.
        return run_in_pool(move |_| join_context(a, b));
    }
    join_on_worker(registry(), index, a, b)
}

fn join_on_worker<A, B, RA, RB>(reg: &'static Registry, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce(FnContext) -> RA + Send,
    B: FnOnce(FnContext) -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b, current_width());
    let b_ref = unsafe { job_b.as_job_ref() };
    let b_data = b_ref.data;
    reg.push_local(index, b_ref);
    let result_a = panic::catch_unwind(AssertUnwindSafe(|| a(FnContext { migrated: false })));
    if reg.pop_local_if(index, b_data) {
        // `b` never left this worker: run it inline (or drop it if `a`
        // panicked — it is no longer shared, so unwinding is safe).
        match result_a {
            Ok(ra) => {
                let f = job_b.take_f();
                let rb = f(FnContext { migrated: false });
                (ra, rb)
            }
            Err(payload) => panic::resume_unwind(payload),
        }
    } else {
        // Stolen: execute other work until the thief finishes. `job_b` lives
        // on this stack, so we must not unwind past it before the latch sets.
        while !job_b.latch.probe() {
            if let Some(job) = reg.find_work(index) {
                unsafe { execute_job(job) };
            } else {
                job_b.latch.wait_timeout(Duration::from_micros(200));
            }
        }
        let rb = job_b.take_result();
        match (result_a, rb) {
            (Ok(ra), JobResult::Ok(rb)) => (ra, rb),
            (Err(payload), _) => panic::resume_unwind(payload),
            (Ok(_), JobResult::Panic(payload)) => panic::resume_unwind(payload),
            (Ok(_), JobResult::Incomplete) => unreachable!("latch set without a result"),
        }
    }
}

/// Runs `f` inside the pool if the calling thread is not already a worker
/// (otherwise calls it directly). This is how a top-level parallel region
/// enters the deques: one injected job, one blocking latch wait.
pub(crate) fn in_region<R, F>(f: F) -> R
where
    F: FnOnce(FnContext) -> R + Send,
    R: Send,
{
    if WORKER_INDEX.with(Cell::get) != usize::MAX {
        return f(FnContext { migrated: false });
    }
    run_in_pool(f)
}

fn run_in_pool<R, F>(f: F) -> R
where
    F: FnOnce(FnContext) -> R + Send,
    R: Send,
{
    let width = current_width().clamp(1, MAX_WORKERS);
    let reg = registry();
    reg.ensure_workers(width);
    let job = StackJob::new(f, width);
    let job_ref = unsafe { job.as_job_ref() };
    reg.inject(job_ref);
    job.latch.wait_blocking();
    match job.take_result() {
        JobResult::Ok(r) => r,
        JobResult::Panic(payload) => panic::resume_unwind(payload),
        JobResult::Incomplete => unreachable!("latch set without a result"),
    }
}
