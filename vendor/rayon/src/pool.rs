//! The work-stealing runtime: a lazily-initialized persistent worker pool,
//! per-worker LIFO deques with randomized stealing, and the [`join`]
//! primitive every parallel iterator is built on.
//!
//! ## Execution model
//!
//! Workers are OS threads spawned **once** (on first parallel use) and kept
//! for the life of the process, parking when idle. Each worker owns a deque:
//! it pushes and pops work at the back (LIFO — the hot, cache-warm end) while
//! idle workers steal from the front (FIFO — the largest, oldest subtrees).
//! Victim order is randomized per steal attempt so contention spreads instead
//! of convoying on worker 0.
//!
//! [`join(a, b)`](join) is the only scheduling primitive: it publishes `b` on
//! the local deque, runs `a` inline, then either pops `b` back (nobody wanted
//! it — run inline, zero inter-thread traffic) or, if `b` was stolen, keeps
//! executing *other* stolen work until the thief finishes. Nested parallel
//! regions therefore compose: an inner `par_iter` executed on a worker just
//! pushes more jobs onto the same deque, where siblings can steal them — no
//! "already parallel, run sequentially" suppression flag.
//!
//! ## Region width
//!
//! A parallel region runs at a *width*: the maximum number of workers that
//! may participate. The default width is `RAYON_NUM_THREADS` (or the
//! machine's available parallelism); [`with_width`] caps or raises it for a
//! scope, and the cap is inherited by every job the region spawns (only
//! workers with `index < width` may steal a region's jobs). Width 1 never
//! touches the pool at all — callers check [`current_num_threads`] and run
//! inline. Results never depend on the width: every combinator in this crate
//! reduces in input order.

use crate::deque::{CachePadded, ChaseLev, Injector, Steal};
use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Hard cap on pool size: a safety valve against absurd width requests (the
/// per-request `threads` knob upstream is user input).
pub const MAX_WORKERS: usize = 128;

/// Spin-yield rounds before an idle worker parks on the condvar. Short:
/// parked workers must cost nothing, so sequential phases on the calling
/// thread (and other processes on small boxes) are not taxed by the pool.
const IDLE_SPINS: u32 = 8;

/// Default number of worker threads: `RAYON_NUM_THREADS` if set (and ≥ 1),
/// else the machine's available parallelism. Resolved once and cached.
fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n.min(MAX_WORKERS);
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_WORKERS)
    })
}

/// Widths requested before the pool existed (grown into on creation).
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Index of this thread inside the pool, `usize::MAX` for non-workers.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Width of the region this thread is currently executing; 0 = unset
    /// (fall back to the default width).
    static REGION_WIDTH: Cell<usize> = const { Cell::new(0) };
    /// Per-thread xorshift state for randomized victim selection.
    static STEAL_RNG: Cell<u64> = const { Cell::new(0) };
}

/// Width of the current region (the default width outside any region).
fn current_width() -> usize {
    let w = REGION_WIDTH.with(Cell::get);
    if w == 0 {
        default_threads()
    } else {
        w
    }
}

/// Number of threads the current parallel region may use (mirrors
/// `rayon::current_num_threads`): the region's width cap, or the default
/// width (`RAYON_NUM_THREADS` / available parallelism) outside any
/// [`with_width`] scope. A return value of 1 means parallel regions run
/// inline on the calling thread.
pub fn current_num_threads() -> usize {
    current_width().clamp(1, MAX_WORKERS)
}

/// Asks the pool to grow to at least `threads` workers (clamped to
/// [`MAX_WORKERS`]). Spawns the missing workers immediately if the pool
/// exists, or records the request for its creation. Never shrinks: widths
/// above the default only take effect through [`with_width`].
pub fn ensure_pool_size(threads: usize) {
    let threads = threads.clamp(1, MAX_WORKERS);
    REQUESTED.fetch_max(threads, Ordering::Relaxed);
    if threads > 1 {
        registry().ensure_workers(threads);
    }
}

/// Runs `f` with the parallel width capped (or raised) to `width`: every
/// parallel region entered inside `f` on this thread uses at most `width`
/// workers. `width == 1` makes all of them run inline with zero pool
/// traffic; widths above the default spawn the extra workers on demand.
/// Results are identical at every width — only the wall-clock changes.
pub fn with_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    let width = width.clamp(1, MAX_WORKERS);
    if width > 1 {
        ensure_pool_size(width);
    }
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            REGION_WIDTH.with(|w| w.set(self.0));
        }
    }
    let prev = REGION_WIDTH.with(|w| {
        let prev = w.get();
        w.set(width);
        prev
    });
    let _reset = Reset(prev);
    f()
}

/// Context passed to [`join_context`] closures: whether the closure was
/// *migrated* (executed by a thief rather than the thread that forked it).
/// Adaptive splitters use this as the demand signal — a steal means idle
/// workers exist, so split finer.
#[derive(Clone, Copy, Debug)]
pub struct FnContext {
    migrated: bool,
}

impl FnContext {
    /// True when the closure ran on a different worker than the one that
    /// forked it.
    pub fn migrated(&self) -> bool {
        self.migrated
    }
}

// ---------------------------------------------------------------------------
// Jobs and latches
// ---------------------------------------------------------------------------

/// Type-erased pointer to a job waiting in a deque. The pointee is a
/// [`StackJob`] on the stack of the thread that forked it, which blocks until
/// the job completes — so the pointer never dangles.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
    /// Width of the forking region: only workers with `index < width` may
    /// execute this job.
    width: usize,
}

// SAFETY: a JobRef is only created from a StackJob whose owner blocks until
// the latch is set, and the execute path is the unique consumer of the
// closure (guarded by `Option::take`).
unsafe impl Send for JobRef {}

impl JobRef {
    unsafe fn execute(self) {
        (self.execute_fn)(self.data)
    }
}

/// Global rendezvous for latch waits. A latch lives inside a [`StackJob`] on
/// its owner's stack, and the owner is free to observe the flag (a spin
/// probe, no lock) and pop that stack frame the instant the setter's store
/// lands — so the setter must never touch latch memory *after* publishing
/// the flag. Blocking waits and the post-set notification therefore go
/// through these process-wide statics, which outlive every job. Waits on a
/// latch are rare (a stolen `join` branch with no other work to drain, or an
/// external submitter), so sharing one rendezvous is not a contention point.
static LATCH_LOCK: Mutex<()> = Mutex::new(());
static LATCH_COND: Condvar = Condvar::new();

/// Completion flag with both spin-probe and blocking-wait interfaces.
struct Latch {
    set: AtomicBool,
}

impl Latch {
    fn new() -> Self {
        Self {
            set: AtomicBool::new(false),
        }
    }

    #[inline]
    fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    fn set(&self) {
        self.set.store(true, Ordering::Release);
        // `self` may already be deallocated: the store above releases the
        // owner to take the result and unwind the job's frame. Only the
        // global rendezvous may be touched from here on. Lock-then-notify so
        // a waiter that checked `probe` under the lock cannot miss a wakeup.
        let _guard = LATCH_LOCK.lock().unwrap();
        LATCH_COND.notify_all();
    }

    /// Blocks until the latch is set (for non-worker threads, which have no
    /// deque to drain while they wait).
    fn wait_blocking(&self) {
        let mut guard = LATCH_LOCK.lock().unwrap();
        while !self.probe() {
            guard = LATCH_COND.wait(guard).unwrap();
        }
    }

    /// Parks for at most `dur` or until the latch is set.
    fn wait_timeout(&self, dur: Duration) {
        let guard = LATCH_LOCK.lock().unwrap();
        if !self.probe() {
            let _ = LATCH_COND.wait_timeout(guard, dur).unwrap();
        }
    }
}

enum JobResult<R> {
    Incomplete,
    Ok(R),
    Panic(Box<dyn Any + Send + 'static>),
}

/// A forked closure living on its owner's stack, shared with a potential
/// thief through a [`JobRef`].
struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    latch: Latch,
    width: usize,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce(FnContext) -> R + Send,
    R: Send,
{
    fn new(f: F, width: usize) -> Self {
        Self {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(JobResult::Incomplete),
            latch: Latch::new(),
            width,
        }
    }

    /// # Safety
    /// The caller must keep `self` alive (and on this stack frame) until the
    /// latch is set or the ref is popped back un-executed.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute_fn: Self::execute_stolen,
            width: self.width,
        }
    }

    /// Entry point when a thief (or the same worker draining its own deque
    /// while waiting on an unrelated latch) executes the job.
    unsafe fn execute_stolen(data: *const ()) {
        let job = &*(data as *const Self);
        let f = (*job.f.get()).take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(FnContext { migrated: true })));
        *job.result.get() = match result {
            Ok(r) => JobResult::Ok(r),
            Err(payload) => JobResult::Panic(payload),
        };
        job.latch.set();
    }

    /// Takes the closure back (the owner popped the job before any thief ran
    /// it).
    fn take_f(&self) -> F {
        unsafe { (*self.f.get()).take().expect("job executed twice") }
    }

    /// Takes the result once the latch is set.
    fn take_result(&self) -> JobResult<R> {
        unsafe { std::mem::replace(&mut *self.result.get(), JobResult::Incomplete) }
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

struct WorkerHandle {
    /// This worker's Chase–Lev deque: the owner pushes/pops the bottom with
    /// no CAS; other workers steal the top. Only the owning worker thread
    /// calls the unsafe owner half (`push_local`/`pop_local` enforce the
    /// index discipline).
    deque: ChaseLev<JobRef>,
}

struct Registry {
    /// All worker slots, preallocated to [`MAX_WORKERS`] so growth never
    /// moves a deque out from under an in-flight steal; only the first
    /// `live` are backed by threads.
    workers: Vec<WorkerHandle>,
    /// Number of spawned workers. Padded: it is read in every steal sweep
    /// while `sleepers` churns on park/unpark — sharing a line would drag
    /// the sweep through the parking traffic.
    live: CachePadded<AtomicUsize>,
    /// Lock-free bag for jobs submitted from outside the pool (and for
    /// stolen jobs a width-capped worker was not eligible to run).
    injector: Injector<JobRef>,
    /// Idle-worker parking lot. Only the *blocking* edge is a lock: all work
    /// publication and discovery is lock-free, the condvar exists so parked
    /// workers cost nothing.
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
    sleepers: CachePadded<AtomicUsize>,
    /// Serializes pool growth (cold path: a few times per process); holds
    /// the spawned-so-far count.
    grow_lock: Mutex<usize>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    let reg = REGISTRY.get_or_init(|| Registry {
        workers: (0..MAX_WORKERS)
            .map(|_| WorkerHandle {
                deque: ChaseLev::new(),
            })
            .collect(),
        live: CachePadded::new(AtomicUsize::new(0)),
        injector: Injector::new(),
        idle_lock: Mutex::new(()),
        idle_cond: Condvar::new(),
        sleepers: CachePadded::new(AtomicUsize::new(0)),
        grow_lock: Mutex::new(0),
    });
    reg.ensure_workers(default_threads().max(REQUESTED.load(Ordering::Relaxed)));
    reg
}

impl Registry {
    /// Spawns workers until at least `target` are live. Idempotent.
    fn ensure_workers(&'static self, target: usize) {
        let target = target.min(MAX_WORKERS);
        if self.live.load(Ordering::Acquire) >= target {
            return;
        }
        let mut spawned = self.grow_lock.lock().unwrap();
        while *spawned < target {
            let index = *spawned;
            std::thread::Builder::new()
                .name(format!("rayon-worker-{index}"))
                .spawn(move || worker_main(self, index))
                .expect("failed to spawn pool worker");
            *spawned += 1;
            self.live.store(*spawned, Ordering::Release);
        }
    }

    /// Wakes parked workers after new work was published. The `SeqCst`
    /// fence pairs with the parker's fence (see `worker_main`): either this
    /// load observes the parker's `sleepers` increment (→ we take the idle
    /// lock and notify), or the fence order puts the parker's re-check after
    /// our publication (→ the re-check finds the job). A wakeup cannot be
    /// lost either way.
    fn notify(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.idle_lock.lock().unwrap();
            self.idle_cond.notify_all();
        }
    }

    /// Pushes onto worker `index`'s own deque. Lock-free: one slot write and
    /// one `Release` store of `bottom`.
    ///
    /// Must only be called by the thread that *is* worker `index` — the
    /// single-owner requirement of [`ChaseLev::push`]; `join_on_worker` and
    /// the worker loop uphold it by construction.
    fn push_local(&self, index: usize, job: JobRef) {
        // SAFETY: caller is worker `index` (see above).
        unsafe { self.workers[index].deque.push(job) };
        self.notify();
    }

    /// Pops the bottom (most recent) job of worker `index`'s own deque.
    /// Same owner-only contract as [`Registry::push_local`].
    fn pop_local(&self, index: usize) -> Option<JobRef> {
        // SAFETY: caller is worker `index`.
        unsafe { self.workers[index].deque.pop() }
    }

    fn inject(&self, job: JobRef) {
        self.injector.push(job);
        self.notify();
    }

    /// Read-only probe: is there *any* visible work this worker might get?
    /// Used for the parked re-check while holding the idle lock, where the
    /// mutating [`Registry::find_work`] must not run — its re-injection
    /// paths call [`Registry::notify`], which takes the idle lock and would
    /// self-deadlock. Conservative over-approximation is fine (a spurious
    /// wakeup just re-parks); missing published work is not, and cannot
    /// happen: the caller's SeqCst fence pairs with the publisher's fence in
    /// `notify`, so every push that missed the `sleepers` increment is
    /// visible to these loads.
    fn has_work(&self, index: usize) -> bool {
        if !self.workers[index].deque.is_empty() || !self.injector.is_empty() {
            return true;
        }
        let live = self.live.load(Ordering::Acquire);
        (0..live).any(|v| v != index && !self.workers[v].deque.is_empty())
    }

    /// Finds the next job for worker `index`: own deque bottom (LIFO), then
    /// the injector, then a randomized sweep stealing the other workers'
    /// deque tops. Width caps are honored everywhere except the own deque,
    /// whose jobs were pushed by regions this worker already participates
    /// in; a stolen job this worker is *not* eligible for is handed to the
    /// injector (where `take_where` filters by eligibility) instead of being
    /// lost or run out of width.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.pop_local(index) {
            return Some(job);
        }
        let (job, repushed) = self.injector.take_where(|j| index < j.width);
        if repushed {
            // The bag was transiently empty mid-scan; re-notify so a worker
            // that observed the gap and parked is woken for the leftovers.
            self.notify();
        }
        if let Some(job) = job {
            return Some(job);
        }
        let live = self.live.load(Ordering::Acquire);
        if live <= 1 {
            return None;
        }
        let start = (steal_rng_next() as usize) % live;
        for k in 0..live {
            let victim = (start + k) % live;
            if victim == index {
                continue;
            }
            // Bounded retries: `Retry` means another thread moved `top`
            // under us — someone is making progress; after a couple of
            // attempts move to the next victim rather than convoying here.
            let mut retries = 0u32;
            loop {
                match self.workers[victim].deque.steal() {
                    Steal::Success(job) => {
                        if index < job.width {
                            return Some(job);
                        }
                        // Stolen but not ours to run (width cap): park it in
                        // the injector for an eligible worker.
                        self.injector.push(job);
                        self.notify();
                        break;
                    }
                    Steal::Retry if retries < 2 => {
                        retries += 1;
                        std::hint::spin_loop();
                    }
                    Steal::Retry | Steal::Empty => break,
                }
            }
        }
        None
    }
}

fn steal_rng_next() -> u64 {
    STEAL_RNG.with(|rng| {
        let mut x = rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        rng.set(x);
        x
    })
}

/// Executes a job with the region width it was forked under.
unsafe fn execute_job(job: JobRef) {
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            REGION_WIDTH.with(|w| w.set(self.0));
        }
    }
    let prev = REGION_WIDTH.with(|w| {
        let prev = w.get();
        w.set(job.width);
        prev
    });
    let _reset = Reset(prev);
    job.execute();
}

fn worker_main(reg: &'static Registry, index: usize) {
    WORKER_INDEX.with(|w| w.set(index));
    STEAL_RNG.with(|rng| rng.set(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1) | 1));
    let mut idle = 0u32;
    loop {
        if let Some(job) = reg.find_work(index) {
            idle = 0;
            unsafe { execute_job(job) };
            continue;
        }
        idle += 1;
        if idle < IDLE_SPINS {
            std::thread::yield_now();
            continue;
        }
        // Park until new work is published. Register as a sleeper, fence,
        // then re-check for work while *holding* the idle lock. The fence
        // pairs with the publisher's fence in `notify` (push → fence → read
        // `sleepers` vs. increment `sleepers` → fence → re-check): in the
        // total fence order one side is first, so either the publisher sees
        // the sleeper (and notifies under the idle lock, which this thread
        // holds until its wait begins — condvar semantics deliver it) or the
        // re-check sees the published job. A wakeup cannot be lost. The
        // timeout is a belt-and-braces fallback, not a poll: parked workers
        // must not burn CPU the sequential phases need.
        reg.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let guard = reg.idle_lock.lock().unwrap();
        // Read-only probe only: `find_work` may notify (re-injection paths),
        // and notify takes the idle lock — calling it here would deadlock on
        // the guard this thread already holds.
        if reg.has_work(index) {
            drop(guard);
            reg.sleepers.fetch_sub(1, Ordering::SeqCst);
            idle = 0;
            continue;
        }
        let _ = reg
            .idle_cond
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap();
        reg.sleepers.fetch_sub(1, Ordering::SeqCst);
        // Woken (or timed out): try one sweep, and if it fails go straight
        // back to parking instead of a fresh yield storm.
        idle = IDLE_SPINS;
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs `a` and `b`, potentially in parallel, returning both results. The
/// fundamental fork-join primitive: `b` is made available for stealing while
/// the calling thread runs `a`; if nobody stole it, `b` runs inline with no
/// synchronization beyond two deque operations.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    join_context(|_| a(), |_| b())
}

/// [`join`] with an [`FnContext`] telling each closure whether it migrated to
/// another worker — the demand signal adaptive splitters key off.
pub fn join_context<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce(FnContext) -> RA + Send,
    B: FnOnce(FnContext) -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a(FnContext { migrated: false });
        let rb = b(FnContext { migrated: false });
        return (ra, rb);
    }
    let index = WORKER_INDEX.with(Cell::get);
    if index == usize::MAX {
        // Not on a pool thread: move the whole join into the pool and block.
        return run_in_pool(move |_| join_context(a, b));
    }
    join_on_worker(registry(), index, a, b)
}

fn join_on_worker<A, B, RA, RB>(reg: &'static Registry, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce(FnContext) -> RA + Send,
    B: FnOnce(FnContext) -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b, current_width());
    let b_ref = unsafe { job_b.as_job_ref() };
    let b_data = b_ref.data;
    reg.push_local(index, b_ref);
    let result_a = panic::catch_unwind(AssertUnwindSafe(|| a(FnContext { migrated: false })));
    // Take `b` back if nobody wanted it. Nested joins inside `a` leave the
    // deque balanced at this frame's depth, so the bottom is `b` exactly
    // when it was not stolen; popping anything *else* (a job pushed by an
    // enclosing frame on this worker) proves `b` left, and the popped job is
    // executed here as a self-steal — the same thing the wait loop's
    // `find_work` would have done with it.
    match reg.pop_local(index) {
        Some(job) if std::ptr::eq(job.data, b_data) => {
            // `b` never left this worker: run it inline (or drop it if `a`
            // panicked — it is no longer shared, so unwinding is safe).
            match result_a {
                Ok(ra) => {
                    let f = job_b.take_f();
                    let rb = f(FnContext { migrated: false });
                    (ra, rb)
                }
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        other => {
            if let Some(job) = other {
                // A deeper frame's job: execute it before waiting (panics
                // inside it are captured by its own StackJob, never unwound
                // here — `job_b` on this stack must stay alive).
                unsafe { execute_job(job) };
            }
            // Stolen: execute other work until the thief finishes. `job_b`
            // lives on this stack, so we must not unwind past it before the
            // latch sets.
            while !job_b.latch.probe() {
                if let Some(job) = reg.find_work(index) {
                    unsafe { execute_job(job) };
                } else {
                    job_b.latch.wait_timeout(Duration::from_micros(200));
                }
            }
            let rb = job_b.take_result();
            match (result_a, rb) {
                (Ok(ra), JobResult::Ok(rb)) => (ra, rb),
                (Err(payload), _) => panic::resume_unwind(payload),
                (Ok(_), JobResult::Panic(payload)) => panic::resume_unwind(payload),
                (Ok(_), JobResult::Incomplete) => unreachable!("latch set without a result"),
            }
        }
    }
}

/// Runs `f` inside the pool if the calling thread is not already a worker
/// (otherwise calls it directly). This is how a top-level parallel region
/// enters the deques: one injected job, one blocking latch wait.
pub(crate) fn in_region<R, F>(f: F) -> R
where
    F: FnOnce(FnContext) -> R + Send,
    R: Send,
{
    if WORKER_INDEX.with(Cell::get) != usize::MAX {
        return f(FnContext { migrated: false });
    }
    run_in_pool(f)
}

fn run_in_pool<R, F>(f: F) -> R
where
    F: FnOnce(FnContext) -> R + Send,
    R: Send,
{
    let width = current_width().clamp(1, MAX_WORKERS);
    let reg = registry();
    reg.ensure_workers(width);
    let job = StackJob::new(f, width);
    let job_ref = unsafe { job.as_job_ref() };
    reg.inject(job_ref);
    job.latch.wait_blocking();
    match job.take_result() {
        JobResult::Ok(r) => r,
        JobResult::Panic(payload) => panic::resume_unwind(payload),
        JobResult::Incomplete => unreachable!("latch set without a result"),
    }
}
