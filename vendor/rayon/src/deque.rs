//! Lock-free scheduling primitives: the Chase–Lev work-stealing deque and a
//! lock-free injector bag, plus the [`CachePadded`] alignment wrapper the
//! pool's hot counters use.
//!
//! ## The Chase–Lev deque
//!
//! One owner thread pushes and pops at the *bottom* of a growable ring
//! buffer; any number of stealer threads take from the *top*. The owner's
//! fast path is two plain atomic accesses (no CAS, no lock); stealers
//! serialize among themselves and against the "last element" race with a
//! single CAS on `top`. The algorithm and memory orderings follow Chase &
//! Lev (SPAA '05) as formalized for C11 by Lê, Pop, Cohen & Zappa Nardelli
//! ("Correct and Efficient Work-Stealing for Weak Memory Models", PPoPP
//! '13); the ordering argument is spelled out on each method.
//!
//! Buffer growth is owner-only: the owner copies the live window into a
//! buffer of twice the capacity, publishes it with a `Release` store, and
//! *retires* the old buffer instead of freeing it — an in-flight stealer may
//! still read a slot of the old buffer after the swap, so old buffers stay
//! allocated until the deque itself is dropped. Capacities double
//! geometrically, so the retired chain totals less than one final buffer.
//!
//! ## Safety of the racy slot read
//!
//! A stealer reads slot `top` *before* validating its claim with the CAS, so
//! the read can race with an owner push into the same physical slot after a
//! wraparound, or see a stale window after a growth. The read is therefore
//! performed as `MaybeUninit` bytes and only `assume_init`-ed **after** the
//! CAS succeeds: a successful CAS on `top == t` proves `t` was still the
//! live top at the CAS, and the owner never overwrites the physical slot of
//! a live `t` (a push at `b` requires `b - t < capacity`, and post-growth
//! writes go to the new buffer), so the bytes read were the fully
//! initialized value for logical index `t`. On CAS failure the bytes are
//! discarded without being interpreted. This mirrors `crossbeam-deque`.
//!
//! The element type is bounded `T: Copy` so discarded reads need no drop
//! glue and buffer reclamation never runs destructors.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Arc;

/// Pads and aligns a value to 64 bytes (one cache line on x86-64 and most
/// aarch64 parts), so two hot atomics updated by different cores never share
/// a line and ping-pong it between caches (false sharing).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Initial ring capacity (slots). Must be a power of two.
const MIN_BUFFER_CAP: usize = 64;

/// A fixed-capacity ring of `MaybeUninit<T>` slots. Slots are plain (not
/// atomic) cells; every cross-thread read is validated by the `top` CAS as
/// described in the module docs.
struct Buffer<T> {
    /// Power-of-two slot count.
    cap: usize,
    /// Owned slot array (`Box<[UnsafeCell<MaybeUninit<T>>]>` turned raw so
    /// the buffer itself can live behind an `AtomicPtr`).
    slots: *mut UnsafeCell<MaybeUninit<T>>,
}

impl<T> Buffer<T> {
    /// Heap-allocates a buffer of `cap` uninitialized slots.
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::into_raw(Box::new(Buffer {
            cap,
            slots: Box::into_raw(slots).cast::<UnsafeCell<MaybeUninit<T>>>(),
        }))
    }

    /// Frees a buffer previously returned by [`Buffer::alloc`].
    ///
    /// # Safety
    /// `buf` must be uniquely owned (no concurrent readers) and not used
    /// again. Slot contents are dropped as raw bytes (`T: Copy` upstream).
    unsafe fn dealloc(buf: *mut Buffer<T>) {
        let boxed = Box::from_raw(buf);
        let slice = ptr::slice_from_raw_parts_mut(boxed.slots, boxed.cap);
        drop(Box::from_raw(slice));
    }

    /// Slot pointer for logical index `index` (wrapping into the ring).
    ///
    /// # Safety
    /// `self` must be a live buffer.
    #[inline]
    unsafe fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
        // Two's-complement wrap of isize -> usize keeps `& (cap - 1)`
        // correct for negative logical indices too.
        (*self.slots.add((index as usize) & (self.cap - 1))).get()
    }

    /// Writes `value` into the slot for logical index `index`.
    ///
    /// # Safety
    /// Owner-only, and the slot must not hold a live element another thread
    /// may still claim (guaranteed by `b - t < cap`).
    #[inline]
    unsafe fn write(&self, index: isize, value: T) {
        ptr::write(self.slot(index), MaybeUninit::new(value));
    }

    /// Reads the slot for logical index `index` as maybe-uninitialized
    /// bytes. The caller decides — via the `top` CAS — whether the bytes are
    /// a valid `T`.
    ///
    /// # Safety
    /// `self` must be a live buffer.
    #[inline]
    unsafe fn read(&self, index: isize) -> MaybeUninit<T> {
        ptr::read(self.slot(index))
    }
}

/// Result of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another stealer; retrying may succeed.
    Retry,
    /// Stole the oldest element.
    Success(T),
}

impl<T> Steal<T> {
    /// Converts to `Option`, mapping both `Empty` and `Retry` to `None`.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            Steal::Empty | Steal::Retry => None,
        }
    }
}

/// The shared state of one Chase–Lev deque. Owner operations (`push`,
/// `pop`) are `unsafe fn`s — the caller must guarantee a single owner
/// thread — while [`ChaseLev::steal`] is safe from any thread. The
/// [`deque()`] constructor wraps this in the safe [`Worker`]/[`Stealer`]
/// pair; the pool calls the raw API under its worker-index discipline.
pub struct ChaseLev<T> {
    /// Owner end: incremented by push, decremented by pop. On its own cache
    /// line — the owner hammers it while stealers hammer `top`.
    bottom: CachePadded<AtomicIsize>,
    /// Steal end: advanced by successful steals (and the owner's
    /// last-element CAS).
    top: CachePadded<AtomicIsize>,
    /// Current ring buffer; swapped (owner-only) on growth.
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth, kept alive for straggling stealers.
    /// Owner-only access.
    retired: UnsafeCell<Vec<*mut Buffer<T>>>,
}

// SAFETY: all cross-thread access is through atomics plus the CAS-validated
// slot reads described in the module docs; `T: Send` moves between threads.
unsafe impl<T: Copy + Send> Send for ChaseLev<T> {}
unsafe impl<T: Copy + Send> Sync for ChaseLev<T> {}

impl<T: Copy + Send> Default for ChaseLev<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Send> ChaseLev<T> {
    /// An empty deque with the minimum capacity.
    pub fn new() -> Self {
        Self {
            bottom: CachePadded::new(AtomicIsize::new(0)),
            top: CachePadded::new(AtomicIsize::new(0)),
            buffer: AtomicPtr::new(Buffer::alloc(MIN_BUFFER_CAP)),
            retired: UnsafeCell::new(Vec::new()),
        }
    }

    /// Number of elements currently visible (racy; exact only when quiescent
    /// or called by the owner).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// True when [`ChaseLev::len`] observes zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes `value` at the bottom (owner end), growing the ring if full.
    ///
    /// Ordering: the `Acquire` load of `top` synchronizes with stealers'
    /// `top` CAS releases, so the fullness check never under-counts free
    /// slots; the `Release` store of `bottom` publishes the slot write to
    /// any stealer whose `Acquire` load of `bottom` observes it.
    ///
    /// # Safety
    /// Must only be called from the deque's single owner thread.
    pub unsafe fn push(&self, value: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        if b - t >= (*buf).cap as isize {
            buf = self.grow(t, b, buf);
        }
        (*buf).write(b, value);
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops from the bottom (owner end, LIFO). Returns `None` when empty or
    /// when a stealer won the race for the last element.
    ///
    /// Ordering: the owner first *reserves* the bottom slot by storing
    /// `b - 1`, then a `SeqCst` fence orders that store before the load of
    /// `top`. A stealer symmetrically loads `top`, fences, then loads
    /// `bottom`. In the SeqCst fence order one of the two fences is first:
    /// either the stealer sees the reserved (decremented) `bottom` and backs
    /// off the contested element, or the owner sees the advanced `top` and
    /// detects the conflict, falling back to the last-element CAS. Both
    /// claiming the same element would require each fence to precede the
    /// other — impossible — so every element is handed out exactly once.
    ///
    /// # Safety
    /// Must only be called from the deque's single owner thread.
    pub unsafe fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Exactly one element left: race any stealer for it with a
                // CAS on `top`; win or lose, restore `bottom` to the now
                // canonical empty position `b + 1 == t + 1`.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
            }
            // The element at `b` is exclusively ours: any stealer is bounded
            // by `top <= b` (strictly below, or beaten by the CAS above).
            Some((*buf).read(b).assume_init())
        } else {
            // Empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Attempts to steal the oldest element (the top). Safe from any thread.
    ///
    /// Ordering: `Acquire` on `top` then a `SeqCst` fence then `Acquire` on
    /// `bottom` — the fence pairs with the owner's pop fence as described on
    /// [`ChaseLev::pop`]; the `Acquire` on `bottom` pairs with the push's
    /// `Release` so the slot write is visible before the element is claimed.
    /// The `SeqCst` success ordering on the CAS keeps steals totally ordered
    /// among themselves.
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Load the buffer *after* the bounds were established; a concurrent
        // growth may still swap it, which the CAS below detects (growth
        // never moves `top`, and a push after growth cannot reuse physical
        // slot `t` while `t` is live).
        let buf = self.buffer.load(Ordering::Acquire);
        // SAFETY: racy read, interpreted only if the CAS proves `t` was
        // still live (see module docs).
        let value = unsafe { (*buf).read(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: CAS success validates the bytes (module docs).
            Steal::Success(unsafe { value.assume_init() })
        } else {
            Steal::Retry
        }
    }

    /// Doubles the ring, copying the live window `t..b`, and publishes the
    /// new buffer. The old buffer is retired, not freed: a stealer that
    /// loaded the old pointer may still read (and CAS-validate) its slots.
    ///
    /// # Safety
    /// Owner-only (called from `push`).
    unsafe fn grow(&self, t: isize, b: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let new = Buffer::alloc(((*old).cap * 2).max(MIN_BUFFER_CAP));
        let mut i = t;
        while i < b {
            ptr::copy_nonoverlapping((*old).slot(i), (*new).slot(i), 1);
            i += 1;
        }
        (*self.retired.get()).push(old);
        // Release: the copied slots must be visible before any stealer can
        // observe the new buffer pointer.
        self.buffer.store(new, Ordering::Release);
        new
    }
}

impl<T> Drop for ChaseLev<T> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): no stealers remain. `T: Copy` in
        // every constructor, so leftover elements need no drop glue.
        unsafe {
            Buffer::dealloc(*self.buffer.get_mut());
            for buf in self.retired.get_mut().drain(..) {
                Buffer::dealloc(buf);
            }
        }
    }
}

/// Creates a deque as a safe ([`Worker`], [`Stealer`]) pair: the `Worker` is
/// the unique owner end (`Send`, not `Clone`), the `Stealer` is freely
/// cloneable and shareable.
pub fn deque<T: Copy + Send>() -> (Worker<T>, Stealer<T>) {
    let inner = Arc::new(ChaseLev::new());
    (
        Worker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        Stealer { inner },
    )
}

/// Owner end of a [`deque()`]: push and pop at the bottom. Moving the
/// `Worker` to another thread is fine; sharing it is not (`!Sync`, and it
/// does not clone), which is exactly the single-owner requirement of the
/// unsafe [`ChaseLev`] API.
pub struct Worker<T: Copy + Send> {
    inner: Arc<ChaseLev<T>>,
    /// Strips `Sync` so `&Worker` cannot cross threads.
    _not_sync: PhantomData<core::cell::Cell<()>>,
}

impl<T: Copy + Send> Worker<T> {
    /// Pushes at the owner end.
    pub fn push(&self, value: T) {
        // SAFETY: `Worker` is `!Sync` and not `Clone`, so all calls happen
        // on the thread currently holding it.
        unsafe { self.inner.push(value) }
    }

    /// Pops from the owner end (LIFO).
    pub fn pop(&self) -> Option<T> {
        // SAFETY: as in `push`.
        unsafe { self.inner.pop() }
    }

    /// A new stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Racy element count (exact from the owner thread).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no elements are visible.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// Stealing end of a [`deque()`]: take the oldest element from any thread.
pub struct Stealer<T: Copy + Send> {
    inner: Arc<ChaseLev<T>>,
}

impl<T: Copy + Send> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Copy + Send> Stealer<T> {
    /// Attempts to steal the oldest element.
    pub fn steal(&self) -> Steal<T> {
        self.inner.steal()
    }

    /// Racy element count.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no elements are visible.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------------

/// One heap node of the injector bag.
struct Node<T> {
    value: T,
    next: *mut Node<T>,
}

/// A lock-free MPMC bag for jobs submitted from outside the pool: a Treiber
/// stack with **take-all** consumption. Producers push with one CAS;
/// a consumer detaches the entire chain with one `swap`, scans it with
/// exclusive ownership (no hazard of concurrent frees — the classic Treiber
/// pop UAF cannot occur because nobody pops single nodes), takes the element
/// it wants, and splices the remainder back with a CAS loop.
///
/// The scan-with-ownership shape is what lets consumers *filter*: the pool
/// takes the oldest job its worker index is eligible for and returns the
/// rest, something a slot-at-a-time lock-free queue cannot express safely
/// without hazard pointers. Injector traffic is one push per top-level
/// parallel region, so the per-node allocation is cold-path noise.
pub struct Injector<T> {
    head: CachePadded<AtomicPtr<Node<T>>>,
}

// SAFETY: `head` is the only shared state and every node handoff is through
// CAS/swap on it; values are `Send`.
unsafe impl<T: Send> Send for Injector<T> {}
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T: Send> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> Injector<T> {
    /// An empty bag.
    pub fn new() -> Self {
        Self {
            head: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
        }
    }

    /// True when no chain is attached (racy).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Pushes `value` (newest-first chain; consumers scan to the oldest).
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is exclusively ours until the CAS publishes it.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Detaches the whole bag, removes the **oldest** element satisfying
    /// `eligible`, and splices the remainder back in its original order.
    /// Returns the element (if any) and whether other elements were put
    /// back — callers that gate wakeups on queue emptiness should re-notify
    /// when the flag is set, because the bag was transiently empty during
    /// the scan.
    pub fn take_where(&self, eligible: impl Fn(&T) -> bool) -> (Option<T>, bool) {
        let chain = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        if chain.is_null() {
            return (None, false);
        }
        // Exclusive ownership of the chain: walk newest→oldest recording
        // the *last* (oldest) eligible node.
        let mut taken: *mut Node<T> = ptr::null_mut();
        let mut cursor = chain;
        while !cursor.is_null() {
            // SAFETY: chain nodes are exclusively owned after the swap.
            unsafe {
                if eligible(&(*cursor).value) {
                    taken = cursor;
                }
                cursor = (*cursor).next;
            }
        }
        let value = if taken.is_null() {
            None
        } else {
            // Unlink `taken` from the (singly-linked, exclusively owned)
            // chain, then free its node.
            unsafe {
                let mut head = chain;
                if head == taken {
                    head = (*taken).next;
                } else {
                    let mut prev = chain;
                    while (*prev).next != taken {
                        prev = (*prev).next;
                    }
                    (*prev).next = (*taken).next;
                }
                let boxed = Box::from_raw(taken);
                let repushed = self.splice(head);
                return (Some(boxed.value), repushed);
            }
        };
        let repushed = self.splice(chain);
        (value, repushed)
    }

    /// CAS-splices an owned chain back under whatever was pushed meanwhile.
    /// Returns true if the chain was non-empty.
    fn splice(&self, chain: *mut Node<T>) -> bool {
        if chain.is_null() {
            return false;
        }
        // Find the chain's tail (owned, so a plain walk).
        let mut tail = chain;
        // SAFETY: exclusively owned until the CAS publishes it.
        unsafe {
            while !(*tail).next.is_null() {
                tail = (*tail).next;
            }
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                (*tail).next = head;
                match self.head.compare_exchange_weak(
                    head,
                    chain,
                    Ordering::Release,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return true,
                    Err(current) => head = current,
                }
            }
        }
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        let mut cursor = *self.head.get_mut();
        while !cursor.is_null() {
            // SAFETY: exclusive access in Drop; nodes were Box-allocated.
            unsafe {
                let boxed = Box::from_raw(cursor);
                cursor = boxed.next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_pop_fifo_steal() {
        let (w, s) = deque::<u32>();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1), "steals take the oldest");
        assert_eq!(w.pop(), Some(3), "pops take the newest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn growth_preserves_contents() {
        let (w, s) = deque::<usize>();
        for i in 0..10 * MIN_BUFFER_CAP {
            w.push(i);
        }
        assert_eq!(s.steal(), Steal::Success(0));
        let mut popped = Vec::new();
        while let Some(v) = w.pop() {
            popped.push(v);
        }
        popped.reverse();
        let expected: Vec<usize> = (1..10 * MIN_BUFFER_CAP).collect();
        assert_eq!(popped, expected);
    }

    #[test]
    fn injector_takes_oldest_eligible_and_keeps_the_rest() {
        let inj = Injector::new();
        inj.push(10u32);
        inj.push(3);
        inj.push(20);
        // Oldest eligible under `>= 10` is 10 (pushed first).
        let (got, repushed) = inj.take_where(|&v| v >= 10);
        assert_eq!(got, Some(10));
        assert!(repushed, "3 and 20 went back");
        let (got, _) = inj.take_where(|&v| v >= 10);
        assert_eq!(got, Some(20));
        let (got, repushed) = inj.take_where(|&v| v >= 10);
        assert_eq!(got, None);
        assert!(repushed, "3 remains parked");
        let (got, repushed) = inj.take_where(|_| true);
        assert_eq!(got, Some(3));
        assert!(!repushed);
        assert!(inj.is_empty());
    }
}
