//! Parallel iterators expressed as adaptive recursive splitting over
//! [`join`](crate::join).
//!
//! A driven iterator is split in half recursively until either the adaptive
//! budget runs out or the piece is a single item; each split is one
//! [`join_context`] call, so unclaimed halves sit on the local deque where
//! idle workers steal them. The split budget starts at twice the region
//! width and halves at every split — so an un-contended region produces only
//! a few times more leaves than workers — but a *stolen* half resets its
//! budget (a steal proves idle demand), letting load-imbalanced inputs split
//! all the way down to single items where the work actually is. This
//! replaces the fixed `len / threads` chunking of the old shim, which
//! stranded whole chunks behind one expensive item.
//!
//! Every combinator reduces in **input order** (`collect` writes each index
//! into its slot; `fold_reduce` combines left-then-right), so results are
//! byte-identical to sequential execution at every thread count. When the
//! effective width is 1 the drivers run inline on the calling thread with no
//! pool traffic and no scratch allocation.

use crate::pool::{self, join_context, FnContext};

/// Inline cutoff: inputs at most this long run sequentially even in a
/// parallel region (a deque round-trip costs more than a handful of items).
const SEQUENTIAL_FLOOR: usize = 2;

/// Adaptive split budget (mirrors rayon's `Splitter`): halves per split,
/// resets when a piece is stolen, and never splits below `min_len` items
/// per piece (so folds with a costly per-task identity — e.g. a
/// universe-sized scratch — keep their amortization even under heavy
/// stealing).
#[derive(Clone, Copy)]
struct Splitter {
    splits: usize,
    min_len: usize,
}

impl Splitter {
    fn new(min_len: usize) -> Self {
        Self {
            splits: pool::current_num_threads().saturating_mul(2),
            min_len: min_len.max(1),
        }
    }

    fn should_split(&mut self, len: usize, migrated: bool) -> bool {
        if len < SEQUENTIAL_FLOOR || len < 2 * self.min_len {
            return false;
        }
        if migrated {
            self.splits = pool::current_num_threads().saturating_mul(2);
            return true;
        }
        if self.splits > 0 {
            self.splits /= 2;
            true
        } else {
            false
        }
    }
}

/// A raw pointer that may cross threads (each task writes a disjoint index
/// range of the buffer it points into).
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: tasks write disjoint ranges and the owning Vec outlives the region
// (the driver blocks until every task completes).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// An index-addressable parallel producer. `get` must be pure per index —
/// each index is requested exactly once.
pub trait ParallelIterator: Sized + Sync {
    /// Item produced per index.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// True if there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item at `index`.
    fn get(&self, index: usize) -> Self::Item;

    /// Lazily maps each item through `f` (applied on the worker thread).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the pipeline and collects results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        drive(&self).into_iter().collect()
    }

    /// Folds the items into per-task accumulators (seeded by `identity`,
    /// advanced by `fold` in index order) and combines the accumulators with
    /// `reduce`, always left-before-right — so the result is identical to a
    /// sequential fold whenever `reduce(a, b)` is the "concatenation" of the
    /// two accumulators. This is the order-preserving building block the
    /// mining hot loops use to let skewed items steal instead of straggling
    /// behind fixed chunks.
    fn fold_reduce<T, ID, F, R>(self, identity: ID, fold: F, reduce: R) -> T
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, Self::Item) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        self.fold_reduce_min(1, identity, fold, reduce)
    }

    /// [`fold_reduce`](ParallelIterator::fold_reduce) with a minimum leaf
    /// length: no task folds fewer than `min_len` items, even under heavy
    /// stealing. Use when `identity()` is expensive (a scratch buffer, a
    /// sized table) and must stay amortized over a run of items.
    fn fold_reduce_min<T, ID, F, R>(self, min_len: usize, identity: ID, fold: F, reduce: R) -> T
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, Self::Item) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let n = self.len();
        if pool::current_num_threads() <= 1 || n <= SEQUENTIAL_FLOOR || n < 2 * min_len.max(1) {
            return (0..n).fold(identity(), |acc, i| fold(acc, self.get(i)));
        }
        pool::in_region(|ctx| {
            fold_range(
                &self,
                0,
                n,
                &identity,
                &fold,
                &reduce,
                Splitter::new(min_len),
                ctx.migrated(),
            )
        })
    }
}

/// Splits `0..len` adaptively, writing each item into its slot of an
/// order-preserving output buffer.
fn drive<P: ParallelIterator>(producer: &P) -> Vec<P::Item> {
    let n = producer.len();
    if pool::current_num_threads() <= 1 || n <= SEQUENTIAL_FLOOR {
        // The one-thread fast path: no pool, no splitting, no scratch — just
        // the sequential loop into the (exactly sized) output.
        return (0..n).map(|i| producer.get(i)).collect();
    }
    let mut out: Vec<P::Item> = Vec::with_capacity(n);
    let base = SendPtr(out.as_mut_ptr());
    pool::in_region(|ctx| write_range(producer, 0, n, base, Splitter::new(1), ctx.migrated()));
    // SAFETY: every index in 0..n was written exactly once (the recursion
    // partitions the range) and in_region blocks until all tasks finished.
    // Known tradeoff: if a producer panics, the unwind leaves `out` at len 0
    // and already-written items LEAK (never dropped) — safe but lossy; the
    // workspace treats a panic inside a parallel region as fatal to the run.
    unsafe { out.set_len(n) };
    out
}

fn write_range<P: ParallelIterator>(
    producer: &P,
    lo: usize,
    hi: usize,
    base: SendPtr<P::Item>,
    mut splitter: Splitter,
    migrated: bool,
) {
    let len = hi - lo;
    if splitter.should_split(len, migrated) {
        let mid = lo + len / 2;
        join_context(
            |ctx: FnContext| write_range(producer, lo, mid, base, splitter, ctx.migrated()),
            |ctx: FnContext| write_range(producer, mid, hi, base, splitter, ctx.migrated()),
        );
    } else {
        for i in lo..hi {
            // SAFETY: disjoint ranges; the buffer has capacity for 0..n.
            unsafe { base.0.add(i).write(producer.get(i)) };
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fold_range<P, T, ID, F, R>(
    producer: &P,
    lo: usize,
    hi: usize,
    identity: &ID,
    fold: &F,
    reduce: &R,
    mut splitter: Splitter,
    migrated: bool,
) -> T
where
    P: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Sync,
    F: Fn(T, P::Item) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    let len = hi - lo;
    if splitter.should_split(len, migrated) {
        let mid = lo + len / 2;
        let (left, right) = join_context(
            |ctx: FnContext| {
                fold_range(
                    producer,
                    lo,
                    mid,
                    identity,
                    fold,
                    reduce,
                    splitter,
                    ctx.migrated(),
                )
            },
            |ctx: FnContext| {
                fold_range(
                    producer,
                    mid,
                    hi,
                    identity,
                    fold,
                    reduce,
                    splitter,
                    ctx.migrated(),
                )
            },
        );
        reduce(left, right)
    } else {
        (lo..hi).fold(identity(), |acc, i| fold(acc, producer.get(i)))
    }
}

/// Borrowing conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowing parallel iterator type.
    type Iter: ParallelIterator;

    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Consuming conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The produced iterator type.
    type Iter: ParallelIterator;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over `&[T]`.
pub struct ParSlice<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over non-overlapping subslices of `chunk_size` elements
/// (`par_chunks`); the last chunk may be shorter, as with `slice::chunks`.
pub struct ParChunks<'a, T: Sync> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn get(&self, index: usize) -> &'a [T] {
        let lo = index * self.chunk_size;
        let hi = (lo + self.chunk_size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// `par_chunks` on slices (mirrors `rayon`'s `ParallelSlice::par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Returns a parallel iterator over `chunk_size`-element subslices.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size != 0, "chunk_size must be non-zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn get(&self, index: usize) -> usize {
        self.start + index
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
        }
    }
}

/// Lazy `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn get(&self, index: usize) -> R {
        (self.f)(self.base.get(index))
    }
}
