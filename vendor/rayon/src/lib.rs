//! Vendored stand-in for `rayon`: a real work-stealing runtime under the
//! slice of the parallel-iterator API the workspace's mining hot paths use.
//!
//! * `deque` — the lock-free scheduling substrate: a growable Chase–Lev
//!   work-stealing deque (owner pushes/pops `bottom` with no CAS; stealers
//!   CAS `top`), a lock-free take-all injector bag, and the [`CachePadded`]
//!   false-sharing guard. Public because the stress tests and benches drive
//!   it directly.
//! * `pool` — the persistent worker pool: lazily spawned workers (honoring
//!   `RAYON_NUM_THREADS`), per-worker Chase–Lev deques with randomized
//!   stealing, the [`join`]/[`join_context`] fork-join primitive, and
//!   region-width capping ([`with_width`]) so callers can pin a run to an
//!   exact thread count.
//! * `iter` — `par_iter` / `into_par_iter` / `par_chunks` with `map`,
//!   order-preserving `collect`, and the order-preserving `fold_reduce`
//!   combinator, all expressed as adaptive recursive splitting over `join`
//!   (split until stealable, not into fixed chunks).
//!
//! Nested parallel regions compose through the deques: an inner `par_iter`
//! on a worker pushes jobs its siblings steal, instead of being forced
//! sequential by a suppression flag. Results are byte-identical to
//! sequential execution at every thread count, because every combinator
//! reduces in input order. With an effective width of 1 every driver runs
//! inline on the calling thread — no pool, no scaffolding allocations.

pub mod deque;
mod iter;
mod pool;

pub use deque::CachePadded;
pub use iter::{
    IntoParallelIterator, IntoParallelRefIterator, Map, ParChunks, ParRange, ParSlice,
    ParallelIterator, ParallelSlice,
};
pub use pool::{
    current_num_threads, ensure_pool_size, join, join_context, with_width, FnContext, MAX_WORKERS,
};

pub mod prelude {
    //! Convenience re-exports mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (5..5000).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 4995);
        assert_eq!(out[0], 6);
        assert_eq!(out[4994], 5000);
    }

    #[test]
    fn par_chunks_matches_sequential_chunks() {
        let input: Vec<u32> = (0..10_001).collect();
        let out: Vec<u32> = input.par_chunks(7).map(|c| c.iter().sum::<u32>()).collect();
        let expected: Vec<u32> = input.chunks(7).map(|c| c.iter().sum::<u32>()).collect();
        assert_eq!(out, expected);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(
            empty.par_chunks(4).map(<[u32]>::len).collect::<Vec<_>>(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_composes_recursively() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = crate::join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), (0..100_000u64).sum::<u64>());
    }

    #[test]
    fn fold_reduce_preserves_order() {
        let input: Vec<u32> = (0..5_000).collect();
        let folded: Vec<u32> = input.par_iter().fold_reduce(
            Vec::new,
            |mut acc, &x| {
                acc.push(x * 3);
                acc
            },
            |mut l, r| {
                l.extend(r);
                l
            },
        );
        let expected: Vec<u32> = input.iter().map(|&x| x * 3).collect();
        assert_eq!(folded, expected);
    }

    #[test]
    fn nested_parallel_regions_compose() {
        // An outer par_iter whose body runs an inner par_iter: with the old
        // shim the inner loops were forced sequential; the pool executes both
        // levels through the same deques. The result must still be exactly
        // the sequential answer.
        let out: Vec<u64> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                (0..256usize)
                    .into_par_iter()
                    .map(|j| (i * j) as u64)
                    .collect::<Vec<u64>>()
                    .into_iter()
                    .sum::<u64>()
            })
            .collect();
        let expected: Vec<u64> = (0..64usize)
            .map(|i| (0..256usize).map(|j| (i * j) as u64).sum::<u64>())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn with_width_caps_and_results_are_identical() {
        let input: Vec<u64> = (0..20_000).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
        for width in [1usize, 2, 4, 8] {
            let out: Vec<u64> = crate::with_width(width, || {
                assert_eq!(crate::current_num_threads(), width);
                input.par_iter().map(|&x| x.wrapping_mul(31) ^ 7).collect()
            });
            assert_eq!(out, expected, "width {width} diverged");
        }
    }

    #[test]
    fn with_width_restores_previous_width() {
        let outer = crate::current_num_threads();
        crate::with_width(3, || {
            assert_eq!(crate::current_num_threads(), 3);
            crate::with_width(1, || assert_eq!(crate::current_num_threads(), 1));
            assert_eq!(crate::current_num_threads(), 3);
        });
        assert_eq!(crate::current_num_threads(), outer);
    }

    #[test]
    fn skewed_work_still_produces_ordered_output() {
        // One pathologically expensive item at the front: fixed chunking
        // strands everything behind it; adaptive splitting must still return
        // the exact sequential output.
        let out: Vec<u64> = crate::with_width(4, || {
            (0..512usize)
                .into_par_iter()
                .map(|i| {
                    let rounds = if i == 0 { 200_000 } else { 10 };
                    let mut acc = i as u64;
                    for _ in 0..rounds {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    acc ^ i as u64
                })
                .collect()
        });
        let expected: Vec<u64> = (0..512usize)
            .map(|i| {
                let rounds = if i == 0 { 200_000 } else { 10 };
                let mut acc = i as u64;
                for _ in 0..rounds {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc ^ i as u64
            })
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            crate::with_width(4, || {
                let _: Vec<u32> = (0..1024usize)
                    .into_par_iter()
                    .map(|i| {
                        if i == 700 {
                            panic!("boom at {i}");
                        }
                        i as u32
                    })
                    .collect();
            })
        });
        assert!(result.is_err(), "the worker panic must reach the caller");
    }

    #[test]
    fn side_effects_run_exactly_once_per_index() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let n = 10_000usize;
        let out: Vec<usize> = crate::with_width(4, || {
            (0..n)
                .into_par_iter()
                .map(|i| {
                    HITS.fetch_add(1, Ordering::Relaxed);
                    i
                })
                .collect()
        });
        assert_eq!(out.len(), n);
        assert_eq!(HITS.load(Ordering::Relaxed), n);
    }
}
