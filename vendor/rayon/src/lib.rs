//! Vendored stand-in for `rayon`, implementing the small slice of the
//! parallel-iterator API the workspace's mining hot paths use:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()`
//! * `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`
//!
//! Execution model: the driven iterator is split into contiguous index chunks,
//! one per worker thread (`std::thread::scope`), and the per-chunk results are
//! reassembled **in input order**, so results are deterministic and identical
//! to sequential execution. With a single available core (or tiny inputs) the
//! whole pipeline runs inline with zero thread overhead.

use std::num::NonZeroUsize;
use std::thread;

/// Number of worker threads the pool would use (mirrors
/// `rayon::current_num_threads`). Honors `RAYON_NUM_THREADS`.
///
/// Resolved once and cached: `available_parallelism` costs a syscall (and
/// possibly cgroup file reads) per call, and the driver consults this on
/// every parallel iterator — uncached, the lookups dominate fine-grained
/// workloads.
pub fn current_num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Minimum items per thread before parallelism is worth the spawn cost.
const MIN_CHUNK: usize = 64;

/// An index-addressable parallel producer. `get` must be pure per index —
/// each index is requested exactly once.
pub trait ParallelIterator: Sized + Sync {
    /// Item produced per index.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// True if there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the item at `index`.
    fn get(&self, index: usize) -> Self::Item;

    /// Lazily maps each item through `f` (applied on the worker thread).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the pipeline and collects results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        drive(&self).into_iter().collect()
    }
}

thread_local! {
    /// True while this thread is a worker inside a parallel region. Nested
    /// `par_iter`s then run inline — mirroring real rayon, where a nested
    /// parallel iterator executes on the already-busy pool instead of
    /// spawning more threads. Without this, nesting (e.g. per-pattern growth
    /// containing per-embedding extension) spawns threads at every level and
    /// the churn costs far more than the parallelism buys.
    static IN_PARALLEL_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Splits `0..len` into per-thread chunks, evaluates them concurrently, and
/// returns the items in input order.
fn drive<P: ParallelIterator>(producer: &P) -> Vec<P::Item> {
    let n = producer.len();
    let nested = IN_PARALLEL_REGION.with(std::cell::Cell::get);
    let threads = if nested {
        1
    } else {
        current_num_threads().min(n / MIN_CHUNK.max(1)).max(1)
    };
    if threads <= 1 {
        return (0..n).map(|i| producer.get(i)).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<P::Item>> = Vec::with_capacity(threads);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    (lo..hi).map(|i| producer.get(i)).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("worker thread panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Borrowing conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowing parallel iterator type.
    type Iter: ParallelIterator;

    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Consuming conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The produced iterator type.
    type Iter: ParallelIterator;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over `&[T]`.
pub struct ParSlice<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over non-overlapping subslices of `chunk_size` elements
/// (`par_chunks`); the last chunk may be shorter, as with `slice::chunks`.
pub struct ParChunks<'a, T: Sync> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn get(&self, index: usize) -> &'a [T] {
        let lo = index * self.chunk_size;
        let hi = (lo + self.chunk_size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// `par_chunks` on slices (mirrors `rayon`'s `ParallelSlice::par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Returns a parallel iterator over `chunk_size`-element subslices.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size != 0, "chunk_size must be non-zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn get(&self, index: usize) -> usize {
        self.start + index
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
        }
    }
}

/// Lazy `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn get(&self, index: usize) -> R {
        (self.f)(self.base.get(index))
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (5..5000).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 4995);
        assert_eq!(out[0], 6);
        assert_eq!(out[4994], 5000);
    }

    #[test]
    fn par_chunks_matches_sequential_chunks() {
        let input: Vec<u32> = (0..10_001).collect();
        let out: Vec<u32> = input.par_chunks(7).map(|c| c.iter().sum::<u32>()).collect();
        let expected: Vec<u32> = input.chunks(7).map(|c| c.iter().sum::<u32>()).collect();
        assert_eq!(out, expected);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(
            empty.par_chunks(4).map(<[u32]>::len).collect::<Vec<_>>(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
