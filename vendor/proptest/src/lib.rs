//! Vendored stand-in for `proptest`, implementing the subset of the API the
//! workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for numeric
//!   ranges, tuples of strategies and [`collection::vec`].
//! * The [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! case number and deterministic seed instead of a minimized input), and value
//! generation is driven by a simple SplitMix64 stream. Failures are fully
//! reproducible: the per-case seed is derived from the test name and case
//! index only.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// How a single generated test case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject,
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates with `self`, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(width) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let width = (end as u128 - start as u128 + 1) as u64;
                start + rng.below(width) as $t
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let intermediate = self.base.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Anything usable as the size argument of [`fn@vec`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Generates vectors of values from `element` with a length from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property: `cases` deterministic cases, tolerating rejects up to
/// a budget, panicking with the case's seed on the first failure.
pub fn run_proptest<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let name_seed = {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    };
    let mut executed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(16).max(1024);
    while executed < config.cases {
        assert!(
            attempts < max_attempts,
            "property `{name}`: too many rejected cases ({attempts} attempts for {executed} \
             executed) — loosen prop_assume!"
        );
        let seed = name_seed ^ (attempts as u64).wrapping_mul(0xa076_1d64_78bd_642f);
        let mut rng = TestRng::new(seed);
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {executed} (rng seed {seed:#x}):\n{msg}");
            }
        }
    }
}

/// Formats a `prop_assert*` failure message.
pub fn format_failure(args: fmt::Arguments<'_>) -> TestCaseError {
    TestCaseError::Fail(args.to_string())
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::format_failure(format_args!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(pattern in strategy, ...) { body }` items (attributes preserved;
/// args may be irrefutable patterns such as tuples).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_proptest(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                #[allow(clippy::redundant_closure_call)]
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

pub mod prelude {
    //! Convenience re-exports mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..5, 2..6usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_and_tuples(pair in (1usize..4).prop_flat_map(|n| {
            (crate::collection::vec(0u32..10, n), Just(n))
        })) {
            let (v, n) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_seed() {
        crate::run_proptest(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng| -> Result<(), TestCaseError> {
                prop_assert!(false, "boom");
                Ok(())
            },
        );
    }
}
