//! No-op derive macros backing the vendored `serde` stub: the workspace only
//! uses the derives as markers, so expanding to nothing is sound (the traits
//! are blanket-implemented in the stub `serde` crate).

use proc_macro::TokenStream;

// `attributes(serde)` registers `#[serde(...)]` as a helper attribute so
// field annotations like `#[serde(skip)]` parse — they are needed for the
// swap back to the real serde to compile (e.g. on non-serializable cache
// fields) and must not be rejected by this stub.

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
