//! Root crate of the SpiderMine reproduction workspace.
//!
//! This crate exists to host the workspace-wide integration tests in
//! `tests/` (end-to-end mining runs, cross-miner comparisons, property-based
//! invariants, matcher equivalence). The actual library code lives in the
//! `crates/` members:
//!
//! * `spidermine-graph` — labeled-graph substrate, CSR index, VF2 matcher.
//! * `spidermine-mining` — embeddings, support measures, spider mining.
//! * `spidermine` — the three-stage SpiderMine algorithm.
//! * `spidermine-baselines` — SUBDUE / SEuS / MoSS / ORIGAMI comparators.
//! * `spidermine-engine` — the unified `Miner` API: validated requests,
//!   cancellation, progress, streaming over all six miners.
//! * `spidermine-datasets` — synthetic + real-shaped dataset builders.
//! * `spidermine-experiments` — per-figure experiment binaries.
//! * `spidermine-bench` — Criterion benchmarks (see `BENCH_embedding.json`
//!   and `BENCH_engine.json`).
//!
//! See `DESIGN.md` for the architecture notes and `ROADMAP.md` for direction.
