//! Helper crate hosting the runnable examples in the repository-level
//! `examples/` directory (quickstart, co-authorship communities, software
//! backbone discovery, transaction-setting top-K). Run them with, e.g.,
//! `cargo run -p spidermine-examples --example quickstart --release`.
//!
//! The helpers here keep the example sources focused on the API being shown.

use spidermine::MiningResult;

/// Pretty-prints a mining result the way the examples report it.
pub fn describe_result(title: &str, result: &MiningResult) {
    println!("{title}");
    println!(
        "  spiders mined: {}, seeds drawn: {}, merges: {}, total time: {:.3}s",
        result.stats.spider_count,
        result.stats.seed_count,
        result.stats.merges,
        result.stats.total_time.as_secs_f64()
    );
    if result.patterns.is_empty() {
        println!("  (no frequent patterns found)");
        return;
    }
    for (rank, p) in result.patterns.iter().enumerate() {
        println!(
            "  #{rank:<3} |V|={:<4} |E|={:<4} support={:<4} diameter={}",
            p.size_vertices(),
            p.size_edges(),
            p.support,
            p.diameter
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_result_handles_empty_results() {
        describe_result("empty", &MiningResult::default());
    }
}
