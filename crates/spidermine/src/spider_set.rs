//! The spider-set representation of a pattern (Section 4.2.2).
//!
//! A pattern `P` is represented by the multiset `S[P] = { s_h[v] : v ∈ V(P) }`
//! of the radius-r spiders rooted at each of its vertices. Theorem 2 states
//! that isomorphic patterns have equal spider-sets, so *unequal spider-sets
//! prove non-isomorphism* and the expensive VF2 test can be skipped — that is
//! the paper's "spider-set pruning". The converse does not hold (Figure 3(II)
//! gives a radius-1 counterexample, reproduced in this module's tests), so
//! equal spider-sets still require a VF2 confirmation.

use rustc_hash::FxHashMap;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::iso;
use spidermine_graph::signature::{vertex_signature, VertexSignature};
use spidermine_graph::traversal;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The spider-set representation of a pattern: the sorted multiset of per-vertex
/// radius-r signatures, plus a precomputed hash for cheap bucketing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpiderSet {
    /// Radius used to build the per-vertex spiders.
    pub radius: u32,
    /// Sorted multiset of per-vertex spider descriptions.
    pub members: Vec<VertexSignature>,
    /// Hash of `members` (and the radius) for use as a bucket key.
    pub hash: u64,
}

impl SpiderSet {
    /// Builds the spider-set representation of `pattern` with spiders of the
    /// given `radius`.
    ///
    /// For radius 1 the per-vertex spider is exactly the vertex's label plus
    /// the sorted labels of its neighbors. For radius ≥ 2 the "label" part is
    /// replaced by a hash of the vertex's bounded-BFS ball signature, which
    /// keeps Theorem 2 (isomorphism ⇒ equality) while increasing discriminating
    /// power, mirroring the paper's discussion of larger r.
    pub fn of(pattern: &LabeledGraph, radius: u32) -> Self {
        assert!(radius >= 1);
        let members: Vec<VertexSignature> = if radius == 1 {
            let mut m: Vec<VertexSignature> = pattern
                .vertices()
                .map(|v| vertex_signature(pattern, v))
                .collect();
            m.sort();
            m
        } else {
            let mut m: Vec<VertexSignature> = pattern
                .vertices()
                .map(|v| ball_signature(pattern, v, radius))
                .collect();
            m.sort();
            m
        };
        let mut hasher = DefaultHasher::new();
        radius.hash(&mut hasher);
        members.hash(&mut hasher);
        let hash = hasher.finish();
        Self {
            radius,
            members,
            hash,
        }
    }

    /// Number of spiders in the multiset (= number of pattern vertices).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Radius-r ball signature of a vertex: the vertex label together with the
/// sorted list of (distance, label) pairs of every vertex in its r-ball.
/// Isomorphism-invariant by construction.
fn ball_signature(pattern: &LabeledGraph, v: VertexId, radius: u32) -> VertexSignature {
    let dist = traversal::bfs_distances_bounded(pattern, v, radius);
    let mut pairs: Vec<u32> = Vec::new();
    for u in pattern.vertices() {
        let d = dist[u.index()];
        if u != v && d != traversal::UNREACHABLE {
            // Encode (distance, label) into one u32 for compactness.
            pairs.push(d * 1_000_003 + pattern.label(u).0);
        }
    }
    pairs.sort_unstable();
    VertexSignature {
        label: pattern.label(v).0,
        neighbor_labels: pairs,
    }
}

/// Outcome of the spider-set pruning check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IsoCheck {
    /// Spider-sets differ: the graphs are certainly not isomorphic.
    PrunedNonIsomorphic,
    /// Spider-sets agree and VF2 confirmed isomorphism.
    ConfirmedIsomorphic,
    /// Spider-sets agree but VF2 refuted isomorphism (a hash-equal collision).
    RefutedIsomorphic,
}

/// Statistics-producing isomorphism oracle with spider-set pruning.
///
/// Counts how many full VF2 tests were avoided, which is the quantity the
/// ablation benchmark (`bench/spider_set.rs`) reports.
#[derive(Debug, Default)]
pub struct PrunedIsoOracle {
    /// Number of comparisons answered by spider-set inequality alone.
    pub pruned: usize,
    /// Number of comparisons that needed a full VF2 run.
    pub full_tests: usize,
}

impl PrunedIsoOracle {
    /// Creates a fresh oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compares two patterns whose spider-sets have already been computed.
    pub fn check(
        &mut self,
        a: &LabeledGraph,
        sa: &SpiderSet,
        b: &LabeledGraph,
        sb: &SpiderSet,
    ) -> IsoCheck {
        if sa.hash != sb.hash || sa.members != sb.members {
            self.pruned += 1;
            return IsoCheck::PrunedNonIsomorphic;
        }
        self.full_tests += 1;
        if iso::are_isomorphic(a, b) {
            IsoCheck::ConfirmedIsomorphic
        } else {
            IsoCheck::RefutedIsomorphic
        }
    }
}

/// Groups patterns into isomorphism classes using spider-set pruning, returning
/// for each input pattern the index of its class representative.
pub fn isomorphism_classes(patterns: &[LabeledGraph], radius: u32) -> Vec<usize> {
    let sets: Vec<SpiderSet> = patterns.iter().map(|p| SpiderSet::of(p, radius)).collect();
    let mut buckets: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    let mut class = vec![usize::MAX; patterns.len()];
    let mut oracle = PrunedIsoOracle::new();
    for i in 0..patterns.len() {
        let mut assigned = None;
        if let Some(bucket) = buckets.get(&sets[i].hash) {
            for &j in bucket {
                match oracle.check(&patterns[i], &sets[i], &patterns[j], &sets[j]) {
                    IsoCheck::ConfirmedIsomorphic => {
                        assigned = Some(class[j]);
                        break;
                    }
                    _ => continue,
                }
            }
        }
        class[i] = assigned.unwrap_or(i);
        buckets.entry(sets[i].hash).or_default().push(i);
    }
    class
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::label::Label;

    fn path(labels: &[u32]) -> LabeledGraph {
        let labels: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(&labels, &edges)
    }

    #[test]
    fn theorem2_isomorphic_graphs_have_equal_spider_sets() {
        let a = path(&[1, 2, 3]);
        let b = path(&[3, 2, 1]);
        for r in [1, 2] {
            assert_eq!(SpiderSet::of(&a, r), SpiderSet::of(&b, r));
        }
    }

    #[test]
    fn different_patterns_have_different_spider_sets() {
        let a = path(&[1, 2, 3]);
        let b = path(&[1, 2, 4]);
        assert_ne!(SpiderSet::of(&a, 1), SpiderSet::of(&b, 1));
    }

    #[test]
    fn figure3_radius1_collision_resolved_by_radius2() {
        // Figure 3(II): with r = 1 two different graphs can share the
        // spider-set; increasing r separates them. 6-cycle vs two triangles.
        let cycle6 = LabeledGraph::from_parts(
            &[Label(1); 6],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let two_triangles = LabeledGraph::from_parts(
            &[Label(1); 6],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        );
        assert_eq!(
            SpiderSet::of(&cycle6, 1),
            SpiderSet::of(&two_triangles, 1),
            "radius 1 cannot distinguish them"
        );
        assert_ne!(
            SpiderSet::of(&cycle6, 2),
            SpiderSet::of(&two_triangles, 2),
            "radius 2 distinguishes them"
        );
    }

    #[test]
    fn oracle_counts_pruned_and_full_tests() {
        let a = path(&[1, 2, 3]);
        let sa = SpiderSet::of(&a, 1);
        let b = path(&[1, 2, 4]);
        let sb = SpiderSet::of(&b, 1);
        let c = path(&[3, 2, 1]);
        let sc = SpiderSet::of(&c, 1);
        let mut oracle = PrunedIsoOracle::new();
        assert_eq!(
            oracle.check(&a, &sa, &b, &sb),
            IsoCheck::PrunedNonIsomorphic
        );
        assert_eq!(
            oracle.check(&a, &sa, &c, &sc),
            IsoCheck::ConfirmedIsomorphic
        );
        assert_eq!(oracle.pruned, 1);
        assert_eq!(oracle.full_tests, 1);
    }

    #[test]
    fn oracle_detects_hash_collision_refutation() {
        let cycle6 = LabeledGraph::from_parts(
            &[Label(1); 6],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let two_triangles = LabeledGraph::from_parts(
            &[Label(1); 6],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        );
        let s1 = SpiderSet::of(&cycle6, 1);
        let s2 = SpiderSet::of(&two_triangles, 1);
        let mut oracle = PrunedIsoOracle::new();
        assert_eq!(
            oracle.check(&cycle6, &s1, &two_triangles, &s2),
            IsoCheck::RefutedIsomorphic
        );
    }

    #[test]
    fn isomorphism_classes_group_correctly() {
        let patterns = vec![path(&[1, 2, 3]), path(&[3, 2, 1]), path(&[1, 2, 4])];
        let classes = isomorphism_classes(&patterns, 1);
        assert_eq!(classes[0], classes[1]);
        assert_ne!(classes[0], classes[2]);
    }

    #[test]
    fn spider_set_len_matches_vertex_count() {
        let p = path(&[5, 6, 7, 8]);
        let s = SpiderSet::of(&p, 1);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }
}
