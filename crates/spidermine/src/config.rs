//! Configuration of the SpiderMine algorithm.

use spidermine_mining::support::SupportMeasure;

/// All knobs of the SpiderMine algorithm.
///
/// The first five fields are the paper's user-facing parameters
/// (Definition 3 and Algorithm 1); the remaining fields bound the work done by
/// this implementation and have defaults that match the paper's experimental
/// settings where the paper states them.
#[derive(Clone, Debug)]
pub struct SpiderMineConfig {
    /// Support threshold σ: minimum support for a pattern to be frequent.
    pub support_threshold: usize,
    /// Number of top patterns to return (K).
    pub k: usize,
    /// Error bound ε: the result misses a top-K pattern with probability ≤ ε.
    pub epsilon: f64,
    /// Diameter upper bound `Dmax` for returned patterns.
    pub d_max: u32,
    /// Spider radius r (the paper recommends 1 or 2; this implementation's
    /// fast path is r = 1).
    pub r: u32,
    /// `Vmin`: the minimum number of vertices the user considers a "large"
    /// pattern, expressed as a fraction of `|V(G)|` (the paper's worked
    /// example uses 1/10). Drives the seed count M via Lemma 2.
    pub v_min_fraction: f64,
    /// Support measure used for frequency checks during growth.
    pub support_measure: SupportMeasure,
    /// RNG seed for the random spider draw, so runs are reproducible.
    pub rng_seed: u64,
    /// Explicit override for the number of seed spiders M (otherwise computed
    /// from ε, K and `v_min_fraction`).
    pub seed_count_override: Option<usize>,
    /// Maximum leaves per mined spider (Stage I work bound).
    pub max_spider_leaves: usize,
    /// Maximum embeddings tracked per grown pattern.
    pub max_embeddings: usize,
    /// Maximum alternative extensions explored per boundary vertex.
    pub branch_factor: usize,
    /// Maximum concurrent variants kept per growing seed (beam width).
    pub beam_width: usize,
    /// Hard cap on pattern vertices (safety valve).
    pub max_pattern_vertices: usize,
    /// If no pattern merged during Stage II, fall back to growing the largest
    /// unmerged patterns instead of returning nothing.
    pub keep_unmerged_fallback: bool,
    /// Run the closure refinement pass on the returned patterns (adds edges
    /// between pattern vertices that co-occur in at least σ embeddings).
    pub closure_refinement: bool,
}

impl Default for SpiderMineConfig {
    fn default() -> Self {
        Self {
            support_threshold: 2,
            k: 10,
            epsilon: 0.1,
            d_max: 10,
            r: 1,
            v_min_fraction: 0.1,
            support_measure: SupportMeasure::MinimumImage,
            rng_seed: 0x5eed_5eed,
            seed_count_override: None,
            max_spider_leaves: 8,
            max_embeddings: 1000,
            branch_factor: 3,
            beam_width: 6,
            max_pattern_vertices: 512,
            keep_unmerged_fallback: true,
            closure_refinement: true,
        }
    }
}

impl SpiderMineConfig {
    /// Number of SpiderGrow iterations in Stage II: `Dmax / 2r` (Lemma 1),
    /// always at least 1.
    pub fn stage_two_iterations(&self) -> u32 {
        (self.d_max / (2 * self.r.max(1))).max(1)
    }

    /// Validates parameter ranges, returning a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.support_threshold == 0 {
            return Err("support_threshold must be at least 1".into());
        }
        if self.k == 0 {
            return Err("k must be at least 1".into());
        }
        if !(0.0 < self.epsilon && self.epsilon < 1.0) {
            return Err("epsilon must be in (0, 1)".into());
        }
        if self.r == 0 {
            return Err("spider radius r must be at least 1".into());
        }
        if !(0.0 < self.v_min_fraction && self.v_min_fraction <= 1.0) {
            return Err("v_min_fraction must be in (0, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SpiderMineConfig::default().validate().is_ok());
    }

    #[test]
    fn stage_two_iterations_follow_lemma_one() {
        let mut c = SpiderMineConfig {
            d_max: 10,
            r: 1,
            ..SpiderMineConfig::default()
        };
        assert_eq!(c.stage_two_iterations(), 5);
        c.d_max = 4;
        assert_eq!(c.stage_two_iterations(), 2);
        c.r = 2;
        assert_eq!(c.stage_two_iterations(), 1);
        c.d_max = 1;
        c.r = 1;
        assert_eq!(c.stage_two_iterations(), 1, "never zero iterations");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let ok = SpiderMineConfig::default();
        for (field, bad) in [
            (
                "sigma",
                SpiderMineConfig {
                    support_threshold: 0,
                    ..ok.clone()
                },
            ),
            ("k", SpiderMineConfig { k: 0, ..ok.clone() }),
            (
                "eps0",
                SpiderMineConfig {
                    epsilon: 0.0,
                    ..ok.clone()
                },
            ),
            (
                "eps1",
                SpiderMineConfig {
                    epsilon: 1.0,
                    ..ok.clone()
                },
            ),
            ("r", SpiderMineConfig { r: 0, ..ok.clone() }),
            (
                "vmin",
                SpiderMineConfig {
                    v_min_fraction: 0.0,
                    ..ok.clone()
                },
            ),
        ] {
            assert!(bad.validate().is_err(), "{field} should be rejected");
        }
    }
}
