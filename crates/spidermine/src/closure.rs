//! Closure refinement of mined patterns.
//!
//! Star spiders (and the Internal Integrity rule of SpiderExtend) never add an
//! edge between two *existing* pattern vertices, so a pattern grown purely by
//! spiders can miss edges that are nevertheless present in every one of its
//! embeddings (e.g. the chord of a cycle). The closure pass restores them:
//! any vertex pair of the pattern whose images are adjacent in at least σ of
//! the pattern's embeddings becomes a pattern edge. This keeps the embeddings
//! valid (matching stays non-induced) and only makes reported patterns larger
//! and closer to the "true" injected / latent structure. See DESIGN.md for the
//! substitution note.

use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_mining::embedding::Embedding;

/// Adds to `pattern` every missing vertex pair whose host images are adjacent
/// in at least `support_threshold` embeddings. Returns the refined pattern and
/// the number of edges added.
pub fn close_pattern(
    host: &LabeledGraph,
    pattern: &LabeledGraph,
    embeddings: &[Embedding],
    support_threshold: usize,
) -> (LabeledGraph, usize) {
    close_pattern_rows(
        host,
        pattern,
        embeddings.iter().map(Vec::as_slice),
        support_threshold,
    )
}

/// [`close_pattern`] over borrowed embedding rows — the row-iterator core the
/// miner drives straight off the
/// [`EmbeddingStore`](spidermine_mining::eval::EmbeddingStore) arena, without
/// materializing `Vec<Embedding>` lists first.
pub fn close_pattern_rows<'a, I>(
    host: &LabeledGraph,
    pattern: &LabeledGraph,
    rows: I,
    support_threshold: usize,
) -> (LabeledGraph, usize)
where
    I: Iterator<Item = &'a [VertexId]> + ExactSizeIterator + Clone,
{
    let mut refined = pattern.clone();
    let mut added = 0;
    let n = pattern.vertex_count() as u32;
    let total = rows.len();
    for u in 0..n {
        for v in (u + 1)..n {
            let (pu, pv) = (VertexId(u), VertexId(v));
            if refined.has_edge(pu, pv) {
                continue;
            }
            let witness = rows
                .clone()
                .filter(|e| host.has_edge(e[pu.index()], e[pv.index()]))
                .count();
            if witness >= support_threshold && witness == total && total > 0 {
                refined.add_edge(pu, pv);
                added += 1;
            }
        }
    }
    (refined, added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::label::Label;

    #[test]
    fn closure_adds_the_missing_triangle_edge() {
        // Host: two triangles. Pattern: the open path 0-1-2 embedded in both.
        let host = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        );
        let path = LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let embeddings = vec![
            vec![VertexId(0), VertexId(1), VertexId(2)],
            vec![VertexId(3), VertexId(4), VertexId(5)],
        ];
        let (closed, added) = close_pattern(&host, &path, &embeddings, 2);
        assert_eq!(added, 1);
        assert!(closed.has_edge(VertexId(0), VertexId(2)));
        assert_eq!(closed.edge_count(), 3);
    }

    #[test]
    fn closure_requires_all_embeddings_to_agree() {
        // Host: one triangle and one open path — the chord exists in only one
        // embedding, so it must NOT be added.
        let host = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)],
        );
        let path = LabeledGraph::from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let embeddings = vec![
            vec![VertexId(0), VertexId(1), VertexId(2)],
            vec![VertexId(3), VertexId(4), VertexId(5)],
        ];
        let (closed, added) = close_pattern(&host, &path, &embeddings, 1);
        assert_eq!(added, 0);
        assert_eq!(closed.edge_count(), path.edge_count());
    }

    #[test]
    fn closure_with_no_embeddings_is_a_noop() {
        let host = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let pattern = LabeledGraph::from_parts(&[Label(0), Label(1)], &[]);
        let (closed, added) = close_pattern(&host, &pattern, &[], 1);
        assert_eq!(added, 0);
        assert_eq!(closed.edge_count(), 0);
    }

    #[test]
    fn existing_edges_are_left_alone() {
        let host =
            LabeledGraph::from_parts(&[Label(0), Label(1), Label(0), Label(1)], &[(0, 1), (2, 3)]);
        let pattern = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let embeddings = vec![
            vec![VertexId(0), VertexId(1)],
            vec![VertexId(2), VertexId(3)],
        ];
        let (closed, added) = close_pattern(&host, &pattern, &embeddings, 2);
        assert_eq!(added, 0);
        assert_eq!(closed.edge_count(), 1);
    }
}
