//! Seed-count computation (Lemma 2) and the random spider draw.
//!
//! Lemma 2 of the paper bounds the probability that *all* top-K large
//! patterns are "successfully identified" (at least two of the M randomly
//! drawn seed spiders fall inside each of them):
//!
//! ```text
//! P_success >= (1 - (M + 1) * (1 - Vmin / |V(G)|)^M)^K
//! ```
//!
//! Given ε, K and `Vmin` we pick the smallest M making the bound at least
//! 1 − ε. The paper's worked example (ε = 0.1, K = 10, Vmin = |V|/10) reports
//! M = 85; solving the bound exactly gives M = 86, and [`seed_count`] returns
//! that exact value (the one-off difference is the paper's rounding).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_mining::spider::{SpiderCatalog, SpiderId};

/// The success-probability lower bound of Lemma 2 for a given draw size `m`.
///
/// `hit_probability` is `Vmin / |V(G)|`, the per-draw probability lower bound
/// of hitting a specific large pattern.
pub fn success_probability_lower_bound(m: usize, hit_probability: f64, k: usize) -> f64 {
    assert!((0.0..=1.0).contains(&hit_probability));
    let miss = 1.0 - hit_probability;
    let fail_one = (m as f64 + 1.0) * miss.powi(m as i32);
    let per_pattern = (1.0 - fail_one).max(0.0);
    per_pattern.powi(k as i32)
}

/// Smallest number of seed spiders M such that the Lemma 2 bound reaches
/// `1 - epsilon` for `k` patterns of at least `v_min` vertices in a graph of
/// `graph_vertices` vertices.
///
/// Returns at least 2 (one seed can never trigger a merge) and caps the search
/// at 100 000 to keep pathological parameter combinations finite.
pub fn seed_count(graph_vertices: usize, v_min: usize, k: usize, epsilon: f64) -> usize {
    assert!(graph_vertices > 0, "graph must have vertices");
    assert!(
        (0.0..1.0).contains(&epsilon) && epsilon > 0.0,
        "epsilon in (0,1)"
    );
    let hit = (v_min as f64 / graph_vertices as f64).clamp(1e-9, 1.0);
    let target = 1.0 - epsilon;
    for m in 2..100_000 {
        if success_probability_lower_bound(m, hit, k) >= target {
            return m;
        }
    }
    100_000
}

/// Draws `m` distinct spiders uniformly at random from the catalog.
///
/// If the catalog holds fewer than `m` spiders, all of them are returned.
/// The draw is deterministic in `rng_seed`.
pub fn random_seed_spiders(catalog: &SpiderCatalog, m: usize, rng_seed: u64) -> Vec<SpiderId> {
    let mut ids: Vec<SpiderId> = (0..catalog.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
    ids.shuffle(&mut rng);
    ids.truncate(m);
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::graph::LabeledGraph;
    use spidermine_graph::label::Label;
    use spidermine_mining::spider::SpiderMiningConfig;

    #[test]
    fn paper_worked_example_is_about_85() {
        // ε = 0.1, K = 10, Vmin = |V|/10. The paper reports M = 85; solving
        // the Lemma 2 bound exactly gives 86 (the paper presumably rounded),
        // so we assert the value is in the immediate neighborhood.
        let m = seed_count(1000, 100, 10, 0.1);
        assert!((84..=88).contains(&m), "Lemma 2 worked example, got {m}");
    }

    #[test]
    fn seed_count_scales_with_parameters() {
        // Larger K needs more seeds; smaller epsilon needs more seeds;
        // smaller Vmin needs more seeds.
        let base = seed_count(1000, 100, 10, 0.1);
        assert!(seed_count(1000, 100, 20, 0.1) >= base);
        assert!(seed_count(1000, 100, 10, 0.01) >= base);
        assert!(seed_count(1000, 50, 10, 0.1) >= base);
        assert!(seed_count(1000, 500, 10, 0.1) <= base);
    }

    #[test]
    fn success_bound_is_monotone_in_m() {
        let mut last = 0.0;
        for m in 2..200 {
            let p = success_probability_lower_bound(m, 0.1, 10);
            assert!(p + 1e-12 >= last, "bound should not decrease with m");
            last = p;
        }
        assert!(last > 0.9);
    }

    #[test]
    fn seed_count_is_at_least_two() {
        assert!(seed_count(10, 10, 1, 0.5) >= 2);
    }

    fn tiny_catalog() -> SpiderCatalog {
        let g =
            LabeledGraph::from_parts(&[Label(0), Label(1), Label(0), Label(1)], &[(0, 1), (2, 3)]);
        SpiderCatalog::mine(
            &g,
            &SpiderMiningConfig {
                support_threshold: 2,
                ..SpiderMiningConfig::default()
            },
        )
    }

    #[test]
    fn random_draw_is_deterministic_and_bounded() {
        let catalog = tiny_catalog();
        let a = random_seed_spiders(&catalog, 1, 7);
        let b = random_seed_spiders(&catalog, 1, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        let all = random_seed_spiders(&catalog, 100, 7);
        assert_eq!(all.len(), catalog.len(), "cannot draw more than exist");
    }

    #[test]
    fn random_draw_returns_distinct_ids() {
        let catalog = tiny_catalog();
        let ids = random_seed_spiders(&catalog, catalog.len(), 3);
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
    }
}
