//! SpiderGrow / SpiderExtend: growing patterns by whole spiders.
//!
//! This is the paper's Algorithm 2/3 adapted to the star-spider representation
//! (see DESIGN.md): a pattern grows one *layer* per call — every boundary
//! vertex is offered the spiders whose head label matches it, new leaves are
//! appended for the spider's uncovered labels, and an embedding survives the
//! extension only if the corresponding data vertex has enough *free* (not yet
//! mapped) neighbors with the required labels. Growing by spiders rather than
//! edges is the paper's central efficiency claim: each step jumps several
//! edges at once.
//!
//! Within one layer, candidate patterns live in a [`PatternStore`] arena
//! rather than as owned [`LabeledGraph`] clones: each candidate extension is a copy-on-grow
//! append of its parent's flat spans ([`PatternStore::grow_star`]), beam
//! pruning sorts by span metadata alone, and only the variants that survive
//! the whole layer are materialized back into `LabeledGraph`s. This removes
//! the per-candidate clone (three `Vec` allocations plus an adjacency
//! rebuild) that used to dominate growth.

use crate::config::SpiderMineConfig;
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::label::Label;
use spidermine_graph::pattern_store::{PatternId, PatternStore};
use spidermine_mining::embedding::Embedding;
use spidermine_mining::spider::{SpiderCatalog, SpiderId, SpiderRef};

/// A pattern being grown by SpiderMine, together with its embeddings and
/// growth bookkeeping.
#[derive(Clone, Debug)]
pub struct GrownPattern {
    /// The pattern graph (vertices `0..k`).
    pub pattern: LabeledGraph,
    /// Embeddings of the pattern in the data graph.
    pub embeddings: Vec<Embedding>,
    /// Pattern vertices added by the most recent growth layer — the boundary
    /// `B[P]` that the next SpiderGrow call will try to extend.
    pub boundary: Vec<VertexId>,
    /// True if this pattern was produced by (or absorbed) a merge.
    pub merged: bool,
    /// Seed spiders that contributed to this pattern (provenance).
    pub seed_ids: Vec<SpiderId>,
    /// True when no further frequent extension exists.
    pub exhausted: bool,
}

impl GrownPattern {
    /// Support of the pattern under the configured measure.
    pub fn support(&self, config: &SpiderMineConfig) -> usize {
        config
            .support_measure
            .compute(self.pattern.vertex_count(), &self.embeddings)
    }

    /// Pattern size in edges (the paper's size definition).
    pub fn size(&self) -> usize {
        self.pattern.edge_count()
    }
}

/// Builds the initial [`GrownPattern`] for a seed spider: one embedding per
/// head occurrence, with leaves assigned greedily to the lowest-id free
/// neighbors of each label.
pub fn seed_pattern(
    host: &LabeledGraph,
    spider: SpiderRef<'_>,
    config: &SpiderMineConfig,
) -> GrownPattern {
    let pattern = spider.to_pattern();
    let mut embeddings = Vec::new();
    for &head in spider.heads {
        if embeddings.len() >= config.max_embeddings {
            break;
        }
        if let Some(e) = assign_star(host, head, spider.leaf_labels, &[]) {
            embeddings.push(e);
        }
    }
    let boundary = pattern.vertices().collect();
    GrownPattern {
        pattern,
        embeddings,
        boundary,
        merged: false,
        seed_ids: vec![spider.id],
        exhausted: false,
    }
}

/// Assigns the sorted `leaf_labels` of a star headed at data vertex `head` to
/// distinct neighbors of `head` that are not in `excluded`, lowest ids first.
/// Returns the embedding `[head, leaf_1, …]` or `None` if some label cannot be
/// supplied.
fn assign_star(
    host: &LabeledGraph,
    head: VertexId,
    leaf_labels: &[Label],
    excluded: &[VertexId],
) -> Option<Embedding> {
    let mut free_by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
    for &n in host.neighbors(head) {
        if excluded.contains(&n) || n == head {
            continue;
        }
        free_by_label.entry(host.label(n)).or_default().push(n);
    }
    // Neighbors are already sorted by id (adjacency lists are sorted).
    let mut cursor: FxHashMap<Label, usize> = FxHashMap::default();
    let mut embedding = vec![head];
    for &label in leaf_labels {
        let pool = free_by_label.get(&label)?;
        let at = cursor.entry(label).or_insert(0);
        if *at >= pool.len() {
            return None;
        }
        embedding.push(pool[*at]);
        *at += 1;
    }
    Some(embedding)
}

/// Internal working state while a layer is being grown: a handle into the
/// layer's pattern arena plus the embedding list. Patterns are only
/// materialized for the variants that survive the layer.
struct Working {
    id: PatternId,
    embeddings: Vec<Embedding>,
    new_vertices: Vec<VertexId>,
}

/// One frequent extension candidate produced by [`extensions_at`]: the labels
/// of the leaves to append at the boundary vertex, with the surviving
/// embeddings.
struct CandidateExt {
    new_leaves: Vec<Label>,
    embeddings: Vec<Embedding>,
}

/// Grows `input` by one layer (radius + r): every boundary vertex is offered
/// matching spiders, and the best few frequent variants are kept.
///
/// Returns one or more grown variants; if nothing could be extended the single
/// returned variant is the input pattern with `exhausted = true`.
pub fn grow_one_layer(
    host: &LabeledGraph,
    catalog: &SpiderCatalog,
    input: &GrownPattern,
    config: &SpiderMineConfig,
) -> Vec<GrownPattern> {
    let sigma = config.support_threshold;
    let mut store = PatternStore::new();
    let base = store.insert_graph(&input.pattern);
    let mut working = vec![Working {
        id: base,
        embeddings: input.embeddings.clone(),
        new_vertices: Vec::new(),
    }];
    for &v in &input.boundary {
        // Beam variants are independent: compute their candidate extensions
        // in parallel (extensions only *read* the layer arena), then splice
        // the copy-on-grow appends back sequentially in variant order — the
        // same deterministic order as a fully sequential run.
        let candidates_per_variant: Vec<Vec<CandidateExt>> = working
            .par_iter()
            .map(|w| extensions_at(host, catalog, &store, w, v, config))
            .collect();
        let mut next: Vec<Working> = Vec::new();
        for (w, candidates) in working.iter().zip(candidates_per_variant) {
            if candidates.is_empty() {
                next.push(Working {
                    id: w.id,
                    embeddings: w.embeddings.clone(),
                    new_vertices: w.new_vertices.clone(),
                });
                continue;
            }
            for c in candidates {
                // Copy-on-grow: append one vertex per new leaf, attached to v.
                let first_new = store.vertex_count(w.id) as u32;
                let id = store.grow_star(w.id, v, &c.new_leaves);
                let mut added = w.new_vertices.clone();
                added.extend((0..c.new_leaves.len() as u32).map(|i| VertexId(first_new + i)));
                next.push(Working {
                    id,
                    embeddings: c.embeddings,
                    new_vertices: added,
                });
            }
        }
        // Beam pruning: keep the largest variants (by edges, then support).
        // The support measure is the expensive half of the key, so it is
        // computed once per variant (cached), not once per comparison.
        next.sort_by_cached_key(|w| {
            let support = config
                .support_measure
                .compute(store.vertex_count(w.id), &w.embeddings);
            std::cmp::Reverse((store.edge_count(w.id), support))
        });
        next.truncate(config.beam_width.max(1));
        working = next;
        // Copy-on-grow never reclaims: beam-pruned candidates stay in the
        // pools until the layer ends. Once the dead spans dominate (large
        // boundaries growing large patterns), re-intern just the surviving
        // beam into a fresh arena so peak memory stays proportional to it.
        let (label_pool_len, _) = store.pool_sizes();
        if store.len() > 4 * working.len().max(1) && label_pool_len > (1 << 14) {
            let mut compact = PatternStore::new();
            for w in &mut working {
                let view = store.view(w.id);
                w.id = compact.insert_parts(view.labels, view.edges);
            }
            store = compact;
        }
    }
    working
        .into_iter()
        .map(|w| {
            let exhausted = w.new_vertices.is_empty();
            GrownPattern {
                pattern: store.materialize(w.id),
                embeddings: w.embeddings,
                boundary: if exhausted {
                    input.boundary.clone()
                } else {
                    w.new_vertices.clone()
                },
                merged: input.merged,
                seed_ids: input.seed_ids.clone(),
                exhausted,
            }
        })
        .filter(|g| g.support(config) >= sigma || g.exhausted)
        .collect()
}

/// SpiderExtend at a single boundary vertex: all frequent ways of planting a
/// spider with its head at `v`, ranked by how much they add, truncated to the
/// branch factor. Candidates are returned as leaf-label deltas (plus their
/// embeddings); the caller appends the survivors to the layer arena.
fn extensions_at(
    host: &LabeledGraph,
    catalog: &SpiderCatalog,
    store: &PatternStore,
    w: &Working,
    v: VertexId,
    config: &SpiderMineConfig,
) -> Vec<CandidateExt> {
    let sigma = config.support_threshold;
    let view = store.view(w.id);
    let head_label = view.label(v);
    // Labels already adjacent to v inside the pattern: the spider only adds
    // leaves beyond these (the paper's Maximal Overlap condition ensures the
    // spider covers them; we treat them as already satisfied).
    let mut covered: FxHashMap<Label, usize> = FxHashMap::default();
    view.for_each_neighbor_label(v, |l| *covered.entry(l).or_insert(0) += 1);
    let mut candidates: Vec<CandidateExt> = Vec::new();
    let mut spider_ids: Vec<SpiderId> = catalog.with_head_label(head_label).to_vec();
    // Prefer big spiders: they make the pattern leap further per iteration.
    spider_ids.sort_by_key(|&id| std::cmp::Reverse(catalog.get(id).size()));
    // Bound the work per boundary vertex: the big spiders come first, so
    // scanning a limited prefix loses little.
    let max_examined = config.branch_factor.max(1) * 16;
    for id in spider_ids.into_iter().take(max_examined) {
        if candidates.len() >= config.branch_factor.max(1) * 3 {
            break;
        }
        let spider = catalog.get(id);
        // Multiset difference: spider leaves not yet present around v.
        let new_leaves = multiset_difference(spider.leaf_labels, &covered);
        if new_leaves.is_empty() {
            continue;
        }
        if view.vertex_count() + new_leaves.len() > config.max_pattern_vertices {
            continue;
        }
        // Embeddings extend independently; evaluate them in parallel and keep
        // the first `max_embeddings` successes in input order — identical to
        // the sequential scan.
        let extended: Vec<Option<Embedding>> = w
            .embeddings
            .par_iter()
            .map(|e| {
                let dv = e[v.index()];
                assign_star(host, dv, &new_leaves, e).map(|star| {
                    // star = [dv, leaf_1, ...]; append the leaves.
                    let mut extended = e.clone();
                    extended.extend_from_slice(&star[1..]);
                    extended
                })
            })
            .collect();
        let new_embeddings: Vec<Embedding> = extended
            .into_iter()
            .flatten()
            .take(config.max_embeddings)
            .collect();
        let new_vertex_count = view.vertex_count() + new_leaves.len();
        let support = config
            .support_measure
            .compute(new_vertex_count, &new_embeddings);
        if support < sigma {
            continue;
        }
        candidates.push(CandidateExt {
            new_leaves,
            embeddings: new_embeddings,
        });
    }
    candidates.sort_by_key(|c| std::cmp::Reverse((c.new_leaves.len(), c.embeddings.len())));
    candidates.truncate(config.branch_factor.max(1));
    candidates
}

/// The sorted multiset `leaves \ covered`.
fn multiset_difference(leaves: &[Label], covered: &FxHashMap<Label, usize>) -> Vec<Label> {
    let mut remaining = covered.clone();
    let mut out = Vec::new();
    for &l in leaves {
        match remaining.get_mut(&l) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push(l),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_mining::spider::SpiderMiningConfig;

    /// Host with two copies of a path A-B-C-D (labels 0-1-2-3) plus a decoy
    /// edge.
    fn two_paths_host() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[
                Label(0),
                Label(1),
                Label(2),
                Label(3), // copy 1
                Label(0),
                Label(1),
                Label(2),
                Label(3), // copy 2
                Label(9),
                Label(9), // decoy
            ],
            &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (8, 9)],
        )
    }

    fn catalog_for(host: &LabeledGraph) -> SpiderCatalog {
        SpiderCatalog::mine(
            host,
            &SpiderMiningConfig {
                support_threshold: 2,
                ..SpiderMiningConfig::default()
            },
        )
    }

    fn test_config() -> SpiderMineConfig {
        SpiderMineConfig {
            support_threshold: 2,
            ..SpiderMineConfig::default()
        }
    }

    #[test]
    fn seed_pattern_has_one_embedding_per_head() {
        let host = two_paths_host();
        let catalog = catalog_for(&host);
        let config = test_config();
        // Spider with head label 1 and a leaf multiset {0, 2} exists with heads v1, v5.
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(1) && s.leaf_labels == [Label(0), Label(2)])
            .expect("B-head spider");
        let seeded = seed_pattern(&host, spider, &config);
        assert_eq!(seeded.embeddings.len(), 2);
        assert_eq!(seeded.pattern.vertex_count(), 3);
        assert!(!seeded.merged);
        assert!(!seeded.exhausted);
        // Every embedding is valid in the host.
        let ep = spidermine_mining::embedding::EmbeddedPattern::new(
            seeded.pattern.clone(),
            seeded.embeddings.clone(),
        );
        assert!(ep.validate_against(&host));
    }

    #[test]
    fn grow_one_layer_extends_toward_the_full_path() {
        let host = two_paths_host();
        let catalog = catalog_for(&host);
        let config = test_config();
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(1) && s.leaf_labels == [Label(0), Label(2)])
            .expect("B-head spider");
        let seeded = seed_pattern(&host, spider, &config);
        let grown = grow_one_layer(&host, &catalog, &seeded, &config);
        assert!(!grown.is_empty());
        // The best variant should have reached the D vertex (label 3): 4 vertices.
        let best = grown.iter().max_by_key(|g| g.size()).expect("non-empty");
        assert!(best.pattern.vertex_count() >= 4, "got {:?}", best.pattern);
        assert!(best.support(&config) >= 2);
        let ep = spidermine_mining::embedding::EmbeddedPattern::new(
            best.pattern.clone(),
            best.embeddings.clone(),
        );
        assert!(ep.validate_against(&host));
    }

    #[test]
    fn growth_marks_exhausted_when_nothing_extends() {
        let host = two_paths_host();
        let catalog = catalog_for(&host);
        let config = test_config();
        // Seed from the decoy edge's spider: label 9 with one label-9 leaf.
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(9))
            .expect("decoy spider");
        let seeded = seed_pattern(&host, spider, &config);
        // First layer: boundary = both vertices; nothing new can be added
        // (each label-9 vertex has only one neighbor, already used).
        let grown = grow_one_layer(&host, &catalog, &seeded, &config);
        assert!(grown.iter().all(|g| g.exhausted));
        assert!(grown.iter().all(|g| g.size() == seeded.size()));
    }

    #[test]
    fn infrequent_extensions_are_rejected() {
        // Only one copy of the path: sigma=2 forbids any growth beyond spiders
        // that occur twice.
        let host = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(0), Label(1)],
            &[(0, 1), (1, 2), (3, 4)],
        );
        let catalog = catalog_for(&host);
        let config = test_config();
        // The 1-headed spider {0} occurs twice (v1, v4); the {0,2} spider only once.
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(1) && s.leaf_labels == [Label(0)])
            .expect("small spider");
        let seeded = seed_pattern(&host, spider, &config);
        let grown = grow_one_layer(&host, &catalog, &seeded, &config);
        // No frequent growth is possible: extending toward label 2 drops support to 1.
        assert!(grown.iter().all(|g| g.pattern.vertex_count() == 2));
    }

    #[test]
    fn multiset_difference_behaviour() {
        let mut covered = FxHashMap::default();
        covered.insert(Label(1), 1);
        let leaves = vec![Label(1), Label(1), Label(2)];
        assert_eq!(
            multiset_difference(&leaves, &covered),
            vec![Label(1), Label(2)]
        );
        assert_eq!(multiset_difference(&leaves, &FxHashMap::default()), leaves);
    }

    #[test]
    fn assign_star_respects_exclusions_and_capacity() {
        let host = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (0, 3)],
        );
        let e = assign_star(&host, VertexId(0), &[Label(1), Label(1)], &[]).expect("fits");
        assert_eq!(e, vec![VertexId(0), VertexId(1), VertexId(2)]);
        // Excluding one label-1 neighbor leaves not enough capacity.
        assert!(assign_star(&host, VertexId(0), &[Label(1), Label(1)], &[VertexId(1)]).is_none());
        // Requiring an absent label fails.
        assert!(assign_star(&host, VertexId(0), &[Label(7)], &[]).is_none());
    }

    /// The layer arena must reproduce exactly what clone-and-mutate growth
    /// produced: same labels, same edge set, same boundary ids.
    #[test]
    fn arena_growth_is_equivalent_to_clone_growth() {
        let host = two_paths_host();
        let catalog = catalog_for(&host);
        let config = test_config();
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(1) && s.leaf_labels == [Label(0), Label(2)])
            .expect("B-head spider");
        let seeded = seed_pattern(&host, spider, &config);
        let grown = grow_one_layer(&host, &catalog, &seeded, &config);
        for g in &grown {
            // Pattern vertices 0..n with boundary ids inside range.
            for &b in &g.boundary {
                assert!(b.index() < g.pattern.vertex_count());
            }
            // Embedding arity matches the pattern.
            for e in &g.embeddings {
                assert_eq!(e.len(), g.pattern.vertex_count());
            }
            let ep = spidermine_mining::embedding::EmbeddedPattern::new(
                g.pattern.clone(),
                g.embeddings.clone(),
            );
            assert!(ep.validate_against(&host));
        }
    }
}
