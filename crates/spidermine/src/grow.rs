//! SpiderGrow / SpiderExtend: growing patterns by whole spiders.
//!
//! This is the paper's Algorithm 2/3 adapted to the star-spider representation
//! (see DESIGN.md): a pattern grows one *layer* per call — every boundary
//! vertex is offered the spiders whose head label matches it, new leaves are
//! appended for the spider's uncovered labels, and an embedding survives the
//! extension only if the corresponding data vertex has enough *free* (not yet
//! mapped) neighbors with the required labels. Growing by spiders rather than
//! edges is the paper's central efficiency claim: each step jumps several
//! edges at once.
//!
//! Within one layer, candidate patterns live in a [`PatternStore`] arena and
//! candidate *embeddings* live in a layer-local [`EmbeddingStore`] arena:
//! every extension appends flat rows instead of cloning a `Vec<Embedding>`,
//! beam pruning sorts by handles, and only the variants that survive the
//! whole layer are re-interned into the layer's compact output arena
//! ([`LayerGrowth`]), which the driver splices onto its global store
//! ([`EmbeddingStore::absorb`]) in deterministic pattern order. This removes
//! both per-candidate clone storms (the pattern graph *and* its embedding
//! list) that used to dominate growth.

use crate::config::SpiderMineConfig;
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::label::Label;
use spidermine_graph::pattern_store::{PatternId, PatternStore};
use spidermine_mining::embedding::Embedding;
use spidermine_mining::eval::{EmbeddingSetId, EmbeddingSetView, EmbeddingStore, FlatEmbeddings};
use spidermine_mining::spider::{SpiderCatalog, SpiderId, SpiderRef};

/// Mid-layer arena compaction trigger: pool size (in `VertexId`s) above which
/// dead candidate sets are worth reclaiming.
const ARENA_COMPACT_MIN: usize = 1 << 16;

/// A pattern being grown by SpiderMine, together with a handle to its
/// embedding set (in the run's [`EmbeddingStore`]) and growth bookkeeping.
#[derive(Clone, Debug)]
pub struct GrownPattern {
    /// The pattern graph (vertices `0..k`).
    pub pattern: LabeledGraph,
    /// Handle to the pattern's embeddings in the data graph. Copying a
    /// grown pattern copies this 4-byte handle, not the embedding list.
    pub embeddings: EmbeddingSetId,
    /// Pattern vertices added by the most recent growth layer — the boundary
    /// `B[P]` that the next SpiderGrow call will try to extend.
    pub boundary: Vec<VertexId>,
    /// True if this pattern was produced by (or absorbed) a merge.
    pub merged: bool,
    /// Seed spiders that contributed to this pattern (provenance).
    pub seed_ids: Vec<SpiderId>,
    /// True when no further frequent extension exists.
    pub exhausted: bool,
}

impl GrownPattern {
    /// Support of the pattern under the configured measure, computed from its
    /// embedding set in `store`.
    pub fn support(&self, config: &SpiderMineConfig, store: &EmbeddingStore) -> usize {
        store.view(self.embeddings).support(config.support_measure)
    }

    /// Number of embeddings retained for the pattern.
    pub fn embedding_count(&self, store: &EmbeddingStore) -> usize {
        store.view(self.embeddings).len()
    }

    /// Pattern size in edges (the paper's size definition).
    pub fn size(&self) -> usize {
        self.pattern.edge_count()
    }
}

/// The parallel-friendly half of seeding: the seed pattern plus its greedy
/// witness embeddings as an owned scratch buffer, ready to be interned by the
/// (sequential) caller.
pub fn seed_rows(
    host: &LabeledGraph,
    spider: SpiderRef<'_>,
    config: &SpiderMineConfig,
) -> (LabeledGraph, FlatEmbeddings) {
    let pattern = spider.to_pattern();
    let mut rows = FlatEmbeddings::new(pattern.vertex_count());
    for &head in spider.heads {
        if rows.len() >= config.max_embeddings {
            break;
        }
        if let Some(e) = assign_star(host, head, spider.leaf_labels, &[]) {
            rows.push_row(&e);
        }
    }
    // Greedy star assignment keeps one witness per head, not the complete
    // embedding set — never treat it as extension-complete.
    rows.mark_truncated();
    (pattern, rows)
}

/// Builds the initial [`GrownPattern`] for a seed spider: one embedding per
/// head occurrence, with leaves assigned greedily to the lowest-id free
/// neighbors of each label, interned into `store`.
pub fn seed_pattern(
    host: &LabeledGraph,
    spider: SpiderRef<'_>,
    config: &SpiderMineConfig,
    store: &mut EmbeddingStore,
) -> GrownPattern {
    let (pattern, rows) = seed_rows(host, spider, config);
    let boundary = pattern.vertices().collect();
    GrownPattern {
        embeddings: store.insert_scratch(&rows),
        pattern,
        boundary,
        merged: false,
        seed_ids: vec![spider.id],
        exhausted: false,
    }
}

/// Assigns the sorted `leaf_labels` of a star headed at data vertex `head` to
/// distinct neighbors of `head` that are not in `excluded`, lowest ids first.
/// Returns the embedding `[head, leaf_1, …]` or `None` if some label cannot be
/// supplied.
fn assign_star(
    host: &LabeledGraph,
    head: VertexId,
    leaf_labels: &[Label],
    excluded: &[VertexId],
) -> Option<Embedding> {
    let mut free_by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
    for &n in host.neighbors(head) {
        if excluded.contains(&n) || n == head {
            continue;
        }
        free_by_label.entry(host.label(n)).or_default().push(n);
    }
    // Neighbors are already sorted by id (adjacency lists are sorted).
    let mut cursor: FxHashMap<Label, usize> = FxHashMap::default();
    let mut embedding = vec![head];
    for &label in leaf_labels {
        let pool = free_by_label.get(&label)?;
        let at = cursor.entry(label).or_insert(0);
        if *at >= pool.len() {
            return None;
        }
        embedding.push(pool[*at]);
        *at += 1;
    }
    Some(embedding)
}

/// Internal working state while a layer is being grown: a handle into the
/// layer's pattern arena plus a handle into the layer's embedding arena.
/// Nothing is materialized until the layer ends.
struct Working {
    id: PatternId,
    set: EmbeddingSetId,
    new_vertices: Vec<VertexId>,
}

/// One frequent extension candidate produced by [`extensions_at`]: the labels
/// of the leaves to append at the boundary vertex, with the surviving
/// embeddings as an owned scratch buffer.
struct CandidateExt {
    new_leaves: Vec<Label>,
    rows: FlatEmbeddings,
}

/// One grown layer, before the driver splices it onto the global store: the
/// surviving variants with embedding handles into the layer's own compact
/// [`arena`](LayerGrowth::arena).
pub struct LayerGrowth {
    /// Arena holding exactly the surviving variants' embedding sets.
    pub arena: EmbeddingStore,
    /// The grown variants; their [`GrownPattern::embeddings`] handles index
    /// [`LayerGrowth::arena`] until rebased through
    /// [`EmbeddingStore::absorb`].
    pub variants: Vec<GrownPattern>,
}

/// Grows `input` by one layer (radius + r) against a read-only view of its
/// embeddings, producing a self-contained [`LayerGrowth`]. This is the
/// parallel-friendly entry point: the driver fans `grow_layer` out across
/// patterns (each call owns its scratch arenas) and absorbs the results
/// sequentially in pattern order — the same deterministic output as a fully
/// sequential run.
pub fn grow_layer(
    host: &LabeledGraph,
    catalog: &SpiderCatalog,
    input: &GrownPattern,
    parent: EmbeddingSetView<'_>,
    config: &SpiderMineConfig,
) -> LayerGrowth {
    let sigma = config.support_threshold;
    let measure = config.support_measure;
    let mut patterns = PatternStore::new();
    let mut arena = EmbeddingStore::new();
    let base = patterns.insert_graph(&input.pattern);
    let base_set = arena.insert_flat(parent.arity(), parent.flat(), parent.is_complete());
    let mut working = vec![Working {
        id: base,
        set: base_set,
        new_vertices: Vec::new(),
    }];
    for &v in &input.boundary {
        // Beam variants are independent: compute their candidate extensions
        // in parallel (extensions only *read* the layer arenas), then splice
        // the copy-on-grow appends back sequentially in variant order — the
        // same deterministic order as a fully sequential run.
        let candidates_per_variant: Vec<Vec<CandidateExt>> = working
            .par_iter()
            .map(|w| extensions_at(host, catalog, &patterns, &arena, w, v, config))
            .collect();
        let mut next: Vec<Working> = Vec::new();
        for (w, candidates) in working.iter().zip(candidates_per_variant) {
            if candidates.is_empty() {
                next.push(Working {
                    id: w.id,
                    set: w.set,
                    new_vertices: w.new_vertices.clone(),
                });
                continue;
            }
            for c in candidates {
                // Copy-on-grow: append one vertex per new leaf, attached to v.
                let first_new = patterns.vertex_count(w.id) as u32;
                let id = patterns.grow_star(w.id, v, &c.new_leaves);
                let mut added = w.new_vertices.clone();
                added.extend((0..c.new_leaves.len() as u32).map(|i| VertexId(first_new + i)));
                next.push(Working {
                    id,
                    set: arena.insert_scratch(&c.rows),
                    new_vertices: added,
                });
            }
        }
        // Beam pruning: keep the largest variants (by edges, then support).
        // The support measure is the expensive half of the key, so it is
        // computed once per variant (cached), not once per comparison.
        next.sort_by_cached_key(|w| {
            let support = arena.view(w.set).support(measure);
            std::cmp::Reverse((patterns.edge_count(w.id), support))
        });
        next.truncate(config.beam_width.max(1));
        working = next;
        // Copy-on-grow never reclaims: beam-pruned candidates stay in the
        // pools until the layer ends. Once the dead spans dominate (large
        // boundaries growing large patterns), re-intern just the surviving
        // beam into fresh arenas so peak memory stays proportional to it.
        let (label_pool_len, _) = patterns.pool_sizes();
        if patterns.len() > 4 * working.len().max(1) && label_pool_len > (1 << 14) {
            let mut compact = PatternStore::new();
            for w in &mut working {
                let view = patterns.view(w.id);
                w.id = compact.insert_parts(view.labels, view.edges);
            }
            patterns = compact;
        }
        let live: Vec<EmbeddingSetId> = working.iter().map(|w| w.set).collect();
        if let Some(remap) = arena.maybe_compact(&live, ARENA_COMPACT_MIN) {
            for w in &mut working {
                w.set = remap[&w.set];
            }
        }
    }
    // Materialize the survivors; re-intern their sets into a compact output
    // arena so the driver absorbs only live rows.
    let mut out = EmbeddingStore::new();
    let mut variants: Vec<GrownPattern> = working
        .into_iter()
        .map(|w| {
            let exhausted = w.new_vertices.is_empty();
            let view = arena.view(w.set);
            GrownPattern {
                pattern: patterns.materialize(w.id),
                embeddings: out.insert_flat(view.arity(), view.flat(), view.is_complete()),
                boundary: if exhausted {
                    input.boundary.clone()
                } else {
                    w.new_vertices.clone()
                },
                merged: input.merged,
                seed_ids: input.seed_ids.clone(),
                exhausted,
            }
        })
        .collect();
    variants.retain(|g| out.view(g.embeddings).support(measure) >= sigma || g.exhausted);
    LayerGrowth {
        arena: out,
        variants,
    }
}

/// Grows `input` by one layer inside a shared store: reads the input's set
/// from `store`, grows, and splices the surviving variants back. Sequential
/// convenience over [`grow_layer`] (the driver's parallel loops absorb layer
/// growths themselves).
///
/// Returns one or more grown variants; if nothing could be extended the single
/// returned variant is the input pattern with `exhausted = true`.
pub fn grow_one_layer(
    host: &LabeledGraph,
    catalog: &SpiderCatalog,
    input: &GrownPattern,
    config: &SpiderMineConfig,
    store: &mut EmbeddingStore,
) -> Vec<GrownPattern> {
    let growth = grow_layer(host, catalog, input, store.view(input.embeddings), config);
    let base = store.absorb(growth.arena);
    growth
        .variants
        .into_iter()
        .map(|mut g| {
            g.embeddings = EmbeddingStore::rebased(g.embeddings, base);
            g
        })
        .collect()
}

/// SpiderExtend at a single boundary vertex: all frequent ways of planting a
/// spider with its head at `v`, ranked by how much they add, truncated to the
/// branch factor. Candidates are returned as leaf-label deltas plus their
/// surviving embeddings (flat scratch rows); the caller appends the survivors
/// to the layer arenas.
fn extensions_at(
    host: &LabeledGraph,
    catalog: &SpiderCatalog,
    patterns: &PatternStore,
    arena: &EmbeddingStore,
    w: &Working,
    v: VertexId,
    config: &SpiderMineConfig,
) -> Vec<CandidateExt> {
    let sigma = config.support_threshold;
    let view = patterns.view(w.id);
    let rows = arena.view(w.set);
    let arity = rows.arity();
    let head_label = view.label(v);
    // Labels already adjacent to v inside the pattern: the spider only adds
    // leaves beyond these (the paper's Maximal Overlap condition ensures the
    // spider covers them; we treat them as already satisfied).
    let mut covered: FxHashMap<Label, usize> = FxHashMap::default();
    view.for_each_neighbor_label(v, |l| *covered.entry(l).or_insert(0) += 1);
    let mut candidates: Vec<CandidateExt> = Vec::new();
    let mut spider_ids: Vec<SpiderId> = catalog.with_head_label(head_label).to_vec();
    // Prefer big spiders: they make the pattern leap further per iteration.
    spider_ids.sort_by_key(|&id| std::cmp::Reverse(catalog.get(id).size()));
    // Bound the work per boundary vertex: the big spiders come first, so
    // scanning a limited prefix loses little.
    let max_examined = config.branch_factor.max(1) * 16;
    for id in spider_ids.into_iter().take(max_examined) {
        if candidates.len() >= config.branch_factor.max(1) * 3 {
            break;
        }
        let spider = catalog.get(id);
        // Multiset difference: spider leaves not yet present around v.
        let new_leaves = multiset_difference(spider.leaf_labels, &covered);
        if new_leaves.is_empty() {
            continue;
        }
        if view.vertex_count() + new_leaves.len() > config.max_pattern_vertices {
            continue;
        }
        // Embeddings extend independently; fold them in parallel over the
        // flat row slice, each task accumulating surviving rows into its own
        // capped buffer, and concatenate the buffers left-to-right — exactly
        // the first `max_embeddings` successes in row order, identical to
        // the sequential scan, but skewed rows steal instead of straggling.
        // This region nests inside the driver's per-pattern parallel round
        // and composes through the pool's deques.
        let new_arity = arity + new_leaves.len();
        let cap = config.max_embeddings;
        let mut new_rows = rows.flat().par_chunks(arity.max(1)).fold_reduce(
            || FlatEmbeddings::new(new_arity),
            |mut acc, row| {
                if acc.len() < cap {
                    let dv = row[v.index()];
                    if let Some(star) = assign_star(host, dv, &new_leaves, row) {
                        // star = [dv, leaf_1, ...]; append only the leaves.
                        acc.push_extended_row(row, &star[1..]);
                    }
                }
                acc
            },
            |mut left, right| {
                left.append_capped(&right, cap);
                left
            },
        );
        // Spider growth keeps one greedy witness per parent row — never a
        // complete embedding set.
        new_rows.mark_truncated();
        let support = new_rows.view().support(config.support_measure);
        if support < sigma {
            continue;
        }
        candidates.push(CandidateExt {
            new_leaves,
            rows: new_rows,
        });
    }
    candidates.sort_by_key(|c| std::cmp::Reverse((c.new_leaves.len(), c.rows.len())));
    candidates.truncate(config.branch_factor.max(1));
    candidates
}

/// The sorted multiset `leaves \ covered`.
fn multiset_difference(leaves: &[Label], covered: &FxHashMap<Label, usize>) -> Vec<Label> {
    let mut remaining = covered.clone();
    let mut out = Vec::new();
    for &l in leaves {
        match remaining.get_mut(&l) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push(l),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_mining::spider::SpiderMiningConfig;

    /// Host with two copies of a path A-B-C-D (labels 0-1-2-3) plus a decoy
    /// edge.
    fn two_paths_host() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[
                Label(0),
                Label(1),
                Label(2),
                Label(3), // copy 1
                Label(0),
                Label(1),
                Label(2),
                Label(3), // copy 2
                Label(9),
                Label(9), // decoy
            ],
            &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (8, 9)],
        )
    }

    fn catalog_for(host: &LabeledGraph) -> SpiderCatalog {
        SpiderCatalog::mine(
            host,
            &SpiderMiningConfig {
                support_threshold: 2,
                ..SpiderMiningConfig::default()
            },
        )
    }

    fn test_config() -> SpiderMineConfig {
        SpiderMineConfig {
            support_threshold: 2,
            ..SpiderMineConfig::default()
        }
    }

    fn validate(host: &LabeledGraph, store: &EmbeddingStore, g: &GrownPattern) -> bool {
        spidermine_mining::embedding::EmbeddedPattern::new(
            g.pattern.clone(),
            store.to_embeddings(g.embeddings),
        )
        .validate_against(host)
    }

    #[test]
    fn seed_pattern_has_one_embedding_per_head() {
        let host = two_paths_host();
        let catalog = catalog_for(&host);
        let config = test_config();
        let mut store = EmbeddingStore::new();
        // Spider with head label 1 and a leaf multiset {0, 2} exists with heads v1, v5.
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(1) && s.leaf_labels == [Label(0), Label(2)])
            .expect("B-head spider");
        let seeded = seed_pattern(&host, spider, &config, &mut store);
        assert_eq!(seeded.embedding_count(&store), 2);
        assert_eq!(seeded.pattern.vertex_count(), 3);
        assert!(!seeded.merged);
        assert!(!seeded.exhausted);
        // Every embedding is valid in the host.
        assert!(validate(&host, &store, &seeded));
    }

    #[test]
    fn grow_one_layer_extends_toward_the_full_path() {
        let host = two_paths_host();
        let catalog = catalog_for(&host);
        let config = test_config();
        let mut store = EmbeddingStore::new();
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(1) && s.leaf_labels == [Label(0), Label(2)])
            .expect("B-head spider");
        let seeded = seed_pattern(&host, spider, &config, &mut store);
        let grown = grow_one_layer(&host, &catalog, &seeded, &config, &mut store);
        assert!(!grown.is_empty());
        // The best variant should have reached the D vertex (label 3): 4 vertices.
        let best = grown.iter().max_by_key(|g| g.size()).expect("non-empty");
        assert!(best.pattern.vertex_count() >= 4, "got {:?}", best.pattern);
        assert!(best.support(&config, &store) >= 2);
        assert!(validate(&host, &store, best));
    }

    #[test]
    fn growth_marks_exhausted_when_nothing_extends() {
        let host = two_paths_host();
        let catalog = catalog_for(&host);
        let config = test_config();
        let mut store = EmbeddingStore::new();
        // Seed from the decoy edge's spider: label 9 with one label-9 leaf.
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(9))
            .expect("decoy spider");
        let seeded = seed_pattern(&host, spider, &config, &mut store);
        // First layer: boundary = both vertices; nothing new can be added
        // (each label-9 vertex has only one neighbor, already used).
        let grown = grow_one_layer(&host, &catalog, &seeded, &config, &mut store);
        assert!(grown.iter().all(|g| g.exhausted));
        assert!(grown.iter().all(|g| g.size() == seeded.size()));
    }

    #[test]
    fn infrequent_extensions_are_rejected() {
        // Only one copy of the path: sigma=2 forbids any growth beyond spiders
        // that occur twice.
        let host = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(0), Label(1)],
            &[(0, 1), (1, 2), (3, 4)],
        );
        let catalog = catalog_for(&host);
        let config = test_config();
        let mut store = EmbeddingStore::new();
        // The 1-headed spider {0} occurs twice (v1, v4); the {0,2} spider only once.
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(1) && s.leaf_labels == [Label(0)])
            .expect("small spider");
        let seeded = seed_pattern(&host, spider, &config, &mut store);
        let grown = grow_one_layer(&host, &catalog, &seeded, &config, &mut store);
        // No frequent growth is possible: extending toward label 2 drops support to 1.
        assert!(grown.iter().all(|g| g.pattern.vertex_count() == 2));
    }

    #[test]
    fn multiset_difference_behaviour() {
        let mut covered = FxHashMap::default();
        covered.insert(Label(1), 1);
        let leaves = vec![Label(1), Label(1), Label(2)];
        assert_eq!(
            multiset_difference(&leaves, &covered),
            vec![Label(1), Label(2)]
        );
        assert_eq!(multiset_difference(&leaves, &FxHashMap::default()), leaves);
    }

    #[test]
    fn assign_star_respects_exclusions_and_capacity() {
        let host = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (0, 3)],
        );
        let e = assign_star(&host, VertexId(0), &[Label(1), Label(1)], &[]).expect("fits");
        assert_eq!(e, vec![VertexId(0), VertexId(1), VertexId(2)]);
        // Excluding one label-1 neighbor leaves not enough capacity.
        assert!(assign_star(&host, VertexId(0), &[Label(1), Label(1)], &[VertexId(1)]).is_none());
        // Requiring an absent label fails.
        assert!(assign_star(&host, VertexId(0), &[Label(7)], &[]).is_none());
    }

    /// The layer arenas must reproduce exactly what clone-and-mutate growth
    /// produced: same labels, same edge set, same boundary ids, valid
    /// embeddings of matching arity.
    #[test]
    fn arena_growth_is_equivalent_to_clone_growth() {
        let host = two_paths_host();
        let catalog = catalog_for(&host);
        let config = test_config();
        let mut store = EmbeddingStore::new();
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(1) && s.leaf_labels == [Label(0), Label(2)])
            .expect("B-head spider");
        let seeded = seed_pattern(&host, spider, &config, &mut store);
        let grown = grow_one_layer(&host, &catalog, &seeded, &config, &mut store);
        for g in &grown {
            // Pattern vertices 0..n with boundary ids inside range.
            for &b in &g.boundary {
                assert!(b.index() < g.pattern.vertex_count());
            }
            // Embedding arity matches the pattern.
            assert_eq!(
                store.view(g.embeddings).arity(),
                g.pattern.vertex_count(),
                "arity mismatch"
            );
            assert!(validate(&host, &store, g));
        }
    }

    /// `grow_layer` + `absorb` (what the parallel driver does) must equal the
    /// sequential `grow_one_layer` convenience.
    #[test]
    fn layer_growth_absorbs_like_the_sequential_path() {
        let host = two_paths_host();
        let catalog = catalog_for(&host);
        let config = test_config();
        let mut store_a = EmbeddingStore::new();
        let mut store_b = EmbeddingStore::new();
        let spider = catalog
            .spiders()
            .find(|s| s.head_label == Label(1) && s.leaf_labels == [Label(0), Label(2)])
            .expect("B-head spider");
        let seeded_a = seed_pattern(&host, spider, &config, &mut store_a);
        let seeded_b = seed_pattern(&host, spider, &config, &mut store_b);
        let sequential = grow_one_layer(&host, &catalog, &seeded_a, &config, &mut store_a);
        let growth = grow_layer(
            &host,
            &catalog,
            &seeded_b,
            store_b.view(seeded_b.embeddings),
            &config,
        );
        let base = store_b.absorb(growth.arena);
        assert_eq!(sequential.len(), growth.variants.len());
        for (a, b) in sequential.iter().zip(&growth.variants) {
            let b_set = EmbeddingStore::rebased(b.embeddings, base);
            assert_eq!(a.pattern.labels(), b.pattern.labels());
            assert_eq!(a.boundary, b.boundary);
            assert_eq!(
                store_a.to_embeddings(a.embeddings),
                store_b.to_embeddings(b_set)
            );
        }
    }
}
