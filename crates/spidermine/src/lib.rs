//! SpiderMine — mining the top-K largest frequent structural patterns in a
//! single massive network (reproduction of Zhu et al., VLDB 2011).
//!
//! The recommended entry point is the unified engine API
//! (`spidermine-engine`): build a validated `MineRequest`, get a `Miner`, and
//! run it with a `MineContext` that supports cancellation, progress and
//! streaming. [`SpiderMiner::mine`] / [`TransactionMiner::mine`] remain as
//! thin deprecated shims over [`SpiderMiner::mine_with`] /
//! [`TransactionMiner::mine_with`] with byte-identical outputs.
//!
//! ```
//! use spidermine_engine::{Algorithm, GraphSource, MineContext, MineRequest, Miner};
//! use spidermine_graph::{LabeledGraph, Label};
//!
//! // A toy network: two copies of a 4-vertex pattern plus noise.
//! let mut g = LabeledGraph::new();
//! let labels = [0u32, 1, 2, 3, 0, 1, 2, 3, 5, 6];
//! let vs: Vec<_> = labels.iter().map(|&l| g.add_vertex(Label(l))).collect();
//! for (a, b) in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (8, 9)] {
//!     g.add_edge(vs[a], vs[b]);
//! }
//!
//! let miner = MineRequest::new(Algorithm::SpiderMine)
//!     .support_threshold(2)
//!     .k(3)
//!     .build()
//!     .expect("a validated request");
//! let outcome = miner
//!     .mine(&GraphSource::Single(&g), &mut MineContext::new())
//!     .expect("a single graph is what SpiderMine mines");
//! assert!(!outcome.patterns.is_empty());
//! ```
//!
//! The algorithm follows the paper's three stages:
//!
//! 1. **Mining spiders** ([`spidermine_mining::spider`]) — all frequent
//!    r-bounded patterns with their head occurrences.
//! 2. **Large pattern identification** ([`grow`], [`merge`], [`seeding`]) —
//!    draw `M` random seed spiders (`M` from Lemma 2 via
//!    [`seeding::seed_count`]), grow them `Dmax/2r` times by whole spiders,
//!    merge patterns whose embeddings start to overlap, keep only merged
//!    patterns.
//! 3. **Large pattern recovery** ([`miner`]) — keep growing the survivors to
//!    exhaustion and return the K largest, after [`closure`] refinement.
//!
//! The spider-set representation used to skip isomorphism tests
//! (Section 4.2.2 of the paper) lives in [`spider_set`].

pub mod closure;
pub mod config;
pub mod grow;
pub mod merge;
pub mod miner;
pub mod result;
pub mod seeding;
pub mod spider_set;
pub mod transaction;

pub use config::SpiderMineConfig;
pub use miner::SpiderMiner;
pub use result::{MinedPattern, MiningResult, MiningStats};
pub use transaction::{TransactionMiner, TransactionMiningResult};
