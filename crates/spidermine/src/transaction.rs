//! Adaptation of SpiderMine to the graph-transaction setting.
//!
//! The paper notes (Section 2) that SpiderMine "can be adapted to
//! graph-transaction setting with no difficulty": treat the database as the
//! disjoint union of its transactions, mine with the single-graph machinery,
//! and count support as the number of *transactions* containing the pattern.
//! Figures 14–15 compare this adaptation against ORIGAMI.

use crate::config::SpiderMineConfig;
use crate::miner::SpiderMiner;
use crate::result::{MinedPattern, MiningStats};
use spidermine_graph::graph::LabeledGraph;
use spidermine_graph::transaction::GraphDatabase;
use spidermine_mining::context::{MineContext, StreamedPattern};
use spidermine_mining::eval::PatternMemo;

/// One pattern mined from a transaction database.
#[derive(Clone, Debug)]
pub struct TransactionPattern {
    /// The pattern graph.
    pub pattern: LabeledGraph,
    /// Number of transactions containing at least one embedding.
    pub transaction_support: usize,
}

/// Result of mining a transaction database.
#[derive(Clone, Debug, Default)]
pub struct TransactionMiningResult {
    /// Top-K patterns by size whose transaction support meets the threshold.
    pub patterns: Vec<TransactionPattern>,
    /// Statistics of the underlying single-graph run.
    pub stats: MiningStats,
}

impl TransactionMiningResult {
    /// Histogram of pattern sizes in vertices (what Figures 14–15 plot).
    pub fn size_histogram_vertices(&self) -> std::collections::BTreeMap<usize, usize> {
        let mut hist = std::collections::BTreeMap::new();
        for p in &self.patterns {
            *hist.entry(p.pattern.vertex_count()).or_insert(0) += 1;
        }
        hist
    }
}

/// SpiderMine for graph-transaction databases.
#[derive(Clone, Debug)]
pub struct TransactionMiner {
    config: SpiderMineConfig,
}

impl TransactionMiner {
    /// Creates a transaction-setting miner. `config.support_threshold` is the
    /// minimum number of supporting *transactions*.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`SpiderMineConfig::validate`]). The engine API
    /// (`spidermine-engine`) reports the same conditions as a recoverable
    /// `MineError::InvalidConfig` instead.
    pub fn new(config: SpiderMineConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid SpiderMine configuration: {msg}");
        }
        Self { config }
    }

    /// Mines the approximate top-K largest patterns of `db`.
    ///
    /// Thin shim over [`TransactionMiner::mine_with`]; new code should go
    /// through the unified engine API (`spidermine-engine`).
    pub fn mine(&self, db: &GraphDatabase) -> TransactionMiningResult {
        self.mine_with(db, &mut MineContext::new())
    }

    /// [`TransactionMiner::mine`] with an execution context. The inner
    /// single-graph run shares the context's cancel token (so a fired token
    /// also stops the inner stages) and contributes its per-stage timings;
    /// the final re-ranked patterns stream through the context's sink.
    pub fn mine_with(&self, db: &GraphDatabase, ctx: &mut MineContext) -> TransactionMiningResult {
        if db.is_empty() {
            return TransactionMiningResult::default();
        }
        let (union, _owner) = db.to_union_graph();
        // Over-fetch from the single-graph miner, then re-rank by transaction
        // support: a pattern embedded several times inside one transaction
        // must not be over-counted.
        let inner_config = SpiderMineConfig {
            k: (self.config.k * 3).max(self.config.k + 4),
            ..self.config.clone()
        };
        // The inner run gets its own context wired to the same cancel token:
        // its streamed patterns are raw union-graph candidates, not the
        // transaction-ranked result, so they must not reach the outer sink.
        let mut inner_ctx = MineContext::with_cancel(ctx.cancel_token());
        let inner = SpiderMiner::new(inner_config).mine_with(&union, &mut inner_ctx);
        for t in inner_ctx.take_timings() {
            ctx.record_stage(t.stage, t.elapsed);
        }
        let rerank_start = std::time::Instant::now();
        // Transaction support is a pure function of the isomorphism class, so
        // memoizing it per canonical pattern is exact: isomorphic candidates
        // cost one subgraph-isomorphism sweep over the database, not one each.
        let mut memo = PatternMemo::new();
        let mut patterns: Vec<TransactionPattern> = inner
            .patterns
            .iter()
            .map(|p: &MinedPattern| TransactionPattern {
                pattern: p.pattern.clone(),
                transaction_support: memo.get_or_insert_with(&p.pattern, || db.support(&p.pattern)),
            })
            .filter(|p| p.transaction_support >= self.config.support_threshold)
            .collect();
        patterns
            .sort_by_key(|p| std::cmp::Reverse((p.pattern.edge_count(), p.pattern.vertex_count())));
        patterns.truncate(self.config.k);
        ctx.record_stage("rerank", rerank_start.elapsed());
        for p in &patterns {
            ctx.emit_with(|| StreamedPattern {
                pattern: p.pattern.clone(),
                support: p.transaction_support,
                embeddings: Vec::new(),
            });
        }
        // `cancelled` comes from the inner run (which shares the token): a
        // token fired only after the work completed must not mark a complete
        // result as partial.
        TransactionMiningResult {
            patterns,
            stats: inner.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spidermine_graph::generate;

    fn planted_db(transactions: usize, seed: u64) -> (GraphDatabase, LabeledGraph) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pattern = generate::random_connected_pattern(&mut rng, 8, 30, 2);
        let mut db = GraphDatabase::default();
        for _ in 0..transactions {
            let mut g = generate::erdos_renyi_average_degree(&mut rng, 60, 2.0, 30);
            generate::inject_pattern(&mut rng, &mut g, &pattern, 1, 2);
            db.push(g);
        }
        (db, pattern)
    }

    fn config(k: usize, sigma: usize) -> SpiderMineConfig {
        SpiderMineConfig {
            support_threshold: sigma,
            k,
            d_max: 8,
            rng_seed: 3,
            ..SpiderMineConfig::default()
        }
    }

    #[test]
    fn mines_pattern_shared_across_transactions() {
        let (db, pattern) = planted_db(4, 9);
        let result = TransactionMiner::new(config(5, 3)).mine(&db);
        assert!(!result.patterns.is_empty());
        let largest = &result.patterns[0];
        assert!(largest.transaction_support >= 3);
        assert!(
            largest.pattern.vertex_count() >= pattern.vertex_count() / 2,
            "largest transaction pattern too small: {} vs planted {}",
            largest.pattern.vertex_count(),
            pattern.vertex_count()
        );
    }

    #[test]
    fn transaction_support_is_not_embedding_count() {
        let (db, _) = planted_db(3, 21);
        let result = TransactionMiner::new(config(5, 2)).mine(&db);
        for p in &result.patterns {
            assert!(p.transaction_support <= db.len());
        }
    }

    #[test]
    fn empty_database_returns_nothing() {
        let result = TransactionMiner::new(config(3, 2)).mine(&GraphDatabase::default());
        assert!(result.patterns.is_empty());
    }

    #[test]
    fn k_is_respected() {
        let (db, _) = planted_db(3, 33);
        let result = TransactionMiner::new(config(2, 2)).mine(&db);
        assert!(result.patterns.len() <= 2);
    }
}
