//! Mining results and statistics.

use spidermine_graph::graph::LabeledGraph;
use spidermine_graph::traversal;
use spidermine_mining::embedding::Embedding;
use std::collections::BTreeMap;
use std::time::Duration;

/// One pattern returned by SpiderMine.
#[derive(Clone, Debug)]
pub struct MinedPattern {
    /// The pattern graph.
    pub pattern: LabeledGraph,
    /// Support under the miner's configured measure.
    pub support: usize,
    /// Embeddings retained for the pattern (may be capped).
    pub embeddings: Vec<Embedding>,
    /// Exact diameter of the pattern.
    pub diameter: u32,
    /// Whether the pattern resulted from a Stage II merge (as opposed to the
    /// unmerged fallback).
    pub from_merge: bool,
}

impl MinedPattern {
    /// Pattern size in edges (the paper's definition of size).
    pub fn size_edges(&self) -> usize {
        self.pattern.edge_count()
    }

    /// Pattern size in vertices (what several figures of the paper plot).
    pub fn size_vertices(&self) -> usize {
        self.pattern.vertex_count()
    }
}

/// Per-stage timing and work counters.
#[derive(Clone, Debug, Default)]
pub struct MiningStats {
    /// Number of r-spiders mined in Stage I.
    pub spider_count: usize,
    /// Number of seed spiders drawn (M).
    pub seed_count: usize,
    /// Stage II SpiderGrow iterations executed.
    pub stage_two_iterations: u32,
    /// Total merged patterns produced across Stage II.
    pub merges: usize,
    /// Isomorphism tests skipped thanks to spider-set pruning.
    pub iso_tests_pruned: usize,
    /// Full isomorphism tests run.
    pub iso_tests_run: usize,
    /// Merged-union occurrences that were confirmed isomorphic to an existing
    /// group but could not be re-fetched and were dropped from the group's
    /// support set (see `MergeStats::dropped_embeddings`). Should be 0.
    pub merge_embeddings_dropped: usize,
    /// Support-oracle memo hits observed by the run's context. Cumulative
    /// when the caller shares one oracle across several runs.
    pub oracle_hits: usize,
    /// Support-oracle memo misses (evaluations actually performed).
    pub oracle_misses: usize,
    /// Wall-clock time of Stage I (spider mining).
    pub stage_one_time: Duration,
    /// Wall-clock time of Stage II (identification).
    pub stage_two_time: Duration,
    /// Wall-clock time of Stage III (recovery).
    pub stage_three_time: Duration,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// True if the run observed a fired `CancelToken` and wound down early;
    /// the returned patterns are a valid partial result.
    pub cancelled: bool,
}

/// The result of a SpiderMine run.
#[derive(Clone, Debug, Default)]
pub struct MiningResult {
    /// Top-K patterns, sorted by decreasing size (edges, then vertices).
    pub patterns: Vec<MinedPattern>,
    /// Work and timing statistics.
    pub stats: MiningStats,
}

impl MiningResult {
    /// Histogram of pattern sizes: `size -> how many returned patterns have
    /// that size`. `by_vertices` selects |V| (used by Figures 4–8, 20, 21) vs
    /// |E| (used by Figures 13, 18).
    pub fn size_histogram(&self, by_vertices: bool) -> BTreeMap<usize, usize> {
        let mut hist = BTreeMap::new();
        for p in &self.patterns {
            let size = if by_vertices {
                p.size_vertices()
            } else {
                p.size_edges()
            };
            *hist.entry(size).or_insert(0) += 1;
        }
        hist
    }

    /// Size (in vertices) of the largest returned pattern, 0 if none.
    pub fn largest_vertices(&self) -> usize {
        self.patterns
            .iter()
            .map(MinedPattern::size_vertices)
            .max()
            .unwrap_or(0)
    }

    /// Size (in edges) of the largest returned pattern, 0 if none.
    pub fn largest_edges(&self) -> usize {
        self.patterns
            .iter()
            .map(MinedPattern::size_edges)
            .max()
            .unwrap_or(0)
    }

    /// Sorts patterns by decreasing size; called by the miner before returning.
    pub fn sort_patterns(&mut self) {
        self.patterns
            .sort_by_key(|p| std::cmp::Reverse((p.size_edges(), p.size_vertices(), p.support)));
    }
}

/// Helper used by miners to build a [`MinedPattern`] with its diameter filled in.
pub fn mined_pattern(
    pattern: LabeledGraph,
    support: usize,
    embeddings: Vec<Embedding>,
    from_merge: bool,
) -> MinedPattern {
    let diameter = traversal::diameter(&pattern);
    MinedPattern {
        pattern,
        support,
        embeddings,
        diameter,
        from_merge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::label::Label;

    fn pattern_of_size(n: usize) -> MinedPattern {
        let labels: Vec<Label> = (0..n as u32).map(Label).collect();
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        mined_pattern(LabeledGraph::from_parts(&labels, &edges), 2, vec![], true)
    }

    #[test]
    fn histogram_counts_sizes() {
        let result = MiningResult {
            patterns: vec![pattern_of_size(3), pattern_of_size(3), pattern_of_size(5)],
            ..MiningResult::default()
        };
        let by_v = result.size_histogram(true);
        assert_eq!(by_v.get(&3), Some(&2));
        assert_eq!(by_v.get(&5), Some(&1));
        let by_e = result.size_histogram(false);
        assert_eq!(by_e.get(&2), Some(&2));
        assert_eq!(by_e.get(&4), Some(&1));
    }

    #[test]
    fn largest_helpers() {
        let mut result = MiningResult::default();
        assert_eq!(result.largest_vertices(), 0);
        assert_eq!(result.largest_edges(), 0);
        result.patterns = vec![pattern_of_size(3), pattern_of_size(7)];
        assert_eq!(result.largest_vertices(), 7);
        assert_eq!(result.largest_edges(), 6);
    }

    #[test]
    fn sort_orders_by_decreasing_size() {
        let mut result = MiningResult {
            patterns: vec![pattern_of_size(3), pattern_of_size(7), pattern_of_size(5)],
            ..MiningResult::default()
        };
        result.sort_patterns();
        let sizes: Vec<usize> = result.patterns.iter().map(|p| p.size_vertices()).collect();
        assert_eq!(sizes, vec![7, 5, 3]);
    }

    #[test]
    fn mined_pattern_computes_diameter() {
        let p = pattern_of_size(4);
        assert_eq!(p.diameter, 3);
        assert_eq!(p.size_edges(), 3);
        assert_eq!(p.size_vertices(), 4);
    }
}
