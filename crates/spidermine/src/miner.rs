//! The three-stage SpiderMine driver (Algorithm 1 of the paper).

use crate::closure;
use crate::config::SpiderMineConfig;
use crate::grow::{self, GrownPattern};
use crate::merge;
use crate::result::{mined_pattern, MiningResult, MiningStats};
use crate::seeding;
use rayon::prelude::*;
use rustc_hash::FxHashSet;
use spidermine_graph::graph::LabeledGraph;
use spidermine_graph::traversal;
use spidermine_mining::context::{MineContext, ProgressEvent, StreamedPattern};
use spidermine_mining::eval::{EmbeddingSetId, EmbeddingStore};
use spidermine_mining::pattern_index::PatternIndex;
use spidermine_mining::spider::{SpiderCatalog, SpiderMiningConfig};
use std::time::Instant;

/// Safety cap on Stage III growth rounds.
const MAX_STAGE_THREE_ROUNDS: usize = 64;

/// Embedding-arena compaction trigger: pool size (in `VertexId`s) above which
/// dead sets are worth reclaiming at an iteration boundary.
const STORE_COMPACT_MIN: usize = 1 << 18;

/// Compacts the run's embedding arena once dead sets dominate, remapping the
/// handles of every live pattern group in place. Called only at sequential
/// iteration boundaries.
fn maybe_compact_store(store: &mut EmbeddingStore, groups: &mut [&mut Vec<GrownPattern>]) {
    let live: Vec<EmbeddingSetId> = groups
        .iter()
        .flat_map(|g| g.iter().map(|p| p.embeddings))
        .collect();
    if let Some(remap) = store.maybe_compact(&live, STORE_COMPACT_MIN) {
        for g in groups.iter_mut() {
            for p in g.iter_mut() {
                p.embeddings = remap[&p.embeddings];
            }
        }
    }
}

/// The SpiderMine miner. Create it with a [`SpiderMineConfig`] and call
/// [`SpiderMiner::mine`].
#[derive(Clone, Debug)]
pub struct SpiderMiner {
    config: SpiderMineConfig,
}

impl SpiderMiner {
    /// Creates a miner with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`SpiderMineConfig::validate`]).
    pub fn new(config: SpiderMineConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid SpiderMine configuration: {msg}");
        }
        Self { config }
    }

    /// The configuration this miner runs with.
    pub fn config(&self) -> &SpiderMineConfig {
        &self.config
    }

    /// Mines the approximate top-K largest frequent patterns of `host`
    /// (Definition 3): with probability at least `1 - ε` the result contains
    /// every top-K largest pattern with support ≥ σ and diameter ≤ `Dmax`.
    ///
    /// This entry point is kept as a thin shim over
    /// [`SpiderMiner::mine_with`] for existing callers; new code should go
    /// through the unified engine API (`spidermine-engine`), which also
    /// exposes cancellation, progress and streaming.
    pub fn mine(&self, host: &LabeledGraph) -> MiningResult {
        self.mine_with(host, &mut MineContext::new())
    }

    /// [`SpiderMiner::mine`] with an execution context: the context's
    /// [`CancelToken`](spidermine_mining::context::CancelToken) is polled at
    /// every stage and iteration boundary (a fired token winds the run down
    /// and returns the patterns selected so far as a partial result), progress
    /// events fire per stage and per Stage II/III iteration, accepted patterns
    /// stream through the context's sink in acceptance order, and per-stage
    /// wall-clock timings are recorded into the context.
    pub fn mine_with(&self, host: &LabeledGraph, ctx: &mut MineContext) -> MiningResult {
        let config = &self.config;
        let total_start = Instant::now();
        let mut stats = MiningStats::default();
        // The run's embedding arena: every grown/merged/pooled pattern holds
        // an `EmbeddingSetId` into this store instead of an owned
        // `Vec<Embedding>`. The support oracle comes from the context, so a
        // caller can share one memo across runs (default: a fresh memoizing
        // oracle for this config's measure).
        let mut store = EmbeddingStore::new();
        let oracle = ctx.support_oracle(config.support_measure);

        // ---------------------------------------------------------------
        // Stage I: mine all r-spiders.
        // ---------------------------------------------------------------
        ctx.progress(ProgressEvent::StageStarted { stage: "spiders" });
        let stage_one_start = Instant::now();
        let catalog = SpiderCatalog::mine(
            host,
            &SpiderMiningConfig {
                support_threshold: config.support_threshold,
                max_leaves: config.max_spider_leaves,
                include_single_vertex: false,
                max_spiders: usize::MAX,
            },
        );
        stats.spider_count = catalog.len();
        stats.stage_one_time = stage_one_start.elapsed();
        ctx.record_stage("spiders", stats.stage_one_time);
        ctx.progress(ProgressEvent::StageFinished { stage: "spiders" });

        if catalog.is_empty() || host.vertex_count() == 0 || ctx.is_cancelled() {
            stats.cancelled = ctx.was_cancelled();
            stats.total_time = total_start.elapsed();
            return MiningResult {
                patterns: Vec::new(),
                stats,
            };
        }

        // ---------------------------------------------------------------
        // Stage II: random seeding, iterative growth, merge detection.
        // ---------------------------------------------------------------
        ctx.progress(ProgressEvent::StageStarted { stage: "identify" });
        let stage_two_start = Instant::now();
        let v_min = ((host.vertex_count() as f64) * config.v_min_fraction).ceil() as usize;
        let m = config.seed_count_override.unwrap_or_else(|| {
            seeding::seed_count(host.vertex_count(), v_min.max(1), config.k, config.epsilon)
        });
        let seed_ids = seeding::random_seed_spiders(&catalog, m, config.rng_seed);
        stats.seed_count = seed_ids.len();

        // Seed-pattern embedding discovery is independent per seed spider:
        // fan it out (each worker fills an owned flat scratch buffer),
        // keeping seed order, then intern the frequent survivors into the
        // arena sequentially — deterministic.
        let mut patterns: Vec<GrownPattern> = seed_ids
            .par_iter()
            .map(|&id| {
                let (pattern, rows) = grow::seed_rows(host, catalog.get(id), config);
                let frequent =
                    rows.view().support(config.support_measure) >= config.support_threshold;
                frequent.then_some((id, pattern, rows))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .map(|(id, pattern, rows)| GrownPattern {
                embeddings: store.insert_scratch(&rows),
                boundary: pattern.vertices().collect(),
                pattern,
                merged: false,
                seed_ids: vec![id],
                exhausted: false,
            })
            .collect();

        // A pool of everything ever discovered ("all the patterns discovered
        // so far are maintained in a list sorted by their size", Stage III).
        let mut pool: Vec<GrownPattern> = Vec::new();
        let mut pool_index = PatternIndex::new();
        let remember =
            |p: &GrownPattern, pool: &mut Vec<GrownPattern>, index: &mut PatternIndex| {
                let (_, fresh) = index.insert(p.pattern.clone());
                if fresh {
                    pool.push(p.clone());
                }
            };

        let iterations = config.stage_two_iterations();
        stats.stage_two_iterations = iterations;
        for iteration in 0..iterations {
            // A fired token ends identification early: the pool keeps every
            // pattern grown so far, so the final selection still returns a
            // meaningful partial result.
            if ctx.is_cancelled() {
                break;
            }
            // Each working pattern grows independently against a read-only
            // view of the arena (each `grow_layer` call owns its scratch
            // arenas, and its inner extension loops nest through the pool);
            // the per-worker output arenas are then span-stitched onto the
            // run's store in pattern order — `absorb_shards` moves the
            // shards' pool segments without copying a row, so the driver-side
            // merge is no longer the round's serial bottleneck.
            let growths: Vec<Option<grow::LayerGrowth>> = patterns
                .par_iter()
                .map(|p| {
                    (!p.exhausted).then(|| {
                        grow::grow_layer(host, &catalog, p, store.view(p.embeddings), config)
                    })
                })
                .collect();
            let mut shards: Vec<EmbeddingStore> = Vec::new();
            let mut variant_lists: Vec<Option<Vec<GrownPattern>>> =
                Vec::with_capacity(growths.len());
            for growth in growths {
                match growth {
                    None => variant_lists.push(None),
                    Some(g) => {
                        shards.push(g.arena);
                        variant_lists.push(Some(g.variants));
                    }
                }
            }
            let bases = store.absorb_shards(shards);
            let mut grown: Vec<GrownPattern> = Vec::new();
            let mut shard_at = 0usize;
            for (p, variants) in patterns.iter().zip(variant_lists) {
                match variants {
                    None => grown.push(p.clone()),
                    Some(variants) => {
                        let base = bases[shard_at];
                        shard_at += 1;
                        grown.extend(variants.into_iter().map(|mut v| {
                            v.embeddings = EmbeddingStore::rebased(v.embeddings, base);
                            v
                        }));
                    }
                }
            }
            let (merged, participating, merge_stats) =
                merge::check_merges(host, &grown, config, &mut store);
            stats.merges += merge_stats.merged_patterns;
            stats.iso_tests_pruned += merge_stats.iso_tests_pruned;
            stats.iso_tests_run += merge_stats.iso_tests_run;
            stats.merge_embeddings_dropped += merge_stats.dropped_embeddings;
            // Mark growth branches that took part in a merge so the Stage II
            // pruning keeps their lineage.
            let participating: FxHashSet<usize> = participating.into_iter().collect();
            for (idx, g) in grown.iter_mut().enumerate() {
                if participating.contains(&idx) {
                    g.merged = true;
                }
            }
            for g in &grown {
                remember(g, &mut pool, &mut pool_index);
            }
            for m in &merged {
                remember(m, &mut pool, &mut pool_index);
            }
            patterns = grown;
            patterns.extend(merged);
            // Keep the working set bounded: prefer merged, then larger patterns.
            patterns.sort_by_key(|p| {
                std::cmp::Reverse((p.merged as usize, p.size(), p.embedding_count(&store)))
            });
            let cap = (2 * stats.seed_count).max(4 * config.k).max(16);
            patterns.truncate(cap);
            maybe_compact_store(&mut store, &mut [&mut patterns, &mut pool]);
            ctx.progress(ProgressEvent::Iteration {
                stage: "identify",
                iteration: iteration as usize,
            });
        }

        // Prune unmerged patterns (Stage II, line 10 of Algorithm 1).
        let mut survivors: Vec<GrownPattern> =
            patterns.iter().filter(|p| p.merged).cloned().collect();
        if survivors.is_empty() && config.keep_unmerged_fallback {
            // Fallback documented in DESIGN.md: keep the largest grown
            // patterns so the miner still returns something useful when no
            // merge happened (e.g. tiny graphs or K patterns with a single
            // seed hit).
            let mut all = patterns.clone();
            all.sort_by_key(|p| std::cmp::Reverse(p.size()));
            survivors = all.into_iter().take(2 * config.k).collect();
        }
        stats.stage_two_time = stage_two_start.elapsed();
        ctx.record_stage("identify", stats.stage_two_time);
        ctx.progress(ProgressEvent::StageFinished { stage: "identify" });

        // ---------------------------------------------------------------
        // Stage III: grow survivors to exhaustion, return the K largest.
        // ---------------------------------------------------------------
        ctx.progress(ProgressEvent::StageStarted { stage: "recover" });
        let stage_three_start = Instant::now();
        let mut rounds = 0;
        loop {
            rounds += 1;
            if rounds > MAX_STAGE_THREE_ROUNDS || ctx.is_cancelled() {
                break;
            }
            let mut changed = false;
            let mut next: Vec<GrownPattern> = Vec::new();
            // Diameter checks and growth are independent per survivor; the
            // pool bookkeeping below stays sequential, in survivor order.
            let grown_per_survivor: Vec<Option<grow::LayerGrowth>> = survivors
                .par_iter()
                .map(|p| {
                    let stop_for_diameter = traversal::diameter(&p.pattern) >= config.d_max;
                    if p.exhausted || stop_for_diameter {
                        None
                    } else {
                        Some(grow::grow_layer(
                            host,
                            &catalog,
                            p,
                            store.view(p.embeddings),
                            config,
                        ))
                    }
                })
                .collect();
            // Span-stitch the survivors' output arenas in survivor order
            // (same zero-copy absorb as Stage II).
            let mut shards: Vec<EmbeddingStore> = Vec::new();
            let mut variant_lists: Vec<Option<Vec<GrownPattern>>> =
                Vec::with_capacity(grown_per_survivor.len());
            for growth in grown_per_survivor {
                match growth {
                    None => variant_lists.push(None),
                    Some(g) => {
                        shards.push(g.arena);
                        variant_lists.push(Some(g.variants));
                    }
                }
            }
            let bases = store.absorb_shards(shards);
            let mut shard_at = 0usize;
            for (p, variants) in survivors.iter().zip(variant_lists) {
                let Some(variants) = variants else {
                    next.push(p.clone());
                    continue;
                };
                let base = bases[shard_at];
                shard_at += 1;
                for mut g in variants {
                    g.embeddings = EmbeddingStore::rebased(g.embeddings, base);
                    if g.size() > p.size() {
                        changed = true;
                    }
                    remember(&g, &mut pool, &mut pool_index);
                    next.push(g);
                }
            }
            next.sort_by_key(|p| std::cmp::Reverse((p.size(), p.embedding_count(&store))));
            next.truncate((4 * config.k).max(16));
            survivors = next;
            maybe_compact_store(&mut store, &mut [&mut survivors, &mut pool]);
            ctx.progress(ProgressEvent::Iteration {
                stage: "recover",
                iteration: rounds - 1,
            });
            if !changed {
                break;
            }
        }
        for p in &survivors {
            remember(p, &mut pool, &mut pool_index);
        }
        stats.stage_three_time = stage_three_start.elapsed();
        ctx.record_stage("recover", stats.stage_three_time);
        ctx.progress(ProgressEvent::StageFinished { stage: "recover" });

        // Rank the pool, deduplicate by isomorphism (already done via the
        // pattern index) and return the K largest frequent patterns.
        ctx.progress(ProgressEvent::StageStarted { stage: "select" });
        let select_start = Instant::now();
        let mut result = MiningResult {
            patterns: Vec::new(),
            stats,
        };
        pool.sort_by_key(|p| std::cmp::Reverse((p.size(), p.embedding_count(&store))));
        // Per-pattern support evaluation is independent, so each block of the
        // pool is evaluated in parallel — but block by block, so the scan
        // stays lazy: once K patterns are accepted the remaining (often much
        // larger) tail of the pool is never evaluated. The pool is
        // isomorphism-deduplicated, so consulting the memoizing oracle from
        // the parallel map stays deterministic (no two entries share a memo
        // key).
        let block_size = (4 * config.k).max(16);
        'select: for block in pool.chunks(block_size) {
            let supports: Vec<usize> = block
                .par_iter()
                .map(|p| oracle.support(&p.pattern, store.view(p.embeddings)))
                .collect();
            for (p, support) in block.iter().zip(supports) {
                if result.patterns.len() >= config.k || ctx.is_cancelled() {
                    break 'select;
                }
                if support < config.support_threshold {
                    continue;
                }
                let (pattern, _) = if config.closure_refinement {
                    closure::close_pattern_rows(
                        host,
                        &p.pattern,
                        store.view(p.embeddings).rows(),
                        config.support_threshold,
                    )
                } else {
                    (p.pattern.clone(), 0)
                };
                // Embeddings materialize out of the arena only here, once per
                // *accepted* pattern — the pool never owns embedding lists.
                let accepted = mined_pattern(
                    pattern,
                    support,
                    store.to_embeddings(p.embeddings),
                    p.merged,
                );
                // Stream the accepted pattern before final ranking: consumers
                // see patterns in acceptance (pool) order, as they are found.
                // (The clones happen only when a sink is installed.)
                ctx.emit_with(|| StreamedPattern {
                    pattern: accepted.pattern.clone(),
                    support: accepted.support,
                    embeddings: accepted.embeddings.clone(),
                });
                result.patterns.push(accepted);
            }
        }
        result.sort_patterns();
        ctx.record_stage("select", select_start.elapsed());
        ctx.progress(ProgressEvent::StageFinished { stage: "select" });
        if let Some(oracle_stats) = ctx.oracle_stats() {
            result.stats.oracle_hits = oracle_stats.hits;
            result.stats.oracle_misses = oracle_stats.misses;
        }
        result.stats.cancelled = ctx.was_cancelled();
        result.stats.total_time = total_start.elapsed();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spidermine_graph::generate;
    use spidermine_graph::label::Label;

    fn planted_graph(
        copies: usize,
        pattern_vertices: usize,
        seed: u64,
    ) -> (LabeledGraph, LabeledGraph) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut background = generate::erdos_renyi_average_degree(&mut rng, 300, 2.0, 40);
        let pattern = generate::random_connected_pattern(&mut rng, pattern_vertices, 40, 3);
        generate::inject_pattern(&mut rng, &mut background, &pattern, copies, 2);
        (background, pattern)
    }

    fn miner(k: usize) -> SpiderMiner {
        SpiderMiner::new(SpiderMineConfig {
            support_threshold: 2,
            k,
            d_max: 8,
            rng_seed: 17,
            ..SpiderMineConfig::default()
        })
    }

    #[test]
    fn recovers_a_planted_large_pattern() {
        let (host, pattern) = planted_graph(3, 12, 11);
        let result = miner(5).mine(&host);
        assert!(!result.patterns.is_empty());
        // The largest mined pattern should be comparable in size to the
        // planted one (12 vertices, ~14 edges); background noise patterns with
        // support >= 2 are much smaller.
        assert!(
            result.largest_vertices() >= pattern.vertex_count() / 2,
            "largest mined pattern has {} vertices, planted {}",
            result.largest_vertices(),
            pattern.vertex_count()
        );
        // All returned patterns are frequent.
        for p in &result.patterns {
            assert!(p.support >= 2);
        }
        assert!(result.stats.spider_count > 0);
        assert!(result.stats.seed_count >= 2);
    }

    #[test]
    fn patterns_are_sorted_by_decreasing_size() {
        let (host, _) = planted_graph(2, 10, 23);
        let result = miner(8).mine(&host);
        let sizes: Vec<usize> = result.patterns.iter().map(|p| p.size_edges()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sizes, sorted);
        assert!(result.patterns.len() <= 8);
    }

    #[test]
    fn returned_embeddings_are_valid() {
        let (host, _) = planted_graph(2, 8, 5);
        let result = miner(4).mine(&host);
        for p in &result.patterns {
            let ep = spidermine_mining::embedding::EmbeddedPattern::new(
                p.pattern.clone(),
                p.embeddings.clone(),
            );
            assert!(
                ep.validate_against(&host),
                "invalid embeddings for {:?}",
                p.pattern
            );
        }
    }

    #[test]
    fn empty_graph_returns_empty_result() {
        let result = miner(3).mine(&LabeledGraph::new());
        assert!(result.patterns.is_empty());
        assert_eq!(result.stats.spider_count, 0);
    }

    #[test]
    fn k_limits_the_number_of_returned_patterns() {
        let (host, _) = planted_graph(2, 8, 31);
        let result = miner(2).mine(&host);
        assert!(result.patterns.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "invalid SpiderMine configuration")]
    fn invalid_config_panics() {
        let _ = SpiderMiner::new(SpiderMineConfig {
            k: 0,
            ..SpiderMineConfig::default()
        });
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (host, _) = planted_graph(2, 9, 41);
        let a = miner(4).mine(&host);
        let b = miner(4).mine(&host);
        let sizes_a: Vec<_> = a
            .patterns
            .iter()
            .map(|p| (p.size_edges(), p.support))
            .collect();
        let sizes_b: Vec<_> = b
            .patterns
            .iter()
            .map(|p| (p.size_edges(), p.support))
            .collect();
        assert_eq!(sizes_a, sizes_b);
    }

    #[test]
    fn mine_with_streams_every_accepted_pattern_and_times_stages() {
        use std::sync::{Arc, Mutex};
        let (host, _) = planted_graph(2, 9, 41);
        let streamed: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = streamed.clone();
        let mut ctx = MineContext::new().on_pattern(move |p| {
            sink.lock()
                .unwrap()
                .push((p.pattern.edge_count(), p.support));
        });
        let result = miner(4).mine_with(&host, &mut ctx);
        let mut streamed: Vec<(usize, usize)> = streamed.lock().unwrap().clone();
        let mut returned: Vec<(usize, usize)> = result
            .patterns
            .iter()
            .map(|p| (p.size_edges(), p.support))
            .collect();
        // Streaming happens in acceptance order, the result is re-sorted:
        // compare as multisets.
        streamed.sort_unstable();
        returned.sort_unstable();
        assert_eq!(streamed, returned);
        let stages: Vec<&str> = ctx.timings().iter().map(|t| t.stage).collect();
        assert_eq!(stages, vec!["spiders", "identify", "recover", "select"]);
        assert!(!result.stats.cancelled);
    }

    #[test]
    fn cancellation_mid_stage_two_returns_partial_results() {
        use spidermine_mining::context::ProgressEvent;
        let (host, _) = planted_graph(3, 12, 11);
        let mut ctx = MineContext::new();
        let token = ctx.cancel_token();
        ctx = ctx.on_progress(move |e| {
            // Fire as soon as the first identification iteration completes:
            // the remaining Stage II iterations and all of Stage III are
            // skipped, but selection still runs over the partial pool.
            if matches!(
                e,
                ProgressEvent::Iteration {
                    stage: "identify",
                    iteration: 0
                }
            ) {
                token.fire();
            }
        });
        let result = miner(5).mine_with(&host, &mut ctx);
        assert!(result.stats.cancelled);
        assert!(ctx.was_cancelled());
        // The partial result is still well-formed (possibly empty patterns,
        // but valid ones when present).
        for p in &result.patterns {
            assert!(p.support >= 2);
        }
        // Stage III was skipped entirely, so its recorded time is near zero
        // relative to a full run; more importantly, all stages were recorded.
        let stages: Vec<&str> = ctx.timings().iter().map(|t| t.stage).collect();
        assert_eq!(stages, vec!["spiders", "identify", "recover", "select"]);
    }

    #[test]
    fn tiny_graph_without_frequent_patterns() {
        let host = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let result = miner(3).mine(&host);
        // A single edge with unique labels has no pattern of support >= 2.
        assert!(result.patterns.is_empty());
    }
}
