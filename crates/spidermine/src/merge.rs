//! CheckMerge: merging grown patterns whose embeddings overlap.
//!
//! Stage II's key observation (Section 4.1): if two seed spiders landed inside
//! the same large pattern, their grown patterns must eventually overlap on
//! some embeddings, and the merged pattern is a subgraph of that large
//! pattern. Merging is what separates "on the way to a large pattern" from
//! "growing toward a small one", so only merged patterns survive the Stage II
//! pruning.
//!
//! This implementation detects overlap through the host vertices covered by
//! each pattern's embeddings (read straight off the flat rows of the shared
//! [`EmbeddingStore`]), merges every overlapping embedding pair into the
//! induced union subgraph, groups the unions by isomorphism (using the
//! spider-set representation to prune isomorphism tests), and keeps each
//! group that is frequent. The expensive per-pair work (coverage sets,
//! overlap detection, union construction, spider-set hashing) runs in
//! parallel over blocks of candidate pairs; only the order-sensitive
//! grouping walk stays on the driver, consuming the scans in pair order so
//! the round is byte-identical to a sequential one. Group support is deliberately computed **raw**
//! from the round's witness rows, not through the memoizing support oracle:
//! it is a per-round quantity (the same union class legitimately collects
//! more witnesses in later Stage II rounds as patterns grow toward each
//! other), so a memo keyed on the pattern class would freeze the first
//! round's count and could reject every later merge of that class.

use crate::config::SpiderMineConfig;
use crate::grow::GrownPattern;
use crate::spider_set::{IsoCheck, PrunedIsoOracle, SpiderSet};
use rayon::prelude::*;
use rustc_hash::{FxHashMap, FxHashSet};
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::iso;
use spidermine_graph::subgraph;
use spidermine_mining::embedding::Embedding;
use spidermine_mining::eval::{EmbeddingStore, FlatEmbeddings};

/// Upper bound on overlapping embedding pairs examined per pattern pair.
const MAX_PAIRS_PER_PATTERN_PAIR: usize = 32;

/// Upper bound on overlapping embedding pairs examined per merge round.
const MAX_PAIRS_PER_ROUND: usize = 4096;

/// Candidate-pair batch scanned in parallel before the sequential grouping
/// walk consumes it (bounds wasted union construction past the round cap to
/// one batch).
const PAIR_SCAN_BLOCK: usize = 64;

/// Statistics from one merge round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Pattern pairs whose covered vertex sets intersected.
    pub candidate_pairs: usize,
    /// Overlapping embedding pairs examined.
    pub embedding_pairs: usize,
    /// Merged patterns that passed the support threshold.
    pub merged_patterns: usize,
    /// Isomorphism tests skipped thanks to spider-set pruning.
    pub iso_tests_pruned: usize,
    /// Full VF2 isomorphism tests run.
    pub iso_tests_run: usize,
    /// Union occurrences confirmed isomorphic to an existing group whose
    /// representative embedding could not be re-fetched, and which were
    /// therefore dropped from the group's support set. Structurally this
    /// should be impossible (an isomorphic pattern always embeds into the
    /// union); a non-zero count flags a matcher/oracle disagreement instead
    /// of hiding it.
    pub dropped_embeddings: usize,
}

/// Detects and performs merges among `patterns`, whose embedding sets live in
/// `store`; merged groups are interned into `store` too.
///
/// Returns the merged patterns (marked `merged = true`) plus statistics. The
/// indices of source patterns that participated in at least one successful
/// merge are also returned so the caller can mark them.
pub fn check_merges(
    host: &LabeledGraph,
    patterns: &[GrownPattern],
    config: &SpiderMineConfig,
    store: &mut EmbeddingStore,
) -> (Vec<GrownPattern>, Vec<usize>, MergeStats) {
    let mut stats = MergeStats::default();
    let sigma = config.support_threshold;
    // Host vertex -> patterns covering it, to find candidate pairs cheaply.
    // Coverage sets are independent per pattern: build them in parallel over
    // a read-only view of the store.
    let store_ref: &EmbeddingStore = store;
    let covered: Vec<FxHashSet<VertexId>> = patterns
        .par_iter()
        .map(|p| {
            store_ref
                .view(p.embeddings)
                .flat()
                .iter()
                .copied()
                .collect::<FxHashSet<VertexId>>()
        })
        .collect();
    let mut candidate_pairs: FxHashSet<(usize, usize)> = FxHashSet::default();
    {
        let mut by_vertex: FxHashMap<VertexId, Vec<usize>> = FxHashMap::default();
        for (i, set) in covered.iter().enumerate() {
            for &v in set {
                by_vertex.entry(v).or_default().push(i);
            }
        }
        for owners in by_vertex.values() {
            for a in 0..owners.len() {
                for b in (a + 1)..owners.len() {
                    let (i, j) = (owners[a].min(owners[b]), owners[a].max(owners[b]));
                    if i != j {
                        candidate_pairs.insert((i, j));
                    }
                }
            }
        }
    }
    stats.candidate_pairs = candidate_pairs.len();

    // Group merged union graphs by isomorphism class. Group embeddings
    // accumulate in owned flat buffers and are interned at the end, once the
    // store's views are no longer being read.
    struct MergedGroup {
        pattern: LabeledGraph,
        spider_set: SpiderSet,
        rows: FlatEmbeddings,
        sources: FxHashSet<usize>,
    }
    /// One union occurrence produced by the parallel pair scan: the induced
    /// union subgraph, its host origin row, and its spider set (the cheap
    /// isomorphism-pruning signature, computed off the driver thread).
    struct UnionOcc {
        graph: LabeledGraph,
        origin: Embedding,
        spider_set: SpiderSet,
    }
    let mut groups: Vec<MergedGroup> = Vec::new();
    let mut iso_oracle = PrunedIsoOracle::new();

    let mut ordered_pairs: Vec<(usize, usize)> = candidate_pairs.into_iter().collect();
    ordered_pairs.sort_unstable();
    // The expensive half of a merge round — overlap detection, union-subgraph
    // construction, spider-set hashing — is independent per candidate pair
    // (each pair examines a deterministic set of up to
    // `MAX_PAIRS_PER_PATTERN_PAIR` embedding pairs, regardless of global
    // state). Scan blocks of pairs in parallel, then walk the scans in pair
    // order on the driver: the grouping, the round cap, and all statistics
    // behave exactly as in the sequential loop.
    'pairs: for block in ordered_pairs.chunks(PAIR_SCAN_BLOCK) {
        if stats.embedding_pairs >= MAX_PAIRS_PER_ROUND {
            break;
        }
        let scans: Vec<Vec<UnionOcc>> = block
            .par_iter()
            .map(|&(i, j)| {
                let rows_i = store_ref.view(patterns[i].embeddings);
                let rows_j = store_ref.view(patterns[j].embeddings);
                let mut unions: Vec<UnionOcc> = Vec::new();
                for e1 in rows_i.rows() {
                    if unions.len() >= MAX_PAIRS_PER_PATTERN_PAIR {
                        break;
                    }
                    let set1: FxHashSet<VertexId> = e1.iter().copied().collect();
                    for e2 in rows_j.rows() {
                        if unions.len() >= MAX_PAIRS_PER_PATTERN_PAIR {
                            break;
                        }
                        if !e2.iter().any(|v| set1.contains(v)) {
                            continue;
                        }
                        // Union of the two embeddings' host edges.
                        let mut host_edges: Vec<(VertexId, VertexId)> = Vec::new();
                        for (u, v) in patterns[i].pattern.edges() {
                            host_edges.push((e1[u.index()], e1[v.index()]));
                        }
                        for (u, v) in patterns[j].pattern.edges() {
                            host_edges.push((e2[u.index()], e2[v.index()]));
                        }
                        let merged = subgraph::edge_subgraph(host, &host_edges);
                        let spider_set = SpiderSet::of(&merged.graph, config.r.max(1));
                        unions.push(UnionOcc {
                            graph: merged.graph,
                            origin: merged.origin,
                            spider_set,
                        });
                    }
                }
                unions
            })
            .collect();
        for (&(i, j), unions) in block.iter().zip(scans) {
            if stats.embedding_pairs >= MAX_PAIRS_PER_ROUND {
                break 'pairs;
            }
            stats.embedding_pairs += unions.len();
            for occ in unions {
                // Find (or create) the isomorphism group.
                let mut placed = false;
                for group in groups.iter_mut() {
                    match iso_oracle.check(
                        &group.pattern,
                        &group.spider_set,
                        &occ.graph,
                        &occ.spider_set,
                    ) {
                        IsoCheck::ConfirmedIsomorphic => {
                            // Map the representative onto this union occurrence.
                            if let Some(m) =
                                iso::find_embeddings(&group.pattern, &occ.graph, 1).pop()
                            {
                                let embedding: Embedding =
                                    m.iter().map(|&x| occ.origin[x.index()]).collect();
                                group.rows.push_row(&embedding);
                            } else {
                                // The confirmed-isomorphic representative must
                                // embed; if the matcher disagrees, count the
                                // dropped occurrence instead of losing it
                                // silently (surfaced in `MiningStats` and
                                // `MineOutcome`).
                                stats.dropped_embeddings += 1;
                            }
                            group.sources.insert(i);
                            group.sources.insert(j);
                            placed = true;
                            break;
                        }
                        _ => continue,
                    }
                }
                if !placed {
                    let mut rows = FlatEmbeddings::new(occ.graph.vertex_count());
                    rows.push_row(&occ.origin);
                    // Union occurrences are witnesses, not the pattern's
                    // complete embedding set.
                    rows.mark_truncated();
                    let mut sources = FxHashSet::default();
                    sources.insert(i);
                    sources.insert(j);
                    groups.push(MergedGroup {
                        pattern: occ.graph,
                        spider_set: occ.spider_set,
                        rows,
                        sources,
                    });
                }
            }
        }
    }
    stats.iso_tests_pruned = iso_oracle.pruned;
    stats.iso_tests_run = iso_oracle.full_tests;

    let mut merged_out = Vec::new();
    let mut participating: FxHashSet<usize> = FxHashSet::default();
    for group in groups {
        let support = group.rows.view().support(config.support_measure);
        if support < sigma {
            continue;
        }
        stats.merged_patterns += 1;
        participating.extend(group.sources.iter().copied());
        let mut seed_ids: Vec<_> = group
            .sources
            .iter()
            .flat_map(|&s| patterns[s].seed_ids.iter().copied())
            .collect();
        seed_ids.sort_unstable();
        seed_ids.dedup();
        let boundary: Vec<VertexId> = group.pattern.vertices().collect();
        merged_out.push(GrownPattern {
            embeddings: store.insert_scratch(&group.rows),
            pattern: group.pattern,
            boundary,
            merged: true,
            seed_ids,
            exhausted: false,
        });
    }
    let mut participating: Vec<usize> = participating.into_iter().collect();
    participating.sort_unstable();
    (merged_out, participating, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::label::Label;
    use spidermine_mining::spider::{SpiderCatalog, SpiderMiningConfig};

    /// Host with two copies of the 5-path 0-1-2-3-4 (labels 0..5).
    fn host() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[
                Label(0),
                Label(1),
                Label(2),
                Label(3),
                Label(4),
                Label(0),
                Label(1),
                Label(2),
                Label(3),
                Label(4),
            ],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
            ],
        )
    }

    fn config() -> SpiderMineConfig {
        SpiderMineConfig {
            support_threshold: 2,
            ..SpiderMineConfig::default()
        }
    }

    fn run_merges(
        host: &LabeledGraph,
        patterns: &[GrownPattern],
        store: &mut EmbeddingStore,
    ) -> (Vec<GrownPattern>, Vec<usize>, MergeStats) {
        check_merges(host, patterns, &config(), store)
    }

    fn grown_from_spider(
        host: &LabeledGraph,
        head: Label,
        store: &mut EmbeddingStore,
    ) -> GrownPattern {
        let catalog = SpiderCatalog::mine(
            host,
            &SpiderMiningConfig {
                support_threshold: 2,
                ..SpiderMiningConfig::default()
            },
        );
        let spider = catalog
            .spiders()
            .filter(|s| s.head_label == head)
            .max_by_key(|s| s.size())
            .expect("spider with requested head");
        crate::grow::seed_pattern(host, spider, &config(), store)
    }

    #[test]
    fn overlapping_patterns_merge_into_a_larger_one() {
        let host = host();
        let mut store = EmbeddingStore::new();
        // Spider at label 1 covers {0,1,2}; spider at label 2 covers {1,2,3}:
        // they overlap, and their union is the 4-path 0-1-2-3 in both copies.
        let p1 = grown_from_spider(&host, Label(1), &mut store);
        let p2 = grown_from_spider(&host, Label(2), &mut store);
        let (merged, participating, stats) = run_merges(&host, &[p1, p2], &mut store);
        assert_eq!(stats.candidate_pairs, 1);
        assert!(stats.embedding_pairs >= 2);
        assert_eq!(stats.dropped_embeddings, 0);
        assert_eq!(merged.len(), 1, "one isomorphism class of unions");
        let m = &merged[0];
        assert!(m.merged);
        assert_eq!(m.pattern.vertex_count(), 4);
        assert!(m.support(&config(), &store) >= 2);
        assert_eq!(participating, vec![0, 1]);
        // Merged embeddings are valid.
        let ep = spidermine_mining::embedding::EmbeddedPattern::new(
            m.pattern.clone(),
            store.to_embeddings(m.embeddings),
        );
        assert!(ep.validate_against(&host));
    }

    #[test]
    fn disjoint_patterns_do_not_merge() {
        let host = host();
        let mut store = EmbeddingStore::new();
        let p1 = grown_from_spider(&host, Label(1), &mut store);
        let p2 = grown_from_spider(&host, Label(4), &mut store);
        // Label-1 spider covers {0,1,2}; label-4 spider covers {3,4}: they
        // share vertex 3? No: label-4 head has a single label-3 leaf, so it
        // covers {3,4}; label-1 spider covers {0,1,2} — disjoint.
        let (merged, participating, stats) = run_merges(&host, &[p1, p2], &mut store);
        assert!(merged.is_empty());
        assert!(participating.is_empty());
        assert_eq!(stats.merged_patterns, 0);
    }

    #[test]
    fn infrequent_merges_are_rejected() {
        // The two hand-built patterns overlap exactly once, so the merged
        // union has support 1 and sigma = 2 rejects it.
        let single = LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(0), Label(1)],
            &[(0, 1), (1, 2), (3, 4)],
        );
        let mut store = EmbeddingStore::new();
        let edge01 = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let edge12 = LabeledGraph::from_parts(&[Label(1), Label(2)], &[(0, 1)]);
        let p1 = GrownPattern {
            embeddings: store.insert_embeddings(
                2,
                &[
                    vec![VertexId(0), VertexId(1)],
                    vec![VertexId(3), VertexId(4)],
                ],
                true,
            ),
            boundary: edge01.vertices().collect(),
            pattern: edge01,
            merged: false,
            seed_ids: vec![0],
            exhausted: false,
        };
        let p2 = GrownPattern {
            embeddings: store.insert_embeddings(2, &[vec![VertexId(1), VertexId(2)]], true),
            boundary: edge12.vertices().collect(),
            pattern: edge12,
            merged: false,
            seed_ids: vec![1],
            exhausted: false,
        };
        let (merged, _, stats) = run_merges(&single, &[p1, p2], &mut store);
        assert!(merged.is_empty());
        assert!(stats.embedding_pairs >= 1, "the overlap was examined");
    }

    #[test]
    fn merge_of_identical_patterns_is_not_produced_from_self() {
        let host = host();
        let mut store = EmbeddingStore::new();
        let p1 = grown_from_spider(&host, Label(1), &mut store);
        let (merged, _, stats) = run_merges(&host, &[p1], &mut store);
        assert!(
            merged.is_empty(),
            "a single pattern has no one to merge with"
        );
        assert_eq!(stats.candidate_pairs, 0);
    }
}
