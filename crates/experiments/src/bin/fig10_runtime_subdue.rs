//! Figure 10: runtime of SpiderMine vs SUBDUE as the graph grows
//! (Erdős–Rényi, average degree 3, 100 labels, σ = 2, K = 10, Dmax = 10).
//! The paper sweeps |V| from 500 to 10 500; the default here stops earlier and
//! `--full` runs the whole sweep.

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_baselines::subdue;
use spidermine_datasets::synthetic::scalability_graph;
use spidermine_experiments::{format_runtime, is_full_run, EXPERIMENT_SEED};
use std::time::Duration;

fn main() {
    let sizes: Vec<usize> = if is_full_run() {
        (1..=11).map(|i| 500 + (i - 1) * 1000).collect()
    } else {
        vec![500, 1500, 2500, 3500]
    };
    let budget = if is_full_run() {
        Duration::from_secs(1800)
    } else {
        Duration::from_secs(60)
    };
    println!("Figure 10: runtime vs graph size (ER, d=3, f=100, sigma=2, K=10, Dmax=10)");
    println!("{:<10} {:>14} {:>14}", "|V|", "SpiderMine", "SUBDUE");
    for &n in &sizes {
        let (graph, _) = scalability_graph(n, EXPERIMENT_SEED + n as u64);

        let start = std::time::Instant::now();
        let _ = SpiderMiner::new(SpiderMineConfig {
            support_threshold: 2,
            k: 10,
            d_max: 10,
            rng_seed: EXPERIMENT_SEED,
            ..SpiderMineConfig::default()
        })
        .mine(&graph);
        let sm_time = Some(start.elapsed());

        let subdue_result = subdue::run(
            &graph,
            &subdue::SubdueConfig {
                time_budget: budget,
                ..subdue::SubdueConfig::default()
            },
        );
        let subdue_time = if subdue_result.timed_out {
            None
        } else {
            Some(subdue_result.runtime)
        };
        println!(
            "{:<10} {:>14} {:>14}",
            n,
            format_runtime(sm_time),
            format_runtime(subdue_time)
        );
    }
}
