//! Figure 16: runtime comparison of SpiderMine, SUBDUE, SEuS and MoSS on
//! GID 1–5. Runs that exceed the per-miner budget are reported as "-",
//! matching the paper's convention (the paper aborted runs after 10 hours;
//! the default budget here is much smaller — pass `--full` for a longer one).

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_baselines::{moss, seus, subdue};
use spidermine_datasets::synthetic::{GidConfig, SyntheticDataset};
use spidermine_experiments::{format_runtime, is_full_run, EXPERIMENT_SEED};
use std::time::Duration;

fn main() {
    let budget = if is_full_run() {
        Duration::from_secs(600)
    } else {
        Duration::from_secs(20)
    };
    println!(
        "Figure 16: runtime (seconds) per miner on GID 1-5 ('-' = exceeded {budget:?} budget)"
    );
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "GID", "SpiderMine", "SUBDUE", "SEuS", "MoSS"
    );
    for gid in 1..=5u32 {
        let dataset =
            SyntheticDataset::build(GidConfig::table1(gid), EXPERIMENT_SEED + u64::from(gid));

        let sm_start = std::time::Instant::now();
        let _ = SpiderMiner::new(SpiderMineConfig {
            support_threshold: 2,
            k: 10,
            d_max: 4,
            rng_seed: EXPERIMENT_SEED,
            ..SpiderMineConfig::default()
        })
        .mine(&dataset.graph);
        let sm_time = Some(sm_start.elapsed());

        let subdue_result = subdue::run(
            &dataset.graph,
            &subdue::SubdueConfig {
                time_budget: budget,
                ..subdue::SubdueConfig::default()
            },
        );
        let subdue_time = if subdue_result.timed_out {
            None
        } else {
            Some(subdue_result.runtime)
        };

        let seus_result = seus::run(
            &dataset.graph,
            &seus::SeusConfig {
                support_threshold: 2,
                time_budget: budget,
                ..seus::SeusConfig::default()
            },
        );
        let seus_time = if seus_result.timed_out {
            None
        } else {
            Some(seus_result.runtime)
        };

        let moss_result = moss::run(
            &dataset.graph,
            &moss::MossConfig {
                support_threshold: 2,
                time_budget: budget,
                ..moss::MossConfig::default()
            },
        );
        let moss_time = if moss_result.completed {
            Some(moss_result.runtime)
        } else {
            None
        };

        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>12}",
            gid,
            format_runtime(sm_time),
            format_runtime(subdue_time),
            format_runtime(seus_time),
            format_runtime(moss_time),
        );
    }
}
