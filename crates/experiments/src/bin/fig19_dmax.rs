//! Figure 19: effect of the diameter bound Dmax. Using the GID 7 setting, the
//! top-5 largest patterns are reported for d = Dmax/2 ∈ {1, 2, 3, 4}. The
//! paper's observation: results are stable unless Dmax is too small for the
//! seed spiders to grow together and merge.

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_datasets::synthetic::{GidConfig, SyntheticDataset};
use spidermine_experiments::{scale_from_args, EXPERIMENT_SEED};

fn main() {
    let scale = scale_from_args(0.15);
    let config = GidConfig::table3(7, scale);
    let dataset = SyntheticDataset::build(config.clone(), EXPERIMENT_SEED + 7);
    println!(
        "Figure 19: top-5 largest patterns (|V|) for varied Dmax on the GID 7 setting (scale {scale})"
    );
    println!("{:<12} {:>30}", "d = Dmax/2", "top-5 sizes |V|");
    for d in 1..=4u32 {
        let result = SpiderMiner::new(SpiderMineConfig {
            support_threshold: config.large_support.min(10),
            k: 5,
            d_max: 2 * d,
            rng_seed: EXPERIMENT_SEED,
            ..SpiderMineConfig::default()
        })
        .mine(&dataset.graph);
        let sizes: Vec<String> = result
            .patterns
            .iter()
            .take(5)
            .map(|p| p.size_vertices().to_string())
            .collect();
        println!("{:<12} {:>30}", d, sizes.join(","));
    }
}
