//! Figure 20: DBLP co-authorship network — pattern-size distribution of
//! SpiderMine vs SUBDUE (minimum support 4, K = 20 in the paper). Runs on the
//! synthetic DBLP twin described in DESIGN.md; pass `--full` for the
//! paper-sized graph (≈6.5k authors).

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_baselines::subdue;
use spidermine_datasets::dblp::{self, DblpConfig};
use spidermine_experiments::{header, print_histogram, scale_from_args, EXPERIMENT_SEED};
use std::time::Duration;

fn main() {
    let scale = scale_from_args(0.1);
    let dataset = dblp::generate(&DblpConfig::scaled(scale), EXPERIMENT_SEED);
    header(&format!(
        "Figure 20: DBLP-like co-authorship graph (|V|={}, |E|={}, 4 seniority labels, scale {scale})",
        dataset.graph.vertex_count(),
        dataset.graph.edge_count()
    ));
    let spidermine = SpiderMiner::new(SpiderMineConfig {
        support_threshold: 4,
        k: 20,
        d_max: 8,
        // Four labels make embedding lists enormous; cap the per-spider leaf
        // count to keep Stage I tractable (see EXPERIMENTS.md).
        max_spider_leaves: 5,
        rng_seed: EXPERIMENT_SEED,
        ..SpiderMineConfig::default()
    })
    .mine(&dataset.graph);
    print_histogram("SpiderMine", &spidermine.size_histogram(true));

    let subdue_result = subdue::run(
        &dataset.graph,
        &subdue::SubdueConfig {
            report: 20,
            time_budget: Duration::from_secs(60),
            ..subdue::SubdueConfig::default()
        },
    );
    print_histogram("SUBDUE", &subdue_result.size_histogram_vertices());
    println!(
        "  summary      SpiderMine largest |V|={}, SUBDUE largest |V|={} (paper: 25 vs <=16)",
        spidermine.largest_vertices(),
        subdue_result
            .patterns
            .iter()
            .map(|p| p.pattern.vertex_count())
            .max()
            .unwrap_or(0)
    );
}
