//! Figure 9: runtime of SpiderMine vs the MoSS-style complete miner as the
//! graph grows (Erdős–Rényi, average degree 2, 70 labels — the low-degree
//! setting the paper uses so that MoSS can finish at all).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_baselines::moss;
use spidermine_experiments::{format_runtime, is_full_run, EXPERIMENT_SEED};
use spidermine_graph::generate;
use std::time::Duration;

fn main() {
    let sizes: &[usize] = &[100, 200, 300, 400, 500];
    let budget = if is_full_run() {
        Duration::from_secs(300)
    } else {
        Duration::from_secs(30)
    };
    println!("Figure 9: runtime vs graph size (ER, d=2, f=70, sigma=2)");
    println!("{:<10} {:>14} {:>14}", "|V|", "SpiderMine", "MoSS");
    for &n in sizes {
        let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED + n as u64);
        let graph = generate::erdos_renyi_average_degree(&mut rng, n, 2.0, 70);

        let start = std::time::Instant::now();
        let _ = SpiderMiner::new(SpiderMineConfig {
            support_threshold: 2,
            k: 10,
            d_max: 4,
            rng_seed: EXPERIMENT_SEED,
            ..SpiderMineConfig::default()
        })
        .mine(&graph);
        let sm_time = Some(start.elapsed());

        let moss_result = moss::run(
            &graph,
            &moss::MossConfig {
                support_threshold: 2,
                time_budget: budget,
                ..moss::MossConfig::default()
            },
        );
        let moss_time = if moss_result.completed {
            Some(moss_result.runtime)
        } else {
            None
        };
        println!(
            "{:<10} {:>14} {:>14}",
            n,
            format_runtime(sm_time),
            format_runtime(moss_time)
        );
    }
}
