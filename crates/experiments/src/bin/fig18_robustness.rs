//! Figure 18 / Table 3: robustness against varied pattern distributions.
//! GID 6–10 increase the number and support of small distractor patterns; the
//! top-5 largest patterns returned by SpiderMine should stay essentially the
//! same (the five injected 50-vertex patterns). Sizes are reported in edges,
//! as in the paper's Figure 18.

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_datasets::synthetic::{GidConfig, SyntheticDataset};
use spidermine_experiments::{scale_from_args, EXPERIMENT_SEED};

fn main() {
    let scale = scale_from_args(0.15);
    println!("Figure 18: top-5 largest patterns (|E|) per GID 6-10 (Dmax=6, sigma=10, K=5, scale {scale})");
    println!(
        "{:<8} {:>30} {:>24}",
        "GID", "top-5 sizes |E|", "injected pattern |E|"
    );
    for gid in 6..=10u32 {
        let config = GidConfig::table3(gid, scale);
        let dataset = SyntheticDataset::build(config.clone(), EXPERIMENT_SEED + u64::from(gid));
        let result = SpiderMiner::new(SpiderMineConfig {
            support_threshold: config.large_support.min(10),
            k: 5,
            d_max: 6,
            rng_seed: EXPERIMENT_SEED,
            ..SpiderMineConfig::default()
        })
        .mine(&dataset.graph);
        let sizes: Vec<String> = result
            .patterns
            .iter()
            .take(5)
            .map(|p| p.size_edges().to_string())
            .collect();
        let injected: Vec<String> = dataset
            .large_patterns
            .iter()
            .map(|p| p.edge_count().to_string())
            .collect();
        println!(
            "{:<8} {:>30} {:>24}",
            gid,
            sizes.join(","),
            injected.join(",")
        );
    }
}
