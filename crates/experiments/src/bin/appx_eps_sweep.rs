//! Appendix C.1(4): effect of the error bound ε. Smaller ε means more seed
//! spiders (larger M from Lemma 2) and therefore more growth work. The paper
//! reports runtimes on the Jeti data at ε = 0.45 / 0.25 / 0.05 with minimum
//! support 10; this binary runs the same sweep on the Jeti-like twin.

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_datasets::jeti::{self, JetiConfig};
use spidermine_experiments::EXPERIMENT_SEED;
use spidermine_mining::support::SupportMeasure;

fn main() {
    let dataset = jeti::generate(&JetiConfig::default(), EXPERIMENT_SEED);
    println!(
        "Appendix epsilon sweep on the Jeti-like call graph (|V|={}, |E|={}, sigma=10)",
        dataset.graph.vertex_count(),
        dataset.graph.edge_count()
    );
    println!(
        "{:<10} {:>10} {:>14} {:>18}",
        "epsilon", "seeds M", "runtime", "largest |V| found"
    );
    for &epsilon in &[0.45f64, 0.25, 0.05] {
        let start = std::time::Instant::now();
        let result = SpiderMiner::new(SpiderMineConfig {
            support_threshold: 10,
            k: 10,
            d_max: 8,
            epsilon,
            support_measure: SupportMeasure::MinimumImage,
            rng_seed: EXPERIMENT_SEED,
            ..SpiderMineConfig::default()
        })
        .mine(&dataset.graph);
        let elapsed = start.elapsed();
        println!(
            "{:<10} {:>10} {:>13.3}s {:>18}",
            epsilon,
            result.stats.seed_count,
            elapsed.as_secs_f64(),
            result.largest_vertices()
        );
    }
}
