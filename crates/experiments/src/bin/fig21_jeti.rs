//! Figure 21: Jeti call graph — pattern-size distribution of SpiderMine vs
//! SUBDUE (minimum support 10 in the paper; MoSS and SEuS did not finish).
//! Runs on the Jeti-like synthetic twin described in DESIGN.md.

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_baselines::subdue;
use spidermine_datasets::jeti::{self, JetiConfig};
use spidermine_experiments::{header, print_histogram, EXPERIMENT_SEED};
use std::time::Duration;

fn main() {
    let dataset = jeti::generate(&JetiConfig::default(), EXPERIMENT_SEED);
    header(&format!(
        "Figure 21: Jeti-like call graph (|V|={}, |E|={}, {} class labels)",
        dataset.graph.vertex_count(),
        dataset.graph.edge_count(),
        dataset.graph.distinct_label_count()
    ));
    let spidermine = SpiderMiner::new(SpiderMineConfig {
        support_threshold: 10,
        k: 10,
        d_max: 8,
        rng_seed: EXPERIMENT_SEED,
        ..SpiderMineConfig::default()
    })
    .mine(&dataset.graph);
    print_histogram("SpiderMine", &spidermine.size_histogram(true));

    let subdue_result = subdue::run(
        &dataset.graph,
        &subdue::SubdueConfig {
            report: 10,
            min_instances: 10,
            time_budget: Duration::from_secs(60),
            ..subdue::SubdueConfig::default()
        },
    );
    print_histogram("SUBDUE", &subdue_result.size_histogram_vertices());
    println!(
        "  summary      SpiderMine largest |V|={}, SUBDUE largest |V|={} (paper: ~32 vs ~4)",
        spidermine.largest_vertices(),
        subdue_result
            .patterns
            .iter()
            .map(|p| p.pattern.vertex_count())
            .max()
            .unwrap_or(0)
    );
    println!(
        "  planted backbones: {} occurrences each of a {}-method pattern",
        dataset.backbones.len(),
        dataset
            .backbones
            .first()
            .map(|b| b.vertex_count())
            .unwrap_or(0)
    );
}
