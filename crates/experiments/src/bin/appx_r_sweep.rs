//! Appendix C.1(3): effect of the spider radius r on Stage I (spider mining).
//! The paper reports, on a 600-edge, 30-label graph: 610 ms at r = 1, 2.7 s at
//! r = 2, 87 s at r = 3 and out-of-memory at r = 4 — i.e. exponential growth
//! in r. This binary reproduces the sweep with the tree-shaped r-spider miner.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_experiments::EXPERIMENT_SEED;
use spidermine_graph::generate;
use spidermine_mining::rspider::mine_r_spiders;

fn main() {
    // A graph of roughly 600 edges with 30 labels, as in the appendix.
    let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED);
    let graph = generate::erdos_renyi_average_degree(&mut rng, 400, 3.0, 30);
    println!(
        "Appendix r sweep: Stage I work vs spider radius (graph |V|={}, |E|={}, 30 labels, sigma=2)",
        graph.vertex_count(),
        graph.edge_count()
    );
    let max_r = if spidermine_experiments::is_full_run() {
        3
    } else {
        2
    };
    println!(
        "{:<6} {:>14} {:>14} {:>18}",
        "r", "runtime", "#r-spiders", "candidates tried"
    );
    for r in 1..=max_r {
        let start = std::time::Instant::now();
        let result = mine_r_spiders(&graph, r, 2, 2 + 3 * r as usize);
        let elapsed = start.elapsed();
        println!(
            "{:<6} {:>13.3}s {:>14} {:>18}",
            r,
            elapsed.as_secs_f64(),
            result.spiders.len(),
            result.candidates_evaluated
        );
    }
    println!("(the paper reports out-of-memory at r=4 — the exponential trend above is the point)");
}
