//! Figures 14 and 15: graph-transaction setting, SpiderMine vs ORIGAMI.
//! Figure 14 injects only five 30-vertex patterns; Figure 15 additionally
//! injects 100 small patterns, which pulls ORIGAMI's output toward small
//! maximal patterns while SpiderMine keeps returning the large ones.

use spidermine::{SpiderMineConfig, TransactionMiner};
use spidermine_baselines::origami;
use spidermine_datasets::transactions::{TransactionConfig, TransactionDataset};
use spidermine_experiments::{header, print_histogram, scale_from_args, EXPERIMENT_SEED};
use std::time::Duration;

fn run_one(name: &str, config: TransactionConfig) {
    let dataset = TransactionDataset::build(config, EXPERIMENT_SEED);
    header(&format!(
        "{name}: {} transactions, {} vertices each, {} labels, {} large / {} small patterns injected",
        dataset.config.transactions,
        dataset.config.vertices_per_transaction,
        dataset.config.labels,
        dataset.config.large_patterns,
        dataset.config.small_patterns
    ));
    let spidermine = TransactionMiner::new(SpiderMineConfig {
        support_threshold: 4,
        k: 10,
        d_max: 8,
        rng_seed: EXPERIMENT_SEED,
        ..SpiderMineConfig::default()
    })
    .mine(&dataset.database);
    print_histogram("SpiderMine", &spidermine.size_histogram_vertices());

    let origami_result = origami::run(
        &dataset.database,
        &origami::OrigamiConfig {
            support_threshold: 4,
            samples: 30,
            time_budget: Duration::from_secs(120),
            ..origami::OrigamiConfig::default()
        },
    );
    print_histogram("ORIGAMI", &origami_result.size_histogram_vertices());
    println!(
        "  summary      SpiderMine largest |V|={}, ORIGAMI largest |V|={}",
        spidermine
            .patterns
            .first()
            .map(|p| p.pattern.vertex_count())
            .unwrap_or(0),
        origami_result
            .patterns
            .first()
            .map(|p| p.pattern.vertex_count())
            .unwrap_or(0)
    );
}

fn main() {
    // Transaction mining verifies candidates with full subgraph-isomorphism
    // per transaction, so the default scale keeps transactions small.
    let scale = scale_from_args(0.3);
    println!("Figures 14-15: transaction setting, SpiderMine vs ORIGAMI (scale {scale})");
    run_one(
        "Figure 14 (fewer small patterns)",
        TransactionConfig::figure14(scale),
    );
    run_one(
        "Figure 15 (more small patterns)",
        TransactionConfig::figure15(scale),
    );
}
