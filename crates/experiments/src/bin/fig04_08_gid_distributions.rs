//! Figures 4–8: pattern-size distributions mined from GID 1–5 by SpiderMine,
//! SUBDUE and SEuS (Table 1 / Table 2 data settings, σ = 2, K = 10, Dmax = 4).

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_baselines::{seus, subdue};
use spidermine_datasets::synthetic::{GidConfig, SyntheticDataset};
use spidermine_experiments::{header, print_histogram, EXPERIMENT_SEED};
use std::time::Duration;

fn main() {
    println!("Figures 4-8: pattern size (|V|) distribution per miner, GID 1-5");
    println!(
        "Paper setting: sigma=2, K=10, Dmax=4; bars at size 30 are the injected large patterns."
    );
    for gid in 1..=5u32 {
        let config = GidConfig::table1(gid);
        let dataset = SyntheticDataset::build(config.clone(), EXPERIMENT_SEED + u64::from(gid));
        header(&format!(
            "GID {gid}: |V|={} f={} d={} (+{} injected large, {} small)",
            config.vertices,
            config.labels,
            config.average_degree,
            config.large_patterns,
            config.small_patterns
        ));

        let spidermine = SpiderMiner::new(SpiderMineConfig {
            support_threshold: 2,
            k: 10,
            d_max: 4,
            rng_seed: EXPERIMENT_SEED,
            ..SpiderMineConfig::default()
        })
        .mine(&dataset.graph);
        print_histogram("SpiderMine", &spidermine.size_histogram(true));

        let subdue_result = subdue::run(
            &dataset.graph,
            &subdue::SubdueConfig {
                report: 15,
                time_budget: Duration::from_secs(60),
                ..subdue::SubdueConfig::default()
            },
        );
        print_histogram("SUBDUE", &subdue_result.size_histogram_vertices());

        let seus_result = seus::run(
            &dataset.graph,
            &seus::SeusConfig {
                support_threshold: 2,
                time_budget: Duration::from_secs(60),
                ..seus::SeusConfig::default()
            },
        );
        print_histogram("SEuS", &seus_result.size_histogram_vertices());

        println!(
            "  summary      SpiderMine largest |V|={}, SUBDUE largest |V|={}, SEuS largest |V|={}",
            spidermine.largest_vertices(),
            subdue_result
                .patterns
                .iter()
                .map(|p| p.pattern.vertex_count())
                .max()
                .unwrap_or(0),
            seus_result
                .patterns
                .iter()
                .map(|p| p.pattern.vertex_count())
                .max()
                .unwrap_or(0),
        );
    }
}
