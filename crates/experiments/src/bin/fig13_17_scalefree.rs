//! Figures 13 and 17: scale-free (Barabási–Albert) networks — the number of
//! r-spiders and the SpiderMine runtime as the graph grows (Figure 17), and
//! the size in edges of the largest pattern discovered (Figure 13).
//! On these graphs SUBDUE/SEuS did not complete in the paper and MoSS returned
//! only small patterns; this binary therefore reports SpiderMine only.

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_datasets::synthetic::scalefree_graph;
use spidermine_experiments::EXPERIMENT_SEED;
use spidermine_mining::spider::{SpiderCatalog, SpiderMiningConfig};

fn main() {
    let sizes: Vec<usize> = if spidermine_experiments::is_full_run() {
        vec![5_000, 10_000, 15_000, 20_000, 25_000]
    } else {
        vec![1_000, 2_000, 4_000, 6_000]
    };
    println!("Figures 13 & 17: scale-free networks (BA model, m=2, 100 labels, sigma=2)");
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>20}",
        "|V|", "|E|", "#r-spiders", "runtime", "largest |E| found"
    );
    for &n in &sizes {
        let (graph, _planted) = scalefree_graph(n, EXPERIMENT_SEED + n as u64);
        // Figure 17 reports the number of r-spiders (r = 1) separately.
        let catalog = SpiderCatalog::mine(
            &graph,
            &SpiderMiningConfig {
                support_threshold: 2,
                max_leaves: 6,
                ..SpiderMiningConfig::default()
            },
        );
        let start = std::time::Instant::now();
        let result = SpiderMiner::new(SpiderMineConfig {
            support_threshold: 2,
            k: 10,
            d_max: 10,
            max_spider_leaves: 6,
            rng_seed: EXPERIMENT_SEED,
            ..SpiderMineConfig::default()
        })
        .mine(&graph);
        let elapsed = start.elapsed();
        println!(
            "{:<10} {:>10} {:>14} {:>13.3}s {:>20}",
            n,
            graph.edge_count(),
            catalog.len(),
            elapsed.as_secs_f64(),
            result.largest_edges()
        );
    }
}
