//! Figures 11 and 12: SpiderMine's own scalability on random graphs — runtime
//! (Figure 11) and the size of the largest pattern discovered (Figure 12) as
//! the input graph grows. The paper sweeps |V| up to 40 000; the default sweep
//! here is smaller, `--full` runs the paper's sizes.

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_datasets::synthetic::scalability_graph;
use spidermine_experiments::EXPERIMENT_SEED;

fn main() {
    let sizes: Vec<usize> = if spidermine_experiments::is_full_run() {
        vec![1_000, 5_000, 10_000, 15_000, 20_000, 25_000, 30_000, 35_000, 40_000]
    } else {
        vec![1_000, 2_500, 5_000, 7_500, 10_000]
    };
    println!("Figures 11-12: SpiderMine runtime and largest pattern vs graph size");
    println!("(ER background, d=3, f=100, sigma=2, K=10, Dmax=10, one planted pattern growing with |V|)");
    println!(
        "{:<10} {:>14} {:>20} {:>20}",
        "|V|", "runtime", "largest |V| found", "planted |V|"
    );
    for &n in &sizes {
        let (graph, planted) = scalability_graph(n, EXPERIMENT_SEED + n as u64);
        let start = std::time::Instant::now();
        let result = SpiderMiner::new(SpiderMineConfig {
            support_threshold: 2,
            k: 10,
            d_max: 10,
            rng_seed: EXPERIMENT_SEED,
            ..SpiderMineConfig::default()
        })
        .mine(&graph);
        let elapsed = start.elapsed();
        println!(
            "{:<10} {:>13.3}s {:>20} {:>20}",
            n,
            elapsed.as_secs_f64(),
            result.largest_vertices(),
            planted.vertex_count()
        );
    }
}
