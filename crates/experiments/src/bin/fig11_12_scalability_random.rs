//! Figures 11 and 12: SpiderMine's own scalability on random graphs — runtime
//! (Figure 11) and the size of the largest pattern discovered (Figure 12) as
//! the input graph grows. The paper sweeps |V| up to 40 000; the default sweep
//! here is smaller, `--full` runs the paper's sizes.

use spidermine::{SpiderMineConfig, SpiderMiner};
use spidermine_datasets::synthetic::scalability_graph;
use spidermine_experiments::{scale_from_args, EXPERIMENT_SEED};

fn main() {
    // `--full` runs the paper's sizes; otherwise `--scale X` (default 0.25 of
    // the paper's sweep) shrinks every |V| point, keeping CI smoke runs cheap.
    let scale = scale_from_args(0.25);
    let sizes: Vec<usize> = [
        1_000usize, 5_000, 10_000, 15_000, 20_000, 25_000, 30_000, 35_000, 40_000,
    ]
    .iter()
    .map(|&n| ((n as f64 * scale) as usize).max(200))
    .collect();
    println!("Figures 11-12: SpiderMine runtime and largest pattern vs graph size");
    println!(
        "(ER background, d=3, f=100, sigma=2, K=10, Dmax=10, one planted pattern growing with |V|)"
    );
    println!(
        "{:<10} {:>14} {:>20} {:>20}",
        "|V|", "runtime", "largest |V| found", "planted |V|"
    );
    for &n in &sizes {
        let (graph, planted) = scalability_graph(n, EXPERIMENT_SEED + n as u64);
        let start = std::time::Instant::now();
        let result = SpiderMiner::new(SpiderMineConfig {
            support_threshold: 2,
            k: 10,
            d_max: 10,
            rng_seed: EXPERIMENT_SEED,
            ..SpiderMineConfig::default()
        })
        .mine(&graph);
        let elapsed = start.elapsed();
        println!(
            "{:<10} {:>13.3}s {:>20} {:>20}",
            n,
            elapsed.as_secs_f64(),
            result.largest_vertices(),
            planted.vertex_count()
        );
    }
}
