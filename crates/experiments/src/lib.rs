//! Shared plumbing for the per-figure experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section (see DESIGN.md for the index). They all follow the same
//! conventions:
//!
//! * deterministic seeds, so two runs print the same rows;
//! * a `--full` flag to run at the paper's original sizes — the default is a
//!   scaled-down configuration that finishes in seconds to a few minutes on a
//!   laptop (EXPERIMENTS.md records which scale produced the reported rows);
//! * plain text rows on stdout shaped like the paper's tables/series.

use std::collections::BTreeMap;
use std::time::Duration;

/// Scale factor selected on the command line: `--full` means 1.0 (the paper's
/// sizes); otherwise `default_scale` is used. An explicit `--scale X` wins.
pub fn scale_from_args(default_scale: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse::<f64>().ok()) {
            return v.clamp(0.01, 1.0);
        }
    }
    if args.iter().any(|a| a == "--full") {
        1.0
    } else {
        default_scale
    }
}

/// True when `--full` was passed.
pub fn is_full_run() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a histogram as `size -> count` rows, the shape of Figures 4–8,
/// 14–15, 20–21.
pub fn print_histogram(name: &str, histogram: &BTreeMap<usize, usize>) {
    if histogram.is_empty() {
        println!("  {name:<12} (no patterns)");
        return;
    }
    for (size, count) in histogram {
        println!("  {name:<12} size={size:<4} count={count}");
    }
}

/// Formats a runtime like the paper's runtime tables; `None` renders as "-"
/// (the paper's marker for runs that did not finish).
pub fn format_runtime(runtime: Option<Duration>) -> String {
    match runtime {
        Some(d) => format!("{:.3}s", d.as_secs_f64()),
        None => "-".to_owned(),
    }
}

/// A fixed seed shared by the experiment binaries so figures are reproducible.
pub const EXPERIMENT_SEED: u64 = 20110829; // VLDB 2011 started August 29.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_runtime_renders_dash_for_timeouts() {
        assert_eq!(format_runtime(None), "-");
        assert_eq!(format_runtime(Some(Duration::from_millis(1500))), "1.500s");
    }

    #[test]
    fn scale_default_is_used_without_flags() {
        // The test binary's args contain no --full/--scale.
        let s = scale_from_args(0.3);
        assert!((s - 0.3).abs() < 1e-12);
        assert!(!is_full_run());
    }

    #[test]
    fn print_helpers_do_not_panic() {
        header("smoke");
        print_histogram("empty", &BTreeMap::new());
        let mut h = BTreeMap::new();
        h.insert(3, 2);
        print_histogram("demo", &h);
    }
}
