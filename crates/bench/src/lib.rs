//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches live in `benches/` and cover the hot kernels (spider mining,
//! SpiderGrow, spider-set hashing vs VF2, subgraph isomorphism, generators)
//! plus reduced-scale versions of the per-figure workloads so that
//! `cargo bench` exercises the same code paths as the experiment binaries.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_graph::generate;
use spidermine_graph::graph::LabeledGraph;

/// Deterministic seed shared by all benches.
pub const BENCH_SEED: u64 = 0xbe_5eed;

/// A mid-sized Erdős–Rényi benchmark graph with one planted pattern.
pub fn bench_graph(vertices: usize) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let mut g = generate::erdos_renyi_average_degree(&mut rng, vertices, 3.0, 50);
    let pattern = generate::random_connected_pattern(&mut rng, 12, 50, 4);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 2, 2);
    g
}

/// A mid-sized Barabási–Albert (scale-free) benchmark graph with one planted
/// pattern — the configuration the ISSUE-1 perf targets are measured on.
/// Returns the graph and the planted pattern.
pub fn bench_ba_graph(vertices: usize) -> (LabeledGraph, LabeledGraph) {
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED + 2);
    let mut g = generate::barabasi_albert(&mut rng, vertices, 3, 50);
    let pattern = generate::random_connected_pattern(&mut rng, 12, 50, 4);
    generate::inject_pattern(&mut rng, &mut g, &pattern, 3, 2);
    (g, pattern)
}

/// A pair of mid-sized patterns for isomorphism benchmarks (isomorphic twins).
pub fn bench_pattern_pair(vertices: usize) -> (LabeledGraph, LabeledGraph) {
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED + 1);
    let p = generate::random_connected_pattern(&mut rng, vertices, 8, vertices / 2);
    // Build a relabeled copy (same structure, permuted vertex ids).
    let perm: Vec<u32> = {
        let mut ids: Vec<u32> = (0..vertices as u32).collect();
        ids.rotate_left(vertices / 3);
        ids
    };
    let mut q = LabeledGraph::with_capacity(vertices);
    for i in 0..vertices as u32 {
        let original = perm[i as usize];
        q.add_vertex(p.label(spidermine_graph::VertexId(original)));
    }
    for (u, v) in p.edges() {
        let nu = perm.iter().position(|&x| x == u.0).expect("in perm") as u32;
        let nv = perm.iter().position(|&x| x == v.0).expect("in perm") as u32;
        q.add_edge(
            spidermine_graph::VertexId(nu),
            spidermine_graph::VertexId(nv),
        );
    }
    (p, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::iso;

    #[test]
    fn bench_graph_is_reproducible() {
        let a = bench_graph(500);
        let b = bench_graph(500);
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(a.vertex_count() >= 500);
    }

    #[test]
    fn bench_pattern_pair_is_isomorphic() {
        let (p, q) = bench_pattern_pair(9);
        assert!(iso::are_isomorphic(&p, &q));
    }

    #[test]
    fn bench_ba_graph_is_reproducible_and_contains_pattern() {
        let (a, pa) = bench_ba_graph(500);
        let (b, _) = bench_ba_graph(500);
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(iso::is_subgraph_of(&pa, &a), "planted pattern must embed");
    }
}
