//! Snapshot format v2 benchmarks (ISSUE 8): what a service restart actually
//! costs. Results land in the JSON summary selected by `$BENCH_JSON`
//! (`BENCH_snapshot.json` in CI) as:
//!
//! * `snapshot/v1_eager_open/<n>` vs `snapshot/v2_mmap_open/<n>` — the
//!   catalog's open path before and after: v1 decodes and validates the whole
//!   payload into owned arrays; v2 registers the file header-only (probe +
//!   deferred mapping), so opening is O(header) regardless of graph size. The
//!   derived `snapshot/open_speedup_<n>` is the acceptance bar (≥ 5×).
//! * `snapshot/probe/<n>` — [`io::probe_snapshot`] alone, with the derived
//!   `snapshot/probe_speedup_<n>` against the v1 full load (bar: ≥ 50×).
//! * `snapshot/v2_mapped_load/<n>`, `snapshot/v2_buffered_load/<n>` — full
//!   materialization through the v2 paths (checksums, structure, fingerprint
//!   — everything except the lazily decoded label index), for an honest
//!   comparison of total work, not just deferral.
//! * `snapshot/first_mine/<path>` — open + first mine end to end: deferral
//!   must not smuggle the cost past the first job.
//! * `snapshot/rss_delta_kb/*` — resident-set growth (`/proc/self/statm`)
//!   after populating a catalog with 1 / 4 / 16 graphs, v1 eager loads vs a
//!   v2 manifest restore: the restore is header-only, so its footprint stays
//!   flat no matter how many graphs the manifest lists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spidermine_bench::bench_ba_graph;
use spidermine_datasets::synthetic;
use spidermine_engine::{Algorithm, MineRequest};
use spidermine_graph::io::{self, LoadMode};
use spidermine_graph::LabeledGraph;
use spidermine_service::{GraphCatalog, MiningService, ServiceConfig};
use std::path::{Path, PathBuf};

/// Host size for the open/probe latency sections (the acceptance bar's
/// 8000-vertex snapshot).
const OPEN_VERTICES: usize = 8000;

/// Seed of the scalability dataset used throughout.
const SEED: u64 = 42;

/// Host size for the first-mine section: small enough that the mine itself
/// keeps the bench time sane.
const MINE_VERTICES: usize = 150;

/// Catalog sizes for the RSS section.
const CATALOG_SIZES: [usize; 3] = [1, 4, 16];

/// Host size per graph in the RSS section.
const RSS_VERTICES: usize = 2000;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spidermine-bench-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Saves `graph` in both formats, returning the (v1, v2) paths.
fn save_both(dir: &Path, tag: &str, graph: &LabeledGraph) -> (PathBuf, PathBuf) {
    let v1 = dir.join(format!("{tag}.snap1"));
    let v2 = dir.join(format!("{tag}.snap2"));
    io::save_snapshot(&v1, graph).expect("save v1");
    io::save_snapshot_v2(&v2, graph).expect("save v2");
    (v1, v2)
}

/// Resident set size in kilobytes, from `/proc/self/statm` (field 2 is
/// resident pages). Returns `None` off Linux — the RSS section is skipped.
fn resident_kb() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096 / 1024)
}

/// Returns freed heap pages to the OS so an RSS-before reading is not
/// polluted by a reusable free pool left over from bench setup. glibc-only;
/// elsewhere the RSS numbers are best-effort.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
fn trim_heap() {
    extern "C" {
        fn malloc_trim(pad: usize) -> i32;
    }
    unsafe {
        malloc_trim(0);
    }
}

#[cfg(not(all(target_os = "linux", target_env = "gnu")))]
fn trim_heap() {}

fn mine_request() -> MineRequest {
    MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(3)
        .d_max(6)
        .seed(11)
}

fn snapshot(c: &mut Criterion) {
    let dir = temp_dir();
    let mut group = c.benchmark_group("snapshot");

    // --- Open latency: v1 eager vs v2 header-only -------------------------
    let (big, _) = synthetic::scalability_graph(OPEN_VERTICES, SEED);
    big.csr();
    let (v1_big, v2_big) = save_both(&dir, "big", &big);
    let n = OPEN_VERTICES;
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("v1_eager_open", n), &v1_big, |b, path| {
        b.iter(|| {
            let g = io::load_snapshot(path).expect("v1 load");
            g.csr();
            g.vertex_count()
        })
    });
    group.sample_size(100);
    group.bench_with_input(BenchmarkId::new("v2_mmap_open", n), &v2_big, |b, path| {
        // What the catalog does at registration/restore time: O(header).
        let catalog = GraphCatalog::new();
        b.iter(|| {
            catalog
                .register_snapshot_file("big", path, LoadMode::Mapped)
                .expect("register")
                .fingerprint()
        })
    });
    group.bench_with_input(BenchmarkId::new("probe", n), &v2_big, |b, path| {
        b.iter(|| io::probe_snapshot(path).expect("probe").fingerprint)
    });

    // --- Full materialization through the v2 paths ------------------------
    group.sample_size(10);
    for (name, mode) in [
        ("v2_mapped_load", LoadMode::Mapped),
        ("v2_buffered_load", LoadMode::Buffered),
    ] {
        group.bench_with_input(BenchmarkId::new(name, n), &v2_big, |b, path| {
            b.iter(|| {
                let g = io::load_snapshot_v2(path, mode).expect("v2 load");
                g.csr();
                g.vertex_count()
            })
        });
    }

    // --- First-mine latency: open + mine, end to end ----------------------
    let (mine_graph, _) = bench_ba_graph(MINE_VERTICES);
    let (v1_mine, v2_mine) = save_both(&dir, "mine", &mine_graph);
    group.sample_size(10);
    for (name, path, lazy) in [
        ("first_mine/v1_eager", &v1_mine, false),
        ("first_mine/v2_mmap", &v2_mine, true),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let service = MiningService::new(ServiceConfig {
                    dispatchers: 1,
                    ..ServiceConfig::default()
                });
                if lazy {
                    service
                        .catalog()
                        .register_snapshot_file("g", path, LoadMode::Mapped)
                        .expect("register");
                } else {
                    service.catalog().load("g", path).expect("load");
                }
                service
                    .submit("g", mine_request())
                    .expect("submit")
                    .wait()
                    .expect("mine")
                    .patterns
                    .len()
            })
        });
    }
    group.finish();

    // --- Derived ratios ----------------------------------------------------
    if let (Some(v1), Some(v2)) = (
        criterion::measurement(&format!("snapshot/v1_eager_open/{n}")),
        criterion::measurement(&format!("snapshot/v2_mmap_open/{n}")),
    ) {
        criterion::record_metric(&format!("snapshot/open_speedup_{n}"), v1 / v2);
    }
    if let (Some(v1), Some(probe)) = (
        criterion::measurement(&format!("snapshot/v1_eager_open/{n}")),
        criterion::measurement(&format!("snapshot/probe/{n}")),
    ) {
        criterion::record_metric(&format!("snapshot/probe_speedup_{n}"), v1 / probe);
    }

    // --- RSS at 1 / 4 / 16 catalog graphs ---------------------------------
    // Not a timed bench: one shot per configuration, recorded as metrics.
    if resident_kb().is_some() {
        let mut snaps = Vec::new();
        for i in 0..*CATALOG_SIZES.iter().max().expect("non-empty") {
            let (g, _) = synthetic::scalability_graph(RSS_VERTICES, SEED + i as u64);
            g.csr();
            snaps.push(save_both(&dir, &format!("rss{i}"), &g));
        }
        for &k in &CATALOG_SIZES {
            let catalog = GraphCatalog::new();
            trim_heap();
            let before = resident_kb().expect("statm");
            for (i, (v1, _)) in snaps.iter().take(k).enumerate() {
                catalog.load(format!("g{i}"), v1).expect("v1 load");
            }
            let after = resident_kb().expect("statm");
            criterion::record_metric(
                &format!("snapshot/rss_delta_kb/v1_eager/{k}"),
                after.saturating_sub(before) as f64,
            );
            drop(catalog);

            // A manifest restore of the same k graphs, header-only.
            let restore_dir = dir.join(format!("catalog-{k}"));
            let persisted = GraphCatalog::new();
            for (i, (_, v2)) in snaps.iter().take(k).enumerate() {
                persisted
                    .register_snapshot_file(format!("g{i}"), v2, LoadMode::Mapped)
                    .expect("register");
            }
            // ensure_loaded materializes before persist; drop it afterwards
            // so only the restored catalog is charged.
            persisted.persist(&restore_dir).expect("persist");
            drop(persisted);
            let catalog = GraphCatalog::new();
            trim_heap();
            let before = resident_kb().expect("statm");
            let names = catalog.restore(&restore_dir).expect("restore");
            assert_eq!(names.len(), k);
            let after = resident_kb().expect("statm");
            criterion::record_metric(
                &format!("snapshot/rss_delta_kb/v2_restore/{k}"),
                after.saturating_sub(before) as f64,
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, snapshot);
criterion_main!(benches);
