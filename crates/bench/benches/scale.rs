//! Thread-scaling benchmarks (ISSUE 4): wall-clock of the SpiderMine hot
//! stages — grow, merge, support counting — and the end-to-end mine, each
//! measured at 1/2/4/8 worker threads through the work-stealing pool's
//! width cap (`rayon::with_width` / `MineRequest::threads`).
//!
//! Honesty notes. The same fixture is mined at every width and the results
//! are asserted identical before anything is timed (the runtime's
//! reductions are order-preserving, so width changes wall-clock only). The
//! measured core count of the runner is recorded alongside the timings
//! (`scale/cores`), and a derived speedup for a width larger than that core
//! count is stored under `scale/<stage>/speedup_<w>x_oversubscribed` — on a
//! 1-core box every >1-thread row oversubscribes one CPU and hovers around
//! 1×, which is a fact about the runner, not the runtime. Results land in
//! the JSON summary selected by `$BENCH_JSON` (`BENCH_scale.json` in CI) as
//! `scale/<stage>/<threads>` plus the derived `scale/<stage>/speedup_<w>x`
//! ratios (unsuffixed only when the runner really has `w` cores) against
//! the 1-thread row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spidermine::config::SpiderMineConfig;
use spidermine::grow::{self, GrownPattern};
use spidermine::merge;
use spidermine_bench::bench_ba_graph;
use spidermine_engine::{Algorithm, GraphSource, MineContext, MineRequest, Miner};
use spidermine_graph::graph::LabeledGraph;
use spidermine_mining::eval::EmbeddingStore;
use spidermine_mining::spider::{SpiderCatalog, SpiderMiningConfig};
use spidermine_mining::support::SupportMeasure;

/// Widths every stage is measured at.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Host size: the `engine_mine/spidermine/500` end-to-end target.
const HOST_VERTICES: usize = 500;

/// Seed patterns grown/merged per measured round.
const SEED_PATTERNS: usize = 48;

fn mine_config() -> SpiderMineConfig {
    SpiderMineConfig {
        support_threshold: 2,
        k: 5,
        d_max: 6,
        rng_seed: 17,
        ..SpiderMineConfig::default()
    }
}

/// The shared fixture: host graph, spider catalog, a deterministic set of
/// seeded patterns (largest spiders first, what the grow stage fans out
/// over), and the one-layer-grown variants (what merge rounds and the
/// selection-stage support loop actually see mid-run) — all inside one
/// arena.
struct Fixture {
    host: LabeledGraph,
    catalog: SpiderCatalog,
    config: SpiderMineConfig,
    store: EmbeddingStore,
    patterns: Vec<GrownPattern>,
    grown: Vec<GrownPattern>,
}

fn fixture() -> Fixture {
    let (host, _) = bench_ba_graph(HOST_VERTICES);
    host.csr();
    let config = mine_config();
    let catalog = SpiderCatalog::mine(
        &host,
        &SpiderMiningConfig {
            support_threshold: config.support_threshold,
            max_leaves: config.max_spider_leaves,
            include_single_vertex: false,
            max_spiders: usize::MAX,
        },
    );
    let mut ids: Vec<usize> = (0..catalog.len()).collect();
    ids.sort_by_key(|&id| std::cmp::Reverse((catalog.get(id).size(), usize::MAX - id)));
    ids.truncate(SEED_PATTERNS);
    let mut store = EmbeddingStore::new();
    let patterns: Vec<GrownPattern> = ids
        .into_iter()
        .map(|id| grow::seed_pattern(&host, catalog.get(id), &config, &mut store))
        .collect();
    let grown: Vec<GrownPattern> = rayon::with_width(1, || {
        patterns
            .iter()
            .flat_map(|p| grow::grow_one_layer(&host, &catalog, p, &config, &mut store))
            .collect()
    });
    Fixture {
        host,
        catalog,
        config,
        store,
        patterns,
        grown,
    }
}

/// One parallel growth round over the fixture's patterns (what a Stage II
/// iteration fans out), returning a shape fingerprint for the determinism
/// check.
fn grow_round(fx: &Fixture) -> Vec<(usize, usize)> {
    use rayon::prelude::*;
    let growths: Vec<grow::LayerGrowth> = fx
        .patterns
        .par_iter()
        .map(|p| {
            grow::grow_layer(
                &fx.host,
                &fx.catalog,
                p,
                fx.store.view(p.embeddings),
                &fx.config,
            )
        })
        .collect();
    growths
        .iter()
        .flat_map(|g| {
            g.variants
                .iter()
                .map(|v| (v.pattern.edge_count(), g.arena.view(v.embeddings).len()))
        })
        .collect()
}

/// One merge round over the fixture's grown patterns (fresh arena clone per
/// call, identical across widths).
fn merge_round(fx: &Fixture) -> (usize, usize) {
    let mut store = fx.store.clone();
    let (merged, _, stats) = merge::check_merges(&fx.host, &fx.grown, &fx.config, &mut store);
    (merged.len(), stats.embedding_pairs)
}

/// Parallel support counting over the fixture's grown patterns (the
/// selection stage's evaluation loop): all three measures per pattern, off
/// the flat rows.
fn support_round(fx: &Fixture) -> Vec<usize> {
    use rayon::prelude::*;
    fx.grown
        .par_iter()
        .map(|p| {
            let view = fx.store.view(p.embeddings);
            view.support(SupportMeasure::EmbeddingCount)
                + view.support(SupportMeasure::MinimumImage)
                + view.support(SupportMeasure::GreedyDisjoint)
        })
        .collect()
}

fn end_to_end(host: &LabeledGraph, threads: usize) -> usize {
    let miner = MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(5)
        .d_max(6)
        .seed(17)
        .threads(threads)
        .build()
        .expect("valid request");
    miner
        .mine(&GraphSource::Single(host), &mut MineContext::new())
        .expect("single graph accepted")
        .patterns
        .len()
}

fn scale(c: &mut Criterion) {
    rayon::ensure_pool_size(*WIDTHS.iter().max().expect("non-empty"));
    let fx = fixture();

    // Byte-identical across widths before anything is timed.
    let grow_ref = rayon::with_width(1, || grow_round(&fx));
    let merge_ref = rayon::with_width(1, || merge_round(&fx));
    let support_ref = rayon::with_width(1, || support_round(&fx));
    let e2e_ref = rayon::with_width(1, || end_to_end(&fx.host, 1));
    for &w in &WIDTHS[1..] {
        assert_eq!(grow_ref, rayon::with_width(w, || grow_round(&fx)));
        assert_eq!(merge_ref, rayon::with_width(w, || merge_round(&fx)));
        assert_eq!(support_ref, rayon::with_width(w, || support_round(&fx)));
        assert_eq!(e2e_ref, end_to_end(&fx.host, w));
    }

    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    for &w in &WIDTHS {
        group.bench_with_input(BenchmarkId::new("grow", w), &w, |b, &w| {
            b.iter(|| rayon::with_width(w, || grow_round(&fx).len()))
        });
        group.bench_with_input(BenchmarkId::new("merge", w), &w, |b, &w| {
            b.iter(|| rayon::with_width(w, || merge_round(&fx)))
        });
        group.bench_with_input(BenchmarkId::new("support", w), &w, |b, &w| {
            b.iter(|| rayon::with_width(w, || support_round(&fx).len()))
        });
    }
    group.sample_size(5);
    for &w in &WIDTHS {
        group.bench_with_input(BenchmarkId::new("end_to_end", w), &w, |b, &w| {
            b.iter(|| end_to_end(&fx.host, w))
        });
    }
    group.finish();

    // Derived speedups against the 1-thread row, plus the runner's shape so
    // the ratios can be judged. A width that exceeds the runner's core count
    // oversubscribes the CPU and cannot show a real speedup — those rows are
    // recorded under a `…_oversubscribed` key so nothing downstream mistakes
    // them for scaling evidence (the ≥2.5× end-to-end gate reads only the
    // unsuffixed keys, on multi-core runners).
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    for stage in ["grow", "merge", "support", "end_to_end"] {
        let base = criterion::measurement(&format!("scale/{stage}/1"));
        for &w in &WIDTHS[1..] {
            let at = criterion::measurement(&format!("scale/{stage}/{w}"));
            if let (Some(base), Some(at)) = (base, at) {
                let suffix = if cores < w { "_oversubscribed" } else { "" };
                criterion::record_metric(&format!("scale/{stage}/speedup_{w}x{suffix}"), base / at);
            }
        }
    }
    criterion::record_metric("scale/cores", cores as f64);
    criterion::record_metric(
        "scale/max_width",
        *WIDTHS.iter().max().expect("non-empty") as f64,
    );
}

criterion_group!(benches, scale);
criterion_main!(benches);
