//! Reduced-scale versions of the paper's figure workloads, so `cargo bench`
//! exercises the same end-to-end paths as the experiment binaries:
//! GID-style mining (Figures 4–8/16), the scalability point (Figures 10–12),
//! the scale-free point (Figures 13/17) and the transaction setting
//! (Figures 14–15).

use criterion::{criterion_group, criterion_main, Criterion};
use spidermine::{SpiderMineConfig, SpiderMiner, TransactionMiner};
use spidermine_baselines::{origami, subdue};
use spidermine_datasets::synthetic::{
    scalability_graph, scalefree_graph, GidConfig, SyntheticDataset,
};
use spidermine_datasets::transactions::{TransactionConfig, TransactionDataset};

fn figure_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    // Figures 4-8 / 16: GID 1 head-to-head (SpiderMine and SUBDUE halves).
    let gid1 = SyntheticDataset::build(GidConfig::table1(1), 7);
    group.bench_function("fig04_gid1_spidermine", |b| {
        b.iter(|| {
            SpiderMiner::new(SpiderMineConfig {
                support_threshold: 2,
                k: 10,
                d_max: 4,
                ..SpiderMineConfig::default()
            })
            .mine(&gid1.graph)
            .patterns
            .len()
        })
    });
    group.bench_function("fig04_gid1_subdue", |b| {
        b.iter(|| {
            subdue::run(&gid1.graph, &subdue::SubdueConfig::default())
                .patterns
                .len()
        })
    });

    // Figures 10-12: one scalability point.
    let (scal_graph, _) = scalability_graph(2_000, 7);
    group.bench_function("fig11_scalability_2000", |b| {
        b.iter(|| {
            SpiderMiner::new(SpiderMineConfig {
                support_threshold: 2,
                k: 10,
                d_max: 10,
                ..SpiderMineConfig::default()
            })
            .mine(&scal_graph)
            .largest_vertices()
        })
    });

    // Figures 13/17: one scale-free point.
    let (sf_graph, _) = scalefree_graph(1_500, 7);
    group.bench_function("fig17_scalefree_1500", |b| {
        b.iter(|| {
            SpiderMiner::new(SpiderMineConfig {
                support_threshold: 2,
                k: 10,
                d_max: 10,
                max_spider_leaves: 6,
                ..SpiderMineConfig::default()
            })
            .mine(&sf_graph)
            .largest_edges()
        })
    });

    // Figures 14-15: transaction setting (small scale).
    let tx = TransactionDataset::build(TransactionConfig::figure14(0.12), 7);
    group.bench_function("fig14_transaction_spidermine", |b| {
        b.iter(|| {
            TransactionMiner::new(SpiderMineConfig {
                support_threshold: 3,
                k: 5,
                d_max: 6,
                ..SpiderMineConfig::default()
            })
            .mine(&tx.database)
            .patterns
            .len()
        })
    });
    group.bench_function("fig14_transaction_origami", |b| {
        b.iter(|| {
            origami::run(
                &tx.database,
                &origami::OrigamiConfig {
                    support_threshold: 3,
                    samples: 5,
                    ..origami::OrigamiConfig::default()
                },
            )
            .patterns
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, figure_workloads);
criterion_main!(benches);
