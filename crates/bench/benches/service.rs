//! Service-layer benchmarks (ISSUE 5): snapshot loading vs rebuilding,
//! result-cache hit vs miss latency, and scheduler throughput at several
//! queue depths. Results land in the JSON summary selected by `$BENCH_JSON`
//! (`BENCH_service.json` in CI) as:
//!
//! * `service/cold_load/<n>` vs `service/snapshot_load/<n>` — rebuilding the
//!   dataset (the `datasets` crate's scalability builder: generator + pattern
//!   injection, what a catalog registration actually runs) plus freezing its
//!   CSR index, against decoding the binary snapshot plus freezing the same
//!   index (the loader's validation + fingerprint check included); the
//!   derived `service/snapshot_speedup_<n>` ratio is the acceptance bar
//!   ("snapshot load measurably faster than rebuilding").
//! * `service/cache/hit` vs `service/cache/miss` — submit→wait latency of a
//!   cache-served job against one that must mine (fresh seed per
//!   iteration), with the derived `service/cache/speedup`.
//! * `service/jobs/<d>` — draining `d` concurrently submitted distinct
//!   jobs, with the derived `service/jobs_per_sec/depth_<d>`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spidermine_bench::bench_ba_graph;
use spidermine_datasets::synthetic;
use spidermine_engine::{Algorithm, MineRequest};
use spidermine_graph::io;
use spidermine_service::{MiningService, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// Host sizes for the load comparison.
const LOAD_SIZES: [usize; 2] = [2000, 8000];

/// Seed of the scalability dataset the load comparison rebuilds/reloads.
const LOAD_SEED: u64 = 42;

/// Host size for the cache-latency and throughput sections: small enough
/// that a miss (a full mine) keeps the bench time sane.
const MINE_VERTICES: usize = 150;

/// Queue depths for the throughput section.
const DEPTHS: [usize; 3] = [1, 4, 16];

fn mine_request(seed: u64) -> MineRequest {
    MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(3)
        .d_max(6)
        .seed(seed)
}

fn service_fixture() -> MiningService {
    let service = MiningService::new(ServiceConfig {
        dispatchers: 2,
        queue_depth: 64,
        cache_capacity: 256,
        max_threads_per_job: None,
        ..ServiceConfig::default()
    });
    service
        .catalog()
        .register("bench", bench_ba_graph(MINE_VERTICES).0);
    service
}

fn service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");

    // --- Cold build vs snapshot load -------------------------------------
    group.sample_size(10);
    for &n in &LOAD_SIZES {
        let bytes = io::snapshot_bytes(&{
            let (g, _) = synthetic::scalability_graph(n, LOAD_SEED);
            g.csr();
            g
        });
        group.bench_with_input(BenchmarkId::new("cold_load", n), &n, |b, &n| {
            b.iter(|| {
                let (g, _) = synthetic::scalability_graph(n, LOAD_SEED);
                g.csr();
                g.vertex_count()
            })
        });
        group.bench_with_input(BenchmarkId::new("snapshot_load", n), &bytes, |b, bytes| {
            b.iter(|| {
                let g = io::graph_from_snapshot(bytes).expect("valid snapshot");
                g.csr();
                g.vertex_count()
            })
        });
    }

    // --- Cache hit vs miss latency ---------------------------------------
    let svc = service_fixture();
    // Warm the entry the hit benchmark will keep finding.
    svc.submit("bench", mine_request(0))
        .expect("submit")
        .wait()
        .expect("warm mine");
    group.sample_size(20);
    group.bench_function("cache/hit", |b| {
        b.iter(|| {
            svc.submit("bench", mine_request(0))
                .expect("submit")
                .wait()
                .expect("cached mine")
                .patterns
                .len()
        })
    });
    let fresh_seed = AtomicU64::new(1);
    group.sample_size(10);
    group.bench_function("cache/miss", |b| {
        b.iter(|| {
            let seed = fresh_seed.fetch_add(1, Ordering::Relaxed);
            svc.submit("bench", mine_request(seed))
                .expect("submit")
                .wait()
                .expect("fresh mine")
                .patterns
                .len()
        })
    });

    // --- Throughput at queue depths 1 / 4 / 16 ---------------------------
    // Distinct seeds per job and per iteration, so every job mines: this
    // measures scheduling + mining throughput, not cache replay.
    group.sample_size(5);
    for &depth in &DEPTHS {
        group.bench_with_input(BenchmarkId::new("jobs", depth), &depth, |b, &depth| {
            b.iter(|| {
                let handles: Vec<_> = (0..depth)
                    .map(|_| {
                        let seed = fresh_seed.fetch_add(1, Ordering::Relaxed);
                        svc.submit("bench", mine_request(seed)).expect("submit")
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.wait().expect("mine").patterns.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();

    // --- Derived ratios ---------------------------------------------------
    for &n in &LOAD_SIZES {
        if let (Some(cold), Some(snap)) = (
            criterion::measurement(&format!("service/cold_load/{n}")),
            criterion::measurement(&format!("service/snapshot_load/{n}")),
        ) {
            criterion::record_metric(&format!("service/snapshot_speedup_{n}"), cold / snap);
        }
    }
    if let (Some(hit), Some(miss)) = (
        criterion::measurement("service/cache/hit"),
        criterion::measurement("service/cache/miss"),
    ) {
        criterion::record_metric("service/cache/speedup", miss / hit);
    }
    for &depth in &DEPTHS {
        if let Some(ns) = criterion::measurement(&format!("service/jobs/{depth}")) {
            criterion::record_metric(
                &format!("service/jobs_per_sec/depth_{depth}"),
                depth as f64 * 1e9 / ns,
            );
        }
    }
    let m = svc.metrics();
    criterion::record_metric("service/final_cache_hits", m.cache.hits as f64);
    criterion::record_metric("service/final_cache_misses", m.cache.misses as f64);
    criterion::record_metric("service/final_cache_evictions", m.cache.evictions as f64);
}

criterion_group!(benches, service);
criterion_main!(benches);
