//! Benchmarks the VF2 subgraph-isomorphism kernel (embedding enumeration).
//!
//! Two hosts are covered: the Erdős–Rényi graph the original benches used and
//! the mid-size Barabási–Albert configuration the ISSUE-1 performance targets
//! are measured on. On the BA host every pattern size is measured with both
//! the indexed matcher and the retained reference implementation, and the
//! ratio is recorded in `BENCH_embedding.json` as
//! `find_embeddings_ba/speedup/<size>`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_bench::{bench_ba_graph, bench_graph, BENCH_SEED};
use spidermine_graph::generate;
use spidermine_graph::iso;

fn embedding_enumeration(c: &mut Criterion) {
    let host = bench_graph(2000);
    let mut group = c.benchmark_group("find_embeddings");
    for &pattern_size in &[4usize, 8, 12] {
        let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED + pattern_size as u64);
        let pattern = generate::random_connected_pattern(&mut rng, pattern_size, 50, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(pattern_size),
            &pattern,
            |b, p| b.iter(|| iso::find_embeddings(p, &host, 100).len()),
        );
    }
    group.finish();
}

fn embedding_enumeration_ba(c: &mut Criterion) {
    let (host, planted) = bench_ba_graph(2000);
    host.csr(); // freeze the index outside the timed region
    let mut group = c.benchmark_group("find_embeddings_ba");
    // Random patterns of each size (mostly absent from the host: the
    // fail-fast path) plus the planted pattern (the success path).
    let mut cases: Vec<(String, spidermine_graph::LabeledGraph)> = [4usize, 8, 12]
        .iter()
        .map(|&size| {
            let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED + size as u64);
            (
                size.to_string(),
                generate::random_connected_pattern(&mut rng, size, 50, 2),
            )
        })
        .collect();
    cases.push(("planted".to_owned(), planted));
    for (name, pattern) in &cases {
        let expected = iso::reference::find_embeddings(pattern, &host, 100);
        assert_eq!(
            iso::find_embeddings(pattern, &host, 100),
            expected,
            "indexed and reference matchers must agree on {name}"
        );
        group.bench_with_input(BenchmarkId::new("indexed", name), pattern, |b, p| {
            b.iter(|| iso::find_embeddings(p, &host, 100).len())
        });
        group.bench_with_input(BenchmarkId::new("reference", name), pattern, |b, p| {
            b.iter(|| iso::reference::find_embeddings(p, &host, 100).len())
        });
    }
    group.finish();
    for (name, _) in &cases {
        let indexed = criterion::measurement(&format!("find_embeddings_ba/indexed/{name}"));
        let reference = criterion::measurement(&format!("find_embeddings_ba/reference/{name}"));
        if let (Some(i), Some(r)) = (indexed, reference) {
            criterion::record_metric(&format!("find_embeddings_ba/speedup/{name}"), r / i);
        }
    }
}

criterion_group!(benches, embedding_enumeration, embedding_enumeration_ba);
criterion_main!(benches);
