//! Benchmarks the VF2 subgraph-isomorphism kernel (embedding enumeration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_bench::{bench_graph, BENCH_SEED};
use spidermine_graph::generate;
use spidermine_graph::iso;

fn embedding_enumeration(c: &mut Criterion) {
    let host = bench_graph(2000);
    let mut group = c.benchmark_group("find_embeddings");
    for &pattern_size in &[4usize, 8, 12] {
        let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED + pattern_size as u64);
        let pattern = generate::random_connected_pattern(&mut rng, pattern_size, 50, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(pattern_size),
            &pattern,
            |b, p| b.iter(|| iso::find_embeddings(p, &host, 100).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, embedding_enumeration);
criterion_main!(benches);
