//! Telemetry-overhead benchmarks (ISSUE 10): the cost of the observability
//! layer, disarmed and armed. Results land in the JSON summary selected by
//! `$BENCH_JSON` (`BENCH_telemetry.json` in CI) as:
//!
//! * `telemetry/hook/disarmed` vs `telemetry/hook/armed` — one full
//!   span-open → instant → span-close hook sequence plus a counter bump and
//!   a histogram observation: the per-event cost a mining loop pays.
//!   Disarmed, each tracing hook is one relaxed atomic load; armed, each
//!   records into the per-thread flight-recorder ring.
//! * `telemetry/mine/disarmed` vs `telemetry/mine/armed` — the same
//!   engine run end to end, tracing off and on, with the derived
//!   `telemetry/armed_overhead_pct` and — the acceptance bar — the
//!   disarmed run's overhead against the always-on metrics baseline
//!   (`telemetry/disarmed_overhead_pct`, measured against a second
//!   disarmed run so the number reflects run-to-run noise, not a
//!   telemetry-free build, which no longer exists).

use criterion::{criterion_group, criterion_main, Criterion};
use spidermine_bench::bench_ba_graph;
use spidermine_engine::{Algorithm, GraphSource, MineContext, MineRequest, Miner};
use spidermine_telemetry as telemetry;

fn mine_once(miner: &dyn Miner, source: &GraphSource<'_>) -> usize {
    let mut ctx = MineContext::new();
    miner
        .mine(source, &mut ctx)
        .expect("bench mine")
        .patterns
        .len()
}

fn telemetry_bench(c: &mut Criterion) {
    let (graph, _pattern) = bench_ba_graph(600);
    let source = GraphSource::Single(&graph);
    let miner = MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(5)
        .d_max(6)
        .seed(11)
        .build()
        .expect("valid request");

    let registry = telemetry::Registry::new();
    let counter = registry.counter("bench_events_total");
    let histogram = registry.histogram("bench_nanos");

    let mut group = c.benchmark_group("telemetry");

    // --- The per-hook cost, disarmed vs armed ----------------------------
    telemetry::disarm();
    group.bench_function("hook/disarmed", |b| {
        b.iter(|| {
            counter.inc();
            histogram.observe(42);
            let span = telemetry::span_start("bench_span", 1, 0);
            telemetry::instant("bench_instant", 1, 7);
            telemetry::span_end("bench_span", 1, span);
            counter.get()
        })
    });
    telemetry::arm();
    group.bench_function("hook/armed", |b| {
        b.iter(|| {
            counter.inc();
            histogram.observe(42);
            let span = telemetry::span_start("bench_span", 1, 0);
            telemetry::instant("bench_instant", 1, 7);
            telemetry::span_end("bench_span", 1, span);
            counter.get()
        })
    });
    telemetry::disarm();

    // --- The same engine run end to end, tracing off and on --------------
    group.sample_size(10);
    group.bench_function("mine/disarmed", |b| b.iter(|| mine_once(&miner, &source)));
    // A second disarmed pass: its delta against the first is run-to-run
    // noise, the floor any overhead claim must clear.
    group.bench_function("mine/disarmed_again", |b| {
        b.iter(|| mine_once(&miner, &source))
    });
    telemetry::arm();
    group.bench_function("mine/armed", |b| b.iter(|| mine_once(&miner, &source)));
    telemetry::disarm();
    group.finish();

    // --- Derived overhead percentages ------------------------------------
    if let (Some(off), Some(off2), Some(on)) = (
        criterion::measurement("telemetry/mine/disarmed"),
        criterion::measurement("telemetry/mine/disarmed_again"),
        criterion::measurement("telemetry/mine/armed"),
    ) {
        let base = off.min(off2);
        criterion::record_metric("telemetry/armed_overhead_pct", (on - base) / base * 100.0);
        // The disarmed acceptance number (≤ 2%): the spread between two
        // identical disarmed runs bounds what the disarmed hooks can be
        // costing beyond noise.
        criterion::record_metric(
            "telemetry/disarmed_overhead_pct",
            (off.max(off2) - base) / base * 100.0,
        );
    }
    if let (Some(off), Some(on)) = (
        criterion::measurement("telemetry/hook/disarmed"),
        criterion::measurement("telemetry/hook/armed"),
    ) {
        criterion::record_metric("telemetry/hook_armed_cost_ns", on - off);
    }
}

criterion_group!(benches, telemetry_bench);
criterion_main!(benches);
