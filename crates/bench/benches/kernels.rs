//! Raw-speed kernels (ISSUE 6): word-parallel support kernels vs their
//! retained scalar references, and Chase–Lev vs mutex-deque scheduling cost.
//!
//! Two families, one JSON artifact (`BENCH_kernels.json` in CI):
//!
//! * **Support kernels** — MNI and greedy-disjoint over a large embedding
//!   set of a frequent path pattern on a big host, kernel vs the
//!   `*_reference` scalar implementations, on both storage layouts the
//!   support entry points serve (legacy per-row `Vec`s and the flat arena;
//!   the `_flat` metrics are the arena). Plus the popcount sweep the MNI
//!   column counts reduce through. Equality of results is asserted before
//!   anything is timed; `kernels/<name>/speedup` records reference-time /
//!   kernel-time (>1 means the kernel is faster).
//! * **Scheduling substrate** — per-op cost of push-then-steal cycles on the
//!   lock-free Chase–Lev deque vs the PR-4 design it replaced (a
//!   `Mutex<VecDeque>`), measured single-threaded: on a 1-core bench box a
//!   contended multi-thread throughput number would be scheduler noise, so
//!   this records the uncontended per-op cost floor (the mutex baseline
//!   pays its lock/unlock even uncontended; the Chase–Lev owner path is two
//!   plain atomic accesses).
//!
//! `kernels/avx2` records whether the dispatched popcount ran its AVX2 path
//! (1) or the scalar fallback (0) on this runner.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rayon::deque::{deque, Steal};
use spidermine_graph::graph::VertexId;
use spidermine_graph::label::Label;
use spidermine_graph::{generate, iso, LabeledGraph};
use spidermine_mining::eval::{popcount_words, popcount_words_scalar};
use spidermine_mining::support;
use std::collections::VecDeque;
use std::sync::Mutex;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Embedding rows of a frequent 6-path on a large host: big enough that the
/// support sweep is memory-bound (the regime the miners hit on the paper's
/// synthetic graphs — embedding lists of hundreds of thousands of rows),
/// arity high enough that the single-pass kernel's read-once advantage over
/// the per-position reference passes is visible.
fn embedding_fixture() -> (usize, Vec<Vec<VertexId>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(0xbe_5eed);
    let host = generate::erdos_renyi_average_degree(&mut rng, 20_000, 6.0, 2);
    let arity = 6usize;
    let labels: Vec<Label> = (0..arity).map(|i| Label((i % 2) as u32)).collect();
    let edges: Vec<(u32, u32)> = (0..arity as u32 - 1).map(|i| (i, i + 1)).collect();
    let pattern = LabeledGraph::from_parts(&labels, &edges);
    let embeddings = iso::find_embeddings(&pattern, &host, 2_000_000);
    assert!(
        embeddings.len() >= 500_000,
        "kernel bench needs a memory-bound embedding set, got {} rows",
        embeddings.len()
    );
    (arity, embeddings)
}

fn support_kernels(c: &mut Criterion) {
    let (arity, embeddings) = embedding_fixture();
    let row_count = embeddings.len();
    // Both storage layouts the support entry points serve: the legacy
    // `&[Embedding]` list (one heap row per embedding — what the miners'
    // growth loops and the baselines pass) and the flat row-major arena of
    // the eval layer. The reference pays the per-row pointer chase once per
    // pattern position; the kernel pays it once, so the legacy layout is
    // where the single-pass design matters most.
    let rows = || embeddings.iter().map(Vec::as_slice);
    let flat: Vec<VertexId> = embeddings.iter().flatten().copied().collect();
    let rows_flat = || flat.chunks_exact(arity);

    // The kernels must be drop-in: equality before speed.
    let mni_ref = support::minimum_image_support_rows_reference(arity, rows(), row_count);
    assert_eq!(
        support::minimum_image_support_rows(arity, rows(), row_count),
        mni_ref,
        "MNI kernel must agree with the scalar reference"
    );
    assert!(
        mni_ref > 1,
        "fixture must not trip the MNI early-exit floor"
    );
    assert_eq!(
        support::greedy_disjoint_support_rows(rows()),
        support::greedy_disjoint_support_rows_reference(rows()),
        "greedy kernel must agree with the scalar reference"
    );

    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.bench_function("mni_word_parallel", |b| {
        b.iter(|| support::minimum_image_support_rows(arity, rows(), row_count))
    });
    group.bench_function("mni_scalar_reference", |b| {
        b.iter(|| support::minimum_image_support_rows_reference(arity, rows(), row_count))
    });
    group.bench_function("mni_word_parallel_flat", |b| {
        b.iter(|| support::minimum_image_support_rows(arity, rows_flat(), row_count))
    });
    group.bench_function("mni_scalar_reference_flat", |b| {
        b.iter(|| support::minimum_image_support_rows_reference(arity, rows_flat(), row_count))
    });
    group.bench_function("greedy_word_parallel", |b| {
        b.iter(|| support::greedy_disjoint_support_rows(rows()))
    });
    group.bench_function("greedy_scalar_reference", |b| {
        b.iter(|| support::greedy_disjoint_support_rows_reference(rows()))
    });

    // Popcount sweep over a long word slice (several MNI columns' worth).
    let words: Vec<u64> = (0..4096u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 21))
        .collect();
    assert_eq!(popcount_words(&words), popcount_words_scalar(&words));
    group.bench_function("popcount_dispatched", |b| {
        b.iter(|| popcount_words(black_box(&words)))
    });
    group.bench_function("popcount_scalar", |b| {
        b.iter(|| popcount_words_scalar(black_box(&words)))
    });
    group.finish();

    for (name, fast, slow) in [
        ("mni", "mni_word_parallel", "mni_scalar_reference"),
        (
            "mni_flat",
            "mni_word_parallel_flat",
            "mni_scalar_reference_flat",
        ),
        ("greedy", "greedy_word_parallel", "greedy_scalar_reference"),
        ("popcount", "popcount_dispatched", "popcount_scalar"),
    ] {
        if let (Some(fast), Some(slow)) = (
            criterion::measurement(&format!("kernels/{fast}")),
            criterion::measurement(&format!("kernels/{slow}")),
        ) {
            criterion::record_metric(&format!("kernels/{name}/speedup"), slow / fast);
        }
    }
    let avx2 = cfg!(target_arch = "x86_64") && std::arch::is_x86_feature_detected!("avx2");
    criterion::record_metric("kernels/avx2", if avx2 { 1.0 } else { 0.0 });
}

/// The scheduling-substrate design the Chase–Lev deque replaced: every
/// operation takes the lock, owner ops at the back, steals at the front.
struct MutexDeque {
    inner: Mutex<VecDeque<usize>>,
}

impl MutexDeque {
    fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, v: usize) {
        self.inner.lock().unwrap().push_back(v);
    }

    fn steal(&self) -> Option<usize> {
        self.inner.lock().unwrap().pop_front()
    }
}

fn steal_throughput(c: &mut Criterion) {
    const OPS: usize = 4096;
    let mut group = c.benchmark_group("kernels");
    let (worker, stealer) = deque::<usize>();
    group.bench_function("steal_chase_lev", |b| {
        b.iter(|| {
            for i in 0..OPS {
                worker.push(i);
            }
            let mut sum = 0usize;
            for _ in 0..OPS {
                if let Steal::Success(v) = stealer.steal() {
                    sum += v;
                }
            }
            black_box(sum)
        })
    });
    let mutexed = MutexDeque::new();
    group.bench_function("steal_mutex_deque", |b| {
        b.iter(|| {
            for i in 0..OPS {
                mutexed.push(i);
            }
            let mut sum = 0usize;
            for _ in 0..OPS {
                if let Some(v) = mutexed.steal() {
                    sum += v;
                }
            }
            black_box(sum)
        })
    });
    group.finish();
    if let (Some(cl), Some(mx)) = (
        criterion::measurement("kernels/steal_chase_lev"),
        criterion::measurement("kernels/steal_mutex_deque"),
    ) {
        criterion::record_metric("kernels/steal/speedup", mx / cl);
    }
}

criterion_group!(benches, support_kernels, steal_throughput);
criterion_main!(benches);
