//! Benchmarks Stage I: mining the complete 1-spider catalog.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spidermine_bench::bench_graph;
use spidermine_mining::spider::{SpiderCatalog, SpiderMiningConfig};

fn spider_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("spider_mining");
    group.sample_size(10);
    for &n in &[500usize, 1500, 3000] {
        let graph = bench_graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            b.iter(|| {
                SpiderCatalog::mine(
                    g,
                    &SpiderMiningConfig {
                        support_threshold: 2,
                        max_leaves: 6,
                        ..SpiderMiningConfig::default()
                    },
                )
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, spider_mining);
criterion_main!(benches);
