//! Benchmarks Stage I: mining the complete 1-spider catalog and counting
//! spider support (`matching_at`) against the data graph.
//!
//! The Barabási–Albert groups measure both the CSR implementations and the
//! retained hash-map reference, recording the ratios in
//! `BENCH_embedding.json` as `spider_catalog_ba/speedup/<n>` and
//! `spider_support_ba/speedup/<n>`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spidermine_bench::{bench_ba_graph, bench_graph};
use spidermine_mining::spider::{reference, SpiderCatalog, SpiderMiningConfig};

fn bench_config() -> SpiderMiningConfig {
    SpiderMiningConfig {
        support_threshold: 2,
        max_leaves: 6,
        ..SpiderMiningConfig::default()
    }
}

fn spider_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("spider_mining");
    group.sample_size(10);
    for &n in &[500usize, 1500, 3000] {
        let graph = bench_graph(n);
        graph.csr();
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            b.iter(|| SpiderCatalog::mine(g, &bench_config()).len())
        });
    }
    group.finish();
}

fn spider_catalog_ba(c: &mut Criterion) {
    let mut group = c.benchmark_group("spider_catalog_ba");
    group.sample_size(10);
    // The 3000-vertex point mines tens of millions of spiders under this
    // config; 2000 is the "mid-size" configuration the targets refer to.
    let sizes = [500usize, 1000, 2000];
    for &n in &sizes {
        let (graph, _) = bench_ba_graph(n);
        graph.csr();
        let fast = SpiderCatalog::mine(&graph, &bench_config());
        let slow = reference::mine(&graph, &bench_config());
        assert!(
            reference::catalogs_equal(&fast, &slow),
            "CSR and reference catalogs must agree at n = {n}"
        );
        group.bench_with_input(BenchmarkId::new("csr", n), &graph, |b, g| {
            b.iter(|| SpiderCatalog::mine(g, &bench_config()).len())
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &graph, |b, g| {
            b.iter(|| reference::mine(g, &bench_config()).len())
        });
    }
    group.finish();
    for &n in &sizes {
        let csr = criterion::measurement(&format!("spider_catalog_ba/csr/{n}"));
        let r = criterion::measurement(&format!("spider_catalog_ba/reference/{n}"));
        if let (Some(csr), Some(r)) = (csr, r) {
            criterion::record_metric(&format!("spider_catalog_ba/speedup/{n}"), r / csr);
        }
    }
}

fn spider_support_ba(c: &mut Criterion) {
    let mut group = c.benchmark_group("spider_support_ba");
    group.sample_size(10);
    let sizes = [1000usize, 2000];
    for &n in &sizes {
        let (graph, _) = bench_ba_graph(n);
        graph.csr();
        // A moderately sized catalog so the per-check cost dominates.
        let catalog = SpiderCatalog::mine(
            &graph,
            &SpiderMiningConfig {
                support_threshold: 4,
                max_leaves: 4,
                ..SpiderMiningConfig::default()
            },
        );
        for v in graph.vertices() {
            assert_eq!(
                catalog.matching_at(&graph, v),
                reference::matching_at(&catalog, &graph, v),
                "support sets must agree at {v:?}"
            );
        }
        group.bench_with_input(BenchmarkId::new("csr", n), &graph, |b, g| {
            b.iter(|| {
                g.vertices()
                    .map(|v| catalog.matching_at(g, v).len())
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &graph, |b, g| {
            b.iter(|| {
                g.vertices()
                    .map(|v| reference::matching_at(&catalog, g, v).len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
    for &n in &sizes {
        let csr = criterion::measurement(&format!("spider_support_ba/csr/{n}"));
        let r = criterion::measurement(&format!("spider_support_ba/reference/{n}"));
        if let (Some(csr), Some(r)) = (csr, r) {
            criterion::record_metric(&format!("spider_support_ba/speedup/{n}"), r / csr);
        }
    }
}

criterion_group!(benches, spider_mining, spider_catalog_ba, spider_support_ba);
criterion_main!(benches);
