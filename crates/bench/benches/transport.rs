//! Remote-transport benchmarks (ISSUE 7): loopback request throughput at
//! several client counts, first-pattern latency over the wire vs in
//! process, and the per-pattern streaming overhead. Results land in the
//! JSON summary selected by `$BENCH_JSON` (`BENCH_transport.json` in CI) as:
//!
//! * `transport/requests/<c>` — `c` concurrent clients (1 / 8 / 64), each
//!   submitting one cache-served request and draining its stream; the
//!   derived `transport/requests_per_sec/clients_<c>` is the edge
//!   throughput (admission + framing + streaming, not mining — duplicates
//!   are cache hits by design).
//! * `transport/roundtrip/cached` vs `transport/inprocess/cached` — one
//!   cache-served submit→outcome over loopback against the same through
//!   the in-process `JobHandle`; the derived
//!   `transport/stream_overhead_per_pattern_ns` divides the difference by
//!   the per-run pattern count: the wire cost of streaming one accepted
//!   pattern (encode + frame + checksum + loopback + decode).
//! * `transport/first_pattern/remote_ns` vs
//!   `transport/first_pattern/in_process_ns` — submit→first-accepted-
//!   pattern latency on fresh (uncached) runs, measured directly over a
//!   handful of runs; the derived `transport/first_pattern/overhead_ns` is
//!   what the wire adds to time-to-first-result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spidermine_bench::bench_ba_graph;
use spidermine_engine::{Algorithm, GraphSource, MineContext, MineRequest, Miner};
use spidermine_service::{MiningService, ServiceConfig};
use spidermine_transport::{MiningClient, MiningServer, TransportConfig};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Host size: small enough that fresh mines keep the bench time sane.
const MINE_VERTICES: usize = 150;

/// Concurrent-client counts for the throughput section.
const CLIENTS: [usize; 3] = [1, 8, 64];

/// Fresh runs averaged for the first-pattern latency comparison.
const LATENCY_RUNS: u64 = 8;

fn mine_request(seed: u64) -> MineRequest {
    MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(3)
        .d_max(6)
        .seed(seed)
}

fn transport(c: &mut Criterion) {
    let service = Arc::new(MiningService::new(ServiceConfig {
        dispatchers: 2,
        queue_depth: 256,
        cache_capacity: 256,
        max_threads_per_job: None,
        ..ServiceConfig::default()
    }));
    service
        .catalog()
        .register("bench", bench_ba_graph(MINE_VERTICES).0);
    let server = MiningServer::bind(
        "127.0.0.1:0",
        service.clone(),
        TransportConfig {
            max_connections: 2 * CLIENTS[2],
            max_inflight_per_client: 8,
            ..TransportConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();

    // Warm the cache entry every duplicate request will hit.
    let warm = service
        .submit("bench", mine_request(0))
        .expect("submit")
        .wait()
        .expect("warm mine");
    let patterns_per_run = warm.patterns.len().max(1);

    let mut group = c.benchmark_group("transport");

    // --- Requests/sec at 1 / 8 / 64 concurrent clients --------------------
    // Connections persist across iterations (the protocol's intended use);
    // each iteration is one cache-served request per client, submitted
    // concurrently and drained to the outcome.
    for &count in &CLIENTS {
        let clients: Vec<MiningClient> = (0..count)
            .map(|i| MiningClient::connect(addr, &format!("bench-{i}")).expect("connect"))
            .collect();
        group.sample_size(if count == 1 { 20 } else { 10 });
        group.bench_with_input(BenchmarkId::new("requests", count), &count, |b, _| {
            b.iter(|| {
                let threads: Vec<_> = clients
                    .iter()
                    .map(|client| {
                        let client = client.clone();
                        std::thread::spawn(move || {
                            client
                                .submit("bench", &mine_request(0))
                                .expect("submit")
                                .outcome()
                                .expect("cached mine")
                                .outcome
                                .patterns
                                .len()
                        })
                    })
                    .collect();
                threads
                    .into_iter()
                    .map(|t| t.join().expect("client thread"))
                    .sum::<usize>()
            })
        });
    }

    // --- Cached round trip: wire vs in-process ----------------------------
    let client = MiningClient::connect(addr, "bench-rt").expect("connect");
    group.sample_size(20);
    group.bench_function("roundtrip/cached", |b| {
        b.iter(|| {
            client
                .submit("bench", &mine_request(0))
                .expect("submit")
                .outcome()
                .expect("cached mine")
                .outcome
                .patterns
                .len()
        })
    });
    group.bench_function("inprocess/cached", |b| {
        b.iter(|| {
            service
                .submit("bench", mine_request(0))
                .expect("submit")
                .wait()
                .expect("cached mine")
                .patterns
                .len()
        })
    });
    group.finish();

    // --- First-pattern latency on fresh runs, wire vs in-process ----------
    // Measured directly (not through the harness) because the interesting
    // instant is *inside* an iteration: submit → first accepted pattern.
    // Fresh seeds keep the cache out of the picture; the run is drained
    // after the stopwatch stops so the next run starts on an idle service.
    // The same seed sequence on both sides, so each pair compares identical
    // runs (mining time to the first pattern varies by seed). The remote
    // side never submitted these seeds, so its cache stays out of play; the
    // in-process side bypasses the service entirely.
    let mut remote_total = Duration::ZERO;
    for run in 0..LATENCY_RUNS {
        let seed = 1000 + run;
        let start = Instant::now();
        let mut job = client.submit("bench", &mine_request(seed)).expect("submit");
        let first = job.next();
        remote_total += start.elapsed();
        assert!(first.is_some(), "fresh run streamed no patterns");
        job.outcome().expect("fresh mine");
    }
    let host = bench_ba_graph(MINE_VERTICES).0;
    let mut in_process_total = Duration::ZERO;
    for run in 0..LATENCY_RUNS {
        let seed = 1000 + run;
        let first: Arc<Mutex<Option<Duration>>> = Arc::new(Mutex::new(None));
        let start = Instant::now();
        let mut ctx = MineContext::new().on_pattern({
            let first = first.clone();
            move |_| {
                let mut first = first.lock().expect("first-pattern lock");
                if first.is_none() {
                    *first = Some(start.elapsed());
                }
            }
        });
        mine_request(seed)
            .build()
            .expect("valid request")
            .mine(&GraphSource::Single(&host), &mut ctx)
            .expect("fresh mine");
        let first = first.lock().expect("first-pattern lock").take();
        in_process_total += first.expect("fresh run emitted no patterns");
    }
    let remote_ns = remote_total.as_nanos() as f64 / LATENCY_RUNS as f64;
    let in_process_ns = in_process_total.as_nanos() as f64 / LATENCY_RUNS as f64;
    criterion::record_metric("transport/first_pattern/remote_ns", remote_ns);
    criterion::record_metric("transport/first_pattern/in_process_ns", in_process_ns);
    criterion::record_metric(
        "transport/first_pattern/overhead_ns",
        remote_ns - in_process_ns,
    );

    // --- Derived metrics ---------------------------------------------------
    for &count in &CLIENTS {
        if let Some(ns) = criterion::measurement(&format!("transport/requests/{count}")) {
            criterion::record_metric(
                &format!("transport/requests_per_sec/clients_{count}"),
                count as f64 * 1e9 / ns,
            );
        }
    }
    if let (Some(wire), Some(local)) = (
        criterion::measurement("transport/roundtrip/cached"),
        criterion::measurement("transport/inprocess/cached"),
    ) {
        criterion::record_metric(
            "transport/stream_overhead_per_pattern_ns",
            (wire - local) / patterns_per_run as f64,
        );
    }
    let metrics = service.metrics();
    criterion::record_metric("transport/final_cache_hits", metrics.cache.hits as f64);
    criterion::record_metric("transport/final_completed", metrics.completed as f64);
    let streamed: u64 = metrics
        .clients
        .iter()
        .map(|(_, s)| s.patterns_streamed)
        .sum();
    criterion::record_metric("transport/final_patterns_streamed", streamed as f64);
}

criterion_group!(benches, transport);
criterion_main!(benches);
