//! Benchmarks the synthetic graph generators (dataset construction cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_bench::BENCH_SEED;
use spidermine_graph::generate;

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("erdos_renyi", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
                generate::erdos_renyi_average_degree(&mut rng, n, 3.0, 100).edge_count()
            })
        });
        group.bench_with_input(BenchmarkId::new("barabasi_albert", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
                generate::barabasi_albert(&mut rng, n, 2, 100).edge_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, generators);
criterion_main!(benches);
