//! Engine-redesign benchmarks: catalog construction before/after the
//! `PatternStore`-style arena (ISSUE 2's headline number), plus an
//! end-to-end run through the unified `Miner` API.
//!
//! PR 1 flagged catalog construction as allocation-bound: every mined spider
//! owned a leaf-label `Vec` and a head `Vec`. The `pr1` module below retains
//! that owned-`Vec` implementation verbatim (same CSR merge-joins, same
//! parallel splicing — only the storage and expansion buffers differ) so the
//! before/after ratio is measured in a single run on the same machine.
//! Results land in the JSON summary selected by `$BENCH_JSON`
//! (`BENCH_engine.json` in CI) as `engine_catalog/{arena,pr1,speedup}/<n>`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spidermine_bench::bench_ba_graph;
use spidermine_engine::{Algorithm, GraphSource, MineContext, MineRequest, Miner};
use spidermine_mining::spider::{SpiderCatalog, SpiderMiningConfig};

/// The PR 1 catalog implementation: identical enumeration over the CSR
/// histogram rows, but one owned `Vec` pair per spider and one `Vec` pair per
/// candidate during expansion — the allocation pattern the arena removed.
mod pr1 {
    use rayon::prelude::*;
    use rustc_hash::FxHashMap;
    use spidermine_graph::graph::{LabeledGraph, VertexId};
    use spidermine_graph::Label;
    use spidermine_mining::spider::SpiderMiningConfig;

    pub struct Spider {
        pub head_label: Label,
        pub leaf_labels: Vec<Label>,
        pub heads: Vec<VertexId>,
    }

    #[derive(Default)]
    pub struct OwnedCatalog {
        pub spiders: Vec<Spider>,
        by_head_label: FxHashMap<Label, Vec<usize>>,
    }

    type NewSpider = (Label, Vec<Label>, Vec<VertexId>);

    impl OwnedCatalog {
        pub fn mine(graph: &LabeledGraph, config: &SpiderMiningConfig) -> Self {
            let sigma = config.support_threshold.max(1);
            let csr = graph.csr();
            let mut catalog = OwnedCatalog::default();
            const PAR_BLOCK: usize = 1024;

            if config.max_leaves == 0 || graph.vertex_count() == 0 {
                return catalog;
            }
            let classes: Vec<(Label, &[VertexId])> = csr
                .labels_with_vertices()
                .filter(|(_, heads)| heads.len() >= sigma)
                .collect();
            let mut frontier: Vec<usize> = Vec::new();
            'seed: for block in classes.chunks(PAR_BLOCK) {
                let expanded: Vec<Vec<NewSpider>> = block
                    .par_iter()
                    .map(|&(label, heads)| extend_spider(graph, label, &[], heads, sigma))
                    .collect();
                for children in expanded {
                    for (head_label, leaf_labels, heads) in children {
                        if catalog.spiders.len() >= config.max_spiders {
                            break 'seed;
                        }
                        frontier.push(catalog.push(head_label, leaf_labels, heads));
                    }
                }
            }
            let mut leaves = 1;
            while !frontier.is_empty() && leaves < config.max_leaves {
                leaves += 1;
                if catalog.spiders.len() >= config.max_spiders {
                    break;
                }
                let mut next: Vec<usize> = Vec::new();
                'level: for block in frontier.chunks(PAR_BLOCK) {
                    let expanded: Vec<Vec<NewSpider>> = block
                        .par_iter()
                        .map(|&id| {
                            let spider = &catalog.spiders[id];
                            extend_spider(
                                graph,
                                spider.head_label,
                                &spider.leaf_labels,
                                &spider.heads,
                                sigma,
                            )
                        })
                        .collect();
                    for children in expanded {
                        for (head_label, leaf_labels, heads) in children {
                            if catalog.spiders.len() >= config.max_spiders {
                                break 'level;
                            }
                            next.push(catalog.push(head_label, leaf_labels, heads));
                        }
                    }
                }
                frontier = next;
            }
            catalog
        }

        fn push(
            &mut self,
            head_label: Label,
            leaf_labels: Vec<Label>,
            heads: Vec<VertexId>,
        ) -> usize {
            let id = self.spiders.len();
            self.by_head_label.entry(head_label).or_default().push(id);
            self.spiders.push(Spider {
                head_label,
                leaf_labels,
                heads,
            });
            id
        }
    }

    fn extend_spider(
        graph: &LabeledGraph,
        head_label: Label,
        leaf_labels: &[Label],
        heads: &[VertexId],
        sigma: usize,
    ) -> Vec<NewSpider> {
        let csr = graph.csr();
        let max_leaf = leaf_labels.last().copied();
        let max_leaf_run = max_leaf
            .map(|ml| leaf_labels.iter().rev().take_while(|&&l| l == ml).count() as u32)
            .unwrap_or(0);
        let required = |label: Label| {
            if Some(label) == max_leaf {
                max_leaf_run + 1
            } else {
                1
            }
        };

        // Pass 1 — candidate labels.
        let mut candidates: Vec<Label> = Vec::new();
        for &h in heads {
            let row = csr.neighbor_label_histogram(h);
            let start = match max_leaf {
                Some(ml) => row.partition_point(|&(l, _)| l < ml),
                None => 0,
            };
            for &(label, count) in &row[start..] {
                if count >= required(label) {
                    candidates.push(label);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            return Vec::new();
        }

        // Pass 2 — survivors per candidate, one owned Vec each.
        let mut survivors: Vec<Vec<VertexId>> = vec![Vec::new(); candidates.len()];
        for &h in heads {
            let row = csr.neighbor_label_histogram(h);
            let start = row.partition_point(|&(l, _)| l < candidates[0]);
            let mut j = 0;
            for &(label, count) in &row[start..] {
                while j < candidates.len() && candidates[j] < label {
                    j += 1;
                }
                if j == candidates.len() {
                    break;
                }
                if candidates[j] == label && count >= required(label) {
                    survivors[j].push(h);
                }
            }
        }

        let mut children = Vec::new();
        for (cand, surviving) in candidates.into_iter().zip(survivors) {
            if surviving.len() < sigma {
                continue;
            }
            let mut new_leaves = Vec::with_capacity(leaf_labels.len() + 1);
            new_leaves.extend_from_slice(leaf_labels);
            new_leaves.push(cand);
            children.push((head_label, new_leaves, surviving));
        }
        children
    }
}

fn bench_config() -> SpiderMiningConfig {
    SpiderMiningConfig {
        support_threshold: 2,
        max_leaves: 6,
        ..SpiderMiningConfig::default()
    }
}

fn engine_catalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_catalog");
    group.sample_size(10);
    let sizes = [500usize, 1000, 2000];
    for &n in &sizes {
        let (graph, _) = bench_ba_graph(n);
        graph.csr();
        // The arena-backed catalog must agree spider-for-spider with the
        // retained PR 1 implementation before it is worth timing.
        let arena = SpiderCatalog::mine(&graph, &bench_config());
        let owned = pr1::OwnedCatalog::mine(&graph, &bench_config());
        assert_eq!(arena.len(), owned.spiders.len(), "catalog size at n = {n}");
        for (a, b) in arena.spiders().zip(&owned.spiders) {
            assert_eq!(a.head_label, b.head_label);
            assert_eq!(a.leaf_labels, b.leaf_labels.as_slice());
            assert_eq!(a.heads, b.heads.as_slice());
        }
        group.bench_with_input(BenchmarkId::new("arena", n), &graph, |b, g| {
            b.iter(|| SpiderCatalog::mine(g, &bench_config()).len())
        });
        group.bench_with_input(BenchmarkId::new("pr1", n), &graph, |b, g| {
            b.iter(|| pr1::OwnedCatalog::mine(g, &bench_config()).spiders.len())
        });
    }
    group.finish();
    let mut ratios: Vec<f64> = Vec::new();
    for &n in &sizes {
        let arena = criterion::measurement(&format!("engine_catalog/arena/{n}"));
        let pr1 = criterion::measurement(&format!("engine_catalog/pr1/{n}"));
        if let (Some(arena), Some(pr1)) = (arena, pr1) {
            criterion::record_metric(&format!("engine_catalog/speedup/{n}"), pr1 / arena);
            ratios.push(pr1 / arena);
        }
    }
    // The headline before/after number: geometric mean across the sizes
    // (robust against the per-size noise of a shared 1-core runner).
    if !ratios.is_empty() {
        let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        criterion::record_metric("engine_catalog/speedup/geomean", geomean);
    }
}

fn engine_mine_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_mine");
    // The n = 2000 mine runs ~1.5 min per iteration on a 1-core runner; the
    // minimum sample count keeps the CI bench job's wall-clock sane.
    group.sample_size(3);
    let miner = MineRequest::new(Algorithm::SpiderMine)
        .support_threshold(2)
        .k(5)
        .d_max(6)
        .seed(17)
        .build()
        .expect("valid request");
    // Same sizes as the catalog/eval benches, so the end-to-end series tells
    // the same scaling story (n = 500 is the historical single point).
    for n in [500usize, 1000, 2000] {
        let (graph, _) = bench_ba_graph(n);
        graph.csr();
        group.bench_with_input(BenchmarkId::new("spidermine", n), &graph, |b, g| {
            b.iter(|| {
                miner
                    .mine(&GraphSource::Single(g), &mut MineContext::new())
                    .expect("single graph accepted")
                    .patterns
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engine_catalog, engine_mine_end_to_end);
criterion_main!(benches);
