//! Ablation: cost of the three single-graph support measures over a large
//! embedding list (thousands of embeddings of a frequent 2-path).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_graph::label::Label;
use spidermine_graph::{generate, iso, LabeledGraph};
use spidermine_mining::support::SupportMeasure;

fn support_measures(c: &mut Criterion) {
    // Few labels so the 2-path pattern is genuinely frequent: the measures
    // are then exercised on thousands of embeddings, which is the regime the
    // miners hit.
    let mut rng = ChaCha8Rng::seed_from_u64(0xbe_5eed);
    let host = generate::erdos_renyi_average_degree(&mut rng, 2000, 6.0, 2);
    let pattern = LabeledGraph::from_parts(&[Label(0), Label(1), Label(0)], &[(0, 1), (1, 2)]);
    let embeddings = iso::find_embeddings(&pattern, &host, 20_000);
    assert!(
        embeddings.len() >= 1_000,
        "support bench needs a frequent pattern, got {} embeddings",
        embeddings.len()
    );
    let mut group = c.benchmark_group("support_measures");
    for (name, measure) in [
        ("embedding_count", SupportMeasure::EmbeddingCount),
        ("minimum_image", SupportMeasure::MinimumImage),
        ("greedy_disjoint", SupportMeasure::GreedyDisjoint),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| measure.compute(pattern.vertex_count(), &embeddings))
        });
    }
    group.finish();
}

criterion_group!(benches, support_measures);
criterion_main!(benches);
