//! Ablation: cost of the three single-graph support measures.

use criterion::{criterion_group, criterion_main, Criterion};
use spidermine_bench::bench_graph;
use spidermine_graph::iso;
use spidermine_graph::label::Label;
use spidermine_graph::LabeledGraph;
use spidermine_mining::support::SupportMeasure;

fn support_measures(c: &mut Criterion) {
    let host = bench_graph(2000);
    // A small, fairly frequent pattern: a 2-path over two common labels.
    let pattern = LabeledGraph::from_parts(&[Label(0), Label(1), Label(0)], &[(0, 1), (1, 2)]);
    let embeddings = iso::find_embeddings(&pattern, &host, 5_000);
    let mut group = c.benchmark_group("support_measures");
    for (name, measure) in [
        ("embedding_count", SupportMeasure::EmbeddingCount),
        ("minimum_image", SupportMeasure::MinimumImage),
        ("greedy_disjoint", SupportMeasure::GreedyDisjoint),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| measure.compute(pattern.vertex_count(), &embeddings))
        });
    }
    group.finish();
}

criterion_group!(benches, support_measures);
criterion_main!(benches);
