//! Eval-layer benchmarks: the incremental extension engine against the
//! retained scratch matcher on the growth/support loop (ISSUE 3's headline
//! number).
//!
//! The workload replays what every edge-growth miner does per candidate:
//! grow a pattern one edge at a time toward the planted 12-vertex pattern of
//! the BA benchmark graph, and evaluate MNI support at every step. The
//! **incremental** path maintains the embedding set with
//! `iso::extend_embeddings` (one pass over the parent's flat rows per step,
//! support off the flat buffer); the **scratch** path re-runs the indexed
//! VF2 matcher `iso::find_embeddings` on each child pattern — exactly what
//! the pre-eval-layer code did at its 36 call sites. Both paths are checked
//! for set-identical embeddings before timing. Results land in the JSON
//! summary selected by `$BENCH_JSON` (`BENCH_eval.json` in CI) as
//! `eval_growth/{incremental,scratch,speedup}/<n>` plus
//! `eval_growth/speedup/geomean` — the ISSUE-3 acceptance bar is a ≥ 3×
//! geomean, measured in this one run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spidermine_bench::bench_ba_graph;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::iso::{self, EdgeExtension};
use spidermine_mining::support::SupportMeasure;

/// Embedding cap shared by both paths (matches the default mining caps'
/// order of magnitude while keeping the scratch path's worst steps bounded).
const CAP: usize = 50_000;

/// Decomposes `pattern` into a growth chain: a start edge plus one
/// [`EdgeExtension`] per remaining pattern edge, each connected to the part
/// already grown (forward when it brings a new vertex, closing otherwise).
fn growth_chain(pattern: &LabeledGraph) -> (LabeledGraph, Vec<EdgeExtension>) {
    let mut edges: Vec<(VertexId, VertexId)> = pattern.edges().collect();
    let (u0, v0) = edges.remove(0);
    let start = LabeledGraph::from_parts(&[pattern.label(u0), pattern.label(v0)], &[(0, 1)]);
    // Map from the pattern's vertex ids to the chain pattern's dense ids.
    let mut mapped: Vec<Option<u32>> = vec![None; pattern.vertex_count()];
    mapped[u0.index()] = Some(0);
    mapped[v0.index()] = Some(1);
    let mut next_id = 2u32;
    let mut chain = Vec::with_capacity(edges.len());
    while !edges.is_empty() {
        let pos = edges
            .iter()
            .position(|&(u, v)| mapped[u.index()].is_some() || mapped[v.index()].is_some())
            .expect("pattern is connected");
        let (u, v) = edges.remove(pos);
        match (mapped[u.index()], mapped[v.index()]) {
            (Some(cu), Some(cv)) => chain.push(EdgeExtension::ClosingEdge {
                u: VertexId(cu),
                v: VertexId(cv),
            }),
            (Some(cu), None) => {
                chain.push(EdgeExtension::NewVertex {
                    anchor: VertexId(cu),
                    label: pattern.label(v),
                });
                mapped[v.index()] = Some(next_id);
                next_id += 1;
            }
            (None, Some(cv)) => {
                chain.push(EdgeExtension::NewVertex {
                    anchor: VertexId(cv),
                    label: pattern.label(u),
                });
                mapped[u.index()] = Some(next_id);
                next_id += 1;
            }
            (None, None) => unreachable!("position() guarantees a mapped endpoint"),
        }
    }
    (start, chain)
}

/// The incremental growth/support loop: one `extend_embeddings` pass per
/// chain step, support off the flat rows. Returns the summed per-step MNI
/// supports (consumed so nothing is optimized away).
fn run_incremental(host: &LabeledGraph, start: &LabeledGraph, chain: &[EdgeExtension]) -> usize {
    let mut arity = start.vertex_count();
    let mut flat: Vec<VertexId> = iso::find_embeddings(start, host, CAP)
        .into_iter()
        .flatten()
        .collect();
    let mut total = SupportMeasure::MinimumImage.compute_flat(arity, &flat);
    for &ext in chain {
        let mut out = Vec::new();
        iso::extend_embeddings(host, arity, &flat, ext, CAP, &mut out);
        if let EdgeExtension::NewVertex { .. } = ext {
            arity += 1;
        }
        flat = out;
        total += SupportMeasure::MinimumImage.compute_flat(arity, &flat);
    }
    total
}

/// The retained scratch path: re-match every chain child from scratch with
/// the indexed VF2 matcher, as the pre-eval-layer call sites did.
fn run_scratch(host: &LabeledGraph, start: &LabeledGraph, chain: &[EdgeExtension]) -> usize {
    let mut pattern = start.clone();
    let embeddings = iso::find_embeddings(&pattern, host, CAP);
    let mut total = SupportMeasure::MinimumImage.compute(pattern.vertex_count(), &embeddings);
    for &ext in chain {
        pattern = iso::apply_edge_extension(&pattern, ext);
        let embeddings = iso::find_embeddings(&pattern, host, CAP);
        total += SupportMeasure::MinimumImage.compute(pattern.vertex_count(), &embeddings);
    }
    total
}

/// Asserts both paths produce set-identical embeddings at every chain step
/// (the proptested ISSUE-3 invariant), so the timed comparison is honest.
fn assert_paths_agree(host: &LabeledGraph, start: &LabeledGraph, chain: &[EdgeExtension]) {
    let mut arity = start.vertex_count();
    let mut flat: Vec<VertexId> = iso::find_embeddings(start, host, usize::MAX)
        .into_iter()
        .flatten()
        .collect();
    let mut pattern = start.clone();
    for &ext in chain {
        let mut out = Vec::new();
        iso::extend_embeddings(host, arity, &flat, ext, usize::MAX, &mut out);
        if let EdgeExtension::NewVertex { .. } = ext {
            arity += 1;
        }
        flat = out;
        pattern = iso::apply_edge_extension(&pattern, ext);
        let mut incremental: Vec<Vec<VertexId>> =
            flat.chunks_exact(arity).map(<[VertexId]>::to_vec).collect();
        incremental.sort_unstable();
        let mut scratch = iso::find_embeddings(&pattern, host, usize::MAX);
        scratch.sort_unstable();
        assert_eq!(incremental, scratch, "paths diverge on the growth chain");
    }
}

fn eval_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_growth");
    group.sample_size(10);
    let sizes = [500usize, 1000, 2000];
    for &n in &sizes {
        let (host, planted) = bench_ba_graph(n);
        host.csr();
        let (start, chain) = growth_chain(&planted);
        assert_paths_agree(&host, &start, &chain);
        let incremental = run_incremental(&host, &start, &chain);
        assert_eq!(
            incremental,
            run_scratch(&host, &start, &chain),
            "per-step supports must agree at n = {n}"
        );
        group.bench_with_input(BenchmarkId::new("incremental", n), &host, |b, h| {
            b.iter(|| run_incremental(h, &start, &chain))
        });
        group.bench_with_input(BenchmarkId::new("scratch", n), &host, |b, h| {
            b.iter(|| run_scratch(h, &start, &chain))
        });
    }
    group.finish();
    let mut ratios: Vec<f64> = Vec::new();
    for &n in &sizes {
        let incremental = criterion::measurement(&format!("eval_growth/incremental/{n}"));
        let scratch = criterion::measurement(&format!("eval_growth/scratch/{n}"));
        if let (Some(incremental), Some(scratch)) = (incremental, scratch) {
            criterion::record_metric(&format!("eval_growth/speedup/{n}"), scratch / incremental);
            ratios.push(scratch / incremental);
        }
    }
    // The headline incremental-vs-scratch number: geometric mean across the
    // sizes (robust against per-size noise on a shared 1-core runner).
    if !ratios.is_empty() {
        let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        criterion::record_metric("eval_growth/speedup/geomean", geomean);
    }
}

criterion_group!(benches, eval_growth);
criterion_main!(benches);
