//! Ablation: spider-set pruning vs direct VF2 isomorphism testing
//! (the paper's Section 4.2.2 claim).

use criterion::{criterion_group, criterion_main, Criterion};
use spidermine::spider_set::{PrunedIsoOracle, SpiderSet};
use spidermine_bench::bench_pattern_pair;
use spidermine_graph::iso;

fn spider_set_vs_vf2(c: &mut Criterion) {
    let (p, q) = bench_pattern_pair(24);
    // A structurally different pattern (one extra vertex + edge) for the
    // negative case.
    let mut different = p.clone();
    let n = different.vertex_count() as u32;
    let _ = different.add_vertex(p.label(spidermine_graph::VertexId(0)));
    different.add_edge(spidermine_graph::VertexId(0), spidermine_graph::VertexId(n));

    let mut group = c.benchmark_group("isomorphism_checking");
    group.bench_function("vf2_direct_isomorphic", |b| {
        b.iter(|| iso::are_isomorphic(&p, &q))
    });
    group.bench_function("vf2_direct_non_isomorphic", |b| {
        b.iter(|| iso::are_isomorphic(&p, &different))
    });
    group.bench_function("spider_set_prune_non_isomorphic", |b| {
        let sp = SpiderSet::of(&p, 1);
        let sd = SpiderSet::of(&different, 1);
        b.iter(|| {
            let mut oracle = PrunedIsoOracle::new();
            oracle.check(&p, &sp, &different, &sd)
        })
    });
    group.bench_function("spider_set_build", |b| b.iter(|| SpiderSet::of(&p, 1)));
    group.finish();
}

criterion_group!(benches, spider_set_vs_vf2);
criterion_main!(benches);
