//! Structured span tracing: per-job trace ids, span start/end/parent
//! events, and an optional bounded capture buffer for exporters.
//!
//! A **trace** is one job's journey through the system, identified by a
//! trace id minted at admission (or adopted from the wire, so a remote
//! client and the server share one trace). A **span** is a named interval
//! within a trace (`queued`, `running`, `stage:spiders`, …) with an id and a
//! parent span id, recorded as two events — [`EventKind::SpanStart`] and
//! [`EventKind::SpanEnd`] — because the two ends of a span routinely happen
//! on different threads (a job is admitted on the caller's thread and
//! dispatched on a worker's).
//!
//! Every recording function is gated on [`crate::armed`]: disarmed, each is
//! exactly one relaxed atomic load and allocates nothing (armed recording
//! into the flight-recorder rings allocates nothing either, beyond each
//! thread's one-time ring registration). Armed events always land in the
//! per-thread rings ([`crate::recorder`]); when a capture is active they are
//! additionally appended to a bounded global buffer that keeps the most
//! recent `CAPTURE_CAP` (65 536) events — that buffer is what the Chrome
//! trace-event exporter and the span-completeness tests read.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// What one recorded event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened; `parent` carries the enclosing span id (0 = root).
    SpanStart,
    /// A span closed; matched to its start by `span` id.
    SpanEnd,
    /// A point event within a trace; `parent` carries a free `u64` argument.
    Instant,
    /// A fault-injection rule fired (recorded by faultline integration).
    Fault,
    /// A retry was scheduled (job re-run, reconnect, resubmission).
    Retry,
}

impl EventKind {
    pub(crate) fn code(self) -> u64 {
        match self {
            EventKind::SpanStart => 0,
            EventKind::SpanEnd => 1,
            EventKind::Instant => 2,
            EventKind::Fault => 3,
            EventKind::Retry => 4,
        }
    }

    pub(crate) fn from_code(code: u64) -> Self {
        match code {
            0 => EventKind::SpanStart,
            1 => EventKind::SpanEnd,
            2 => EventKind::Instant,
            3 => EventKind::Fault,
            _ => EventKind::Retry,
        }
    }

    /// Short label used by the flight-recorder dump.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span-start",
            EventKind::SpanEnd => "span-end",
            EventKind::Instant => "instant",
            EventKind::Fault => "fault",
            EventKind::Retry => "retry",
        }
    }
}

/// One telemetry event. `Copy`, fits in five words plus the interned name —
/// cheap enough to push into a ring on every span edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Static event/span name (`queued`, `stage:spiders`, …).
    pub name: &'static str,
    /// The trace (job) this event belongs to; 0 = no trace (process-level
    /// fault/retry events).
    pub trace: u64,
    /// Span id for start/end events; 0 for instants.
    pub span: u64,
    /// Parent span id for starts; free argument for other kinds.
    pub parent: u64,
    /// Nanoseconds since the telemetry epoch.
    pub t_nanos: u64,
}

/// Mints a process-unique trace id. The top bits carry the process id so
/// ids minted on a client and on a server (both sides mint when no id
/// arrives over the wire) are distinguishable in a merged trace.
pub fn next_trace_id() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    let next = NEXT.get_or_init(|| AtomicU64::new((u64::from(std::process::id()) << 32) | 1));
    next.fetch_add(1, Ordering::Relaxed)
}

/// Mints a span id (unique within the process; 0 is reserved for "no
/// span").
pub fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Records a fully-specified event at an explicit timestamp. All the typed
/// helpers below funnel through here; callers have already passed the armed
/// gate.
pub(crate) fn record_at(
    kind: EventKind,
    name: &'static str,
    trace: u64,
    span: u64,
    parent: u64,
    t_nanos: u64,
) {
    let event = Event {
        kind,
        name,
        trace,
        span,
        parent,
        t_nanos,
    };
    crate::recorder::push(event);
    if CAPTURE_ON.load(Ordering::Relaxed) {
        let mut buf = capture().lock().expect("capture lock");
        if buf.len() == CAPTURE_CAP {
            buf.pop_front();
        }
        buf.push_back(event);
    }
}

#[inline]
fn record(kind: EventKind, name: &'static str, trace: u64, span: u64, parent: u64) {
    record_at(kind, name, trace, span, parent, crate::now_nanos());
}

/// Opens a span and returns its id — or 0 when disarmed, which the matching
/// [`span_end`] treats as "record nothing". One relaxed load when disarmed.
#[inline]
pub fn span_start(name: &'static str, trace: u64, parent: u64) -> u64 {
    if !crate::armed() {
        return 0;
    }
    let id = next_span_id();
    record(EventKind::SpanStart, name, trace, id, parent);
    id
}

/// Closes the span opened by [`span_start`]. Accepts `span == 0` (the
/// disarmed sentinel) silently, so callers never need their own guard.
#[inline]
pub fn span_end(name: &'static str, trace: u64, span: u64) {
    if span == 0 || !crate::armed() {
        return;
    }
    record(EventKind::SpanEnd, name, trace, span, 0);
}

/// Records a closed interval in one call: a start back-dated to
/// `start_nanos` and an end at now, parented under `parent`. This is how
/// per-stage timings become spans — the mining loop measures a stage with a
/// plain `Instant` and reports it once at stage end.
#[inline]
pub fn span_complete(name: &'static str, trace: u64, parent: u64, start_nanos: u64) {
    if !crate::armed() {
        return;
    }
    let id = next_span_id();
    let end = crate::now_nanos();
    record_at(
        EventKind::SpanStart,
        name,
        trace,
        id,
        parent,
        start_nanos.min(end),
    );
    record_at(EventKind::SpanEnd, name, trace, id, 0, end);
}

/// Records a point event with a free `u64` argument.
#[inline]
pub fn instant(name: &'static str, trace: u64, arg: u64) {
    if !crate::armed() {
        return;
    }
    record(EventKind::Instant, name, trace, 0, arg);
}

/// An RAII span for intervals that begin and end on one thread. For spans
/// whose ends live on different threads (queued → dispatched), use
/// [`span_start`]/[`span_end`] with the id stored in the shared state.
#[must_use = "the span ends when the guard drops"]
pub struct SpanGuard {
    name: &'static str,
    trace: u64,
    id: u64,
}

/// Opens an RAII span; it ends when the returned guard drops.
#[inline]
pub fn span(name: &'static str, trace: u64, parent: u64) -> SpanGuard {
    SpanGuard {
        name,
        trace,
        id: span_start(name, trace, parent),
    }
}

impl SpanGuard {
    /// The span's id, for parenting children under it (0 when disarmed).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        span_end(self.name, self.trace, self.id);
    }
}

/// Capture keeps the most recent this-many events.
const CAPTURE_CAP: usize = 1 << 16;

static CAPTURE_ON: AtomicBool = AtomicBool::new(false);

fn capture() -> &'static Mutex<VecDeque<Event>> {
    static CAPTURE: OnceLock<Mutex<VecDeque<Event>>> = OnceLock::new();
    CAPTURE.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Clears the capture buffer and starts appending armed events to it (in
/// addition to the always-on flight-recorder rings). Bounded: only the most
/// recent 65 536 events are kept.
pub fn start_capture() {
    capture().lock().expect("capture lock").clear();
    CAPTURE_ON.store(true, Ordering::SeqCst);
}

/// Stops appending to the capture buffer (its contents stay readable).
pub fn stop_capture() {
    CAPTURE_ON.store(false, Ordering::SeqCst);
}

/// Drains and returns the captured events in recording order.
pub fn take_capture() -> Vec<Event> {
    capture().lock().expect("capture lock").drain(..).collect()
}

/// A copy of the captured events without draining them — what a serving
/// process exports on a `Trace` wire request while capture stays live.
pub fn capture_snapshot() -> Vec<Event> {
    capture()
        .lock()
        .expect("capture lock")
        .iter()
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_ne!(next_span_id(), 0);
        assert_ne!(next_span_id(), next_span_id());
    }

    #[test]
    fn disarmed_spans_record_nothing() {
        crate::disarm();
        start_capture();
        let s = span_start("quiet", 1, 0);
        assert_eq!(s, 0);
        span_end("quiet", 1, s);
        instant("quiet", 1, 7);
        span_complete("quiet", 1, 0, 0);
        drop(span("quiet", 1, 0));
        stop_capture();
        assert!(take_capture().is_empty());
    }

    #[test]
    fn armed_spans_balance_and_parent() {
        crate::arm();
        start_capture();
        let trace = next_trace_id();
        let root = span_start("job", trace, 0);
        let child = span("running", trace, root);
        let child_id = child.id();
        assert_ne!(child_id, 0);
        span_complete("stage:x", trace, child_id, crate::now_nanos());
        drop(child);
        span_end("job", trace, root);
        stop_capture();
        crate::disarm();
        let events: Vec<Event> = take_capture()
            .into_iter()
            .filter(|e| e.trace == trace)
            .collect();
        let starts: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanStart)
            .collect();
        let ends: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd)
            .collect();
        assert_eq!(starts.len(), 3);
        assert_eq!(ends.len(), 3);
        for start in &starts {
            assert!(
                ends.iter().any(|e| e.span == start.span),
                "unbalanced span {}",
                start.name
            );
        }
        let stage = starts.iter().find(|e| e.name == "stage:x").unwrap();
        assert_eq!(stage.parent, child_id);
        // Timestamps are monotone within the capture.
        for pair in events.windows(2) {
            assert!(pair[0].t_nanos <= pair[1].t_nanos);
        }
    }
}
