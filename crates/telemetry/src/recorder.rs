//! The flight recorder: per-thread lock-free ring buffers of recent
//! telemetry events, dumped as a readable report after the fact.
//!
//! Every armed event lands in the recording thread's own ring — a
//! fixed-size array of atomic words with a single writer (the owning
//! thread), so a push is five relaxed stores plus one release store of the
//! head, no locks, no allocation. Rings are registered in a global list the
//! first time a thread records; a dump walks that list and decodes the most
//! recent events from each ring.
//!
//! Dumps are **best-effort by design**: a reader races the owning thread,
//! so the oldest slot may be mid-overwrite when read. Event names are
//! stored as indices into an append-only intern table (never as raw
//! pointers in the ring), so a torn slot decodes to a wrong-but-safe event
//! rather than anything dangerous. That is the right trade for a crash
//! recorder — it runs when a dispatcher just panicked or a drain hung, and
//! must never deadlock or allocate its way into a second failure.

use crate::trace::{Event, EventKind};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events retained per thread. At ~10 events per job this holds the last
/// ~800 jobs a thread touched.
const RING_CAP: usize = 8192;

/// Words per ring slot: meta (kind + name index), trace, span, parent,
/// timestamp.
const WORDS: usize = 5;

/// Distinct static names the intern table holds. Slot 0 is reserved for
/// "unknown" so a torn meta word can never index out of range meaningfully.
const NAME_CAP: usize = 512;

static NAME_PTRS: [AtomicUsize; NAME_CAP] = [const { AtomicUsize::new(0) }; NAME_CAP];
static NAME_LENS: [AtomicUsize; NAME_CAP] = [const { AtomicUsize::new(0) }; NAME_CAP];

/// Serializes intern *insertions* only; lookups are lock-free loads.
static NAME_INSERT: Mutex<()> = Mutex::new(());

/// Maps a static name to its table index, inserting on first sight.
/// Lookup is a lock-free scan of published entries (pointer + length
/// equality — two distinct `&'static str`s with equal text may get two
/// slots, which is harmless). The table full case degrades to index 0.
fn intern(name: &'static str) -> u64 {
    let ptr = name.as_ptr() as usize;
    let scan = |upto: usize| {
        (1..upto).find(|&i| {
            NAME_PTRS[i].load(Ordering::Acquire) == ptr
                && NAME_LENS[i].load(Ordering::Acquire) == name.len()
        })
    };
    if let Some(i) = scan(NAME_CAP) {
        return i as u64;
    }
    let guard = NAME_INSERT.lock().unwrap_or_else(|e| e.into_inner());
    // Re-scan under the lock: another thread may have inserted it.
    if let Some(i) = scan(NAME_CAP) {
        return i as u64;
    }
    for i in 1..NAME_CAP {
        if NAME_PTRS[i].load(Ordering::Relaxed) == 0 {
            // Length first, pointer last with Release: a reader that sees
            // the pointer is guaranteed the matching length.
            NAME_LENS[i].store(name.len(), Ordering::Release);
            NAME_PTRS[i].store(ptr, Ordering::Release);
            drop(guard);
            return i as u64;
        }
    }
    0
}

/// The name behind a table index; "?" for the reserved/out-of-range case.
fn name_for(idx: u64) -> &'static str {
    let idx = idx as usize;
    if idx == 0 || idx >= NAME_CAP {
        return "?";
    }
    let ptr = NAME_PTRS[idx].load(Ordering::Acquire);
    if ptr == 0 {
        return "?";
    }
    let len = NAME_LENS[idx].load(Ordering::Acquire);
    // Safety: every nonzero entry was published from a `&'static str`
    // (pointer and length written together under the insert lock, pointer
    // last with Release), so the slice is valid UTF-8 for 'static.
    unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr as *const u8, len)) }
}

struct Ring {
    thread: String,
    head: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl Ring {
    fn new(thread: String) -> Self {
        Self {
            thread,
            head: AtomicU64::new(0),
            slots: (0..RING_CAP * WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Single-writer push: only the owning thread calls this.
    fn push(&self, event: Event) {
        let h = self.head.load(Ordering::Relaxed);
        let base = (h as usize % RING_CAP) * WORDS;
        let meta = event.kind.code() | (intern(event.name) << 8);
        self.slots[base].store(meta, Ordering::Relaxed);
        self.slots[base + 1].store(event.trace, Ordering::Relaxed);
        self.slots[base + 2].store(event.span, Ordering::Relaxed);
        self.slots[base + 3].store(event.parent, Ordering::Relaxed);
        self.slots[base + 4].store(event.t_nanos, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Best-effort copy of the most recent events, oldest first.
    fn recent(&self) -> (u64, Vec<Event>) {
        let h = self.head.load(Ordering::Acquire);
        let kept = h.min(RING_CAP as u64);
        let mut events = Vec::with_capacity(kept as usize);
        for i in (h - kept)..h {
            let base = (i as usize % RING_CAP) * WORDS;
            let meta = self.slots[base].load(Ordering::Relaxed);
            events.push(Event {
                kind: EventKind::from_code(meta & 0xff),
                name: name_for(meta >> 8),
                trace: self.slots[base + 1].load(Ordering::Relaxed),
                span: self.slots[base + 2].load(Ordering::Relaxed),
                parent: self.slots[base + 3].load(Ordering::Relaxed),
                t_nanos: self.slots[base + 4].load(Ordering::Relaxed),
            });
        }
        (h, events)
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

/// Appends an event to the calling thread's ring, registering the ring on
/// first use (the only allocation this module ever performs per thread).
pub(crate) fn push(event: Event) {
    LOCAL.with(|cell| {
        let ring = cell.get_or_init(|| {
            let name = std::thread::current()
                .name()
                .unwrap_or("unnamed")
                .to_owned();
            let ring = Arc::new(Ring::new(name));
            rings()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ring.clone());
            ring
        });
        ring.push(event);
    });
}

/// Records a fault-injection firing (faultline calls this when a rule
/// fires, tying the fault log into the same timeline as the spans).
#[inline]
pub fn fault_event(name: &'static str, trace: u64, arg: u64) {
    if !crate::armed() {
        return;
    }
    crate::trace::record_at(EventKind::Fault, name, trace, 0, arg, crate::now_nanos());
}

/// Records a retry decision (job re-run after a panic, reconnect,
/// resubmission).
#[inline]
pub fn retry_event(name: &'static str, trace: u64, arg: u64) {
    if !crate::armed() {
        return;
    }
    crate::trace::record_at(EventKind::Retry, name, trace, 0, arg, crate::now_nanos());
}

/// A best-effort copy of every thread's recent events:
/// `(thread name, total events ever recorded, retained events oldest-first)`.
pub fn recent_events() -> Vec<(String, u64, Vec<Event>)> {
    let rings = rings().lock().unwrap_or_else(|e| e.into_inner());
    rings
        .iter()
        .map(|ring| {
            let (total, events) = ring.recent();
            (ring.thread.clone(), total, events)
        })
        .collect()
}

/// How many trailing events per thread a dump prints.
const DUMP_TAIL: usize = 64;

/// Formats the flight recorder as a readable report: per thread, the most
/// recent events with relative timestamps. This is what gets printed on a
/// dispatcher panic, a drain timeout, or alongside a fired fault plan.
pub fn flight_dump() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "=== telemetry flight recorder ===");
    let threads = recent_events();
    if threads.is_empty() {
        let _ = writeln!(out, "(no events recorded — was telemetry armed?)");
        return out;
    }
    for (thread, total, events) in threads {
        let shown = events.len().min(DUMP_TAIL);
        let _ = writeln!(
            out,
            "thread {thread:?}: {total} events recorded, showing last {shown}"
        );
        for event in &events[events.len() - shown..] {
            let secs = event.t_nanos as f64 / 1e9;
            let _ = write!(
                out,
                "  [{secs:>12.6}s] {:<10} {:<24} trace={:#x}",
                event.kind.label(),
                event.name,
                event.trace
            );
            let _ = match event.kind {
                EventKind::SpanStart => {
                    writeln!(out, " span={} parent={}", event.span, event.parent)
                }
                EventKind::SpanEnd => writeln!(out, " span={}", event.span),
                _ => writeln!(out, " arg={}", event.parent),
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_the_tail() {
        let ring = Ring::new("t".into());
        for i in 0..(RING_CAP as u64 + 10) {
            ring.push(Event {
                kind: EventKind::Instant,
                name: "tick",
                trace: 1,
                span: 0,
                parent: i,
                t_nanos: i,
            });
        }
        let (total, events) = ring.recent();
        assert_eq!(total, RING_CAP as u64 + 10);
        assert_eq!(events.len(), RING_CAP);
        assert_eq!(events.first().unwrap().parent, 10);
        assert_eq!(events.last().unwrap().parent, RING_CAP as u64 + 9);
        assert_eq!(events.last().unwrap().name, "tick");
    }

    #[test]
    fn interning_is_stable_across_threads() {
        // One shared static: interning is by pointer identity, and distinct
        // literals with equal text are allowed to land in distinct slots.
        static NAME: &str = "stable-name";
        let a = intern(NAME);
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| intern(NAME)))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), a);
        }
        assert_eq!(name_for(a), "stable-name");
        assert_eq!(name_for(0), "?");
        assert_eq!(name_for(NAME_CAP as u64 + 7), "?");
    }

    #[test]
    fn dump_mentions_armed_threads() {
        crate::arm();
        crate::recorder::fault_event("test-fault", 0x42, 7);
        crate::disarm();
        let dump = flight_dump();
        assert!(dump.contains("telemetry flight recorder"));
        assert!(dump.contains("test-fault"), "{dump}");
    }
}
