//! The metrics registry: named counters, gauges, and log-bucketed latency
//! histograms, snapshotable without stopping writers.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of
//! cache-line-padded atomic cells. The intended discipline is *resolve once,
//! update forever*: looking a metric up by name takes the registry lock, so
//! hot paths resolve their handles at construction time and then touch only
//! the atomics. Two lookups of the same name return handles onto the same
//! cell, which is what makes the registry the single source of truth — the
//! scheduler's retry counter and the wire layer's retry stat can be the
//! *same* counter instead of two drifting copies.
//!
//! Naming conventions (also documented in DESIGN.md § Observability):
//! `snake_case`, unit-suffixed (`_total` for counters, `_nanos` for duration
//! histograms), with Prometheus-style labels inline in the name string
//! (`client_accepted_total{client="alice"}`). Snapshots iterate names in
//! sorted order, so text dumps are deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Pads an atomic out to its own cache line so unrelated hot counters never
/// false-share (same idea as the vendored rayon's `CachePadded`, re-stated
/// here because telemetry depends on nothing).
#[repr(align(64))]
#[derive(Default)]
struct Padded(AtomicU64);

/// A monotonically increasing counter. Clone freely; all clones share the
/// same cell.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<Padded>,
}

impl Counter {
    /// Adds `n`. One relaxed `fetch_add`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depths, in-flight jobs). Stored as
/// a `u64` that saturates at zero on decrement, because every gauge in this
/// workspace is a occupancy count.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<Padded>,
}

impl Gauge {
    /// Increments the gauge.
    #[inline]
    pub fn inc(&self) {
        self.cell.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the gauge, saturating at zero (a decrement racing a
    /// snapshot must never wrap to 2^64).
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .cell
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Sets the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.0.load(Ordering::Relaxed)
    }
}

/// Number of logarithmic buckets: bucket `b` counts observations with
/// `floor(log2(v)) == b - 1`, i.e. values in `[2^(b-1), 2^b)`; bucket 0
/// counts zeros. 64 buckets cover the entire `u64` range.
const BUCKETS: usize = 65;

struct HistogramCore {
    /// Per-bucket observation counts. Not padded: a histogram's buckets are
    /// written together from the same observation, so padding each would
    /// cost 4 KiB per histogram for no sharing win.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram of `u64` observations (by convention,
/// nanoseconds). Recording is four relaxed atomic operations; quantiles are
/// resolved from the bucket counts at snapshot time, so writers are never
/// stopped or serialized.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

/// The bucket a value lands in: 0 for zero, else `floor(log2(v)) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The representative value reported for a bucket: the geometric middle of
/// its `[2^(b-1), 2^b)` range, which bounds quantile error to ~sqrt(2)x.
fn bucket_mid(b: usize) -> u64 {
    if b == 0 {
        return 0;
    }
    let lo = 1u64 << (b - 1);
    lo + lo / 2
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let core = &self.core;
        core.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time view. Buckets are read with relaxed loads while
    /// writers keep writing, so the snapshot is approximate under
    /// concurrency — consistent enough for percentiles, never torn per
    /// field.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.core;
        let buckets: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Quantiles over what the buckets actually hold: the shared `count`
        // can momentarily run ahead of the bucket increments.
        let total: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (b, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_mid(b);
                }
            }
            bucket_mid(BUCKETS - 1)
        };
        HistogramSnapshot {
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// A resolved view of one histogram: exact count/sum/max, bucket-resolution
/// (~sqrt(2)x) p50/p95/p99.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact).
    pub max: u64,
    /// Median, to bucket resolution.
    pub p50: u64,
    /// 95th percentile, to bucket resolution.
    pub p95: u64,
    /// 99th percentile, to bucket resolution.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A named collection of metrics. The workspace uses two kinds of registry:
/// the process-wide [`crate::global`] one for cross-cutting subsystems, and
/// per-service instances so concurrent services (common in tests) keep
/// independent numbers.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first lookup. Takes the
    /// registry lock — resolve once, cache the handle.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter map lock");
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::default();
                map.insert(name.to_owned(), c.clone());
                c
            }
        }
    }

    /// The gauge named `name`, created on first lookup.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge map lock");
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge::default();
                map.insert(name.to_owned(), g.clone());
                g
            }
        }
    }

    /// The histogram named `name`, created on first lookup.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("histogram map lock");
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram::default();
                map.insert(name.to_owned(), h.clone());
                h
            }
        }
    }

    /// A point-in-time view of every registered metric, names sorted. The
    /// registry lock is held only to walk the name maps; the cells
    /// themselves are read with relaxed loads while writers keep writing.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map lock")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map lock")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Everything a [`Registry`] held at one instant, in sorted name order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// The value of counter `name`, zero if absent — convenient for tests
    /// and for rebuilding typed snapshot structs from a registry.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The value of gauge `name`, zero if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The snapshot of histogram `name`, empty if absent.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map_or_else(HistogramSnapshot::default, |(_, h)| *h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = Registry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(reg.snapshot().counter("x_total"), 3);
    }

    #[test]
    fn gauge_saturates_at_zero() {
        let g = Registry::new().gauge("depth");
        g.dec();
        assert_eq!(g.get(), 0);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_buckets() {
        let h = Registry::new().histogram("lat_nanos");
        // 90 fast observations around 1µs, 10 slow around 1ms.
        for _ in 0..90 {
            h.observe(1_000);
        }
        for _ in 0..10 {
            h.observe(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
        // p50 in the 1µs bucket (within sqrt(2)x), p99 in the 1ms bucket.
        assert!(s.p50 >= 512 && s.p50 < 2_048, "p50={}", s.p50);
        assert!(s.p99 >= 524_288 && s.p99 < 2_097_152, "p99={}", s.p99);
        assert!(s.p95 >= s.p50 && s.p99 >= s.p95);
        assert_eq!(s.mean(), (90 * 1_000 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn zero_observations_and_zero_values_are_sane() {
        let h = Histogram::default();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.observe(0);
        let s = h.snapshot();
        assert_eq!((s.count, s.p50, s.max), (1, 0, 0));
    }

    #[test]
    fn snapshot_is_sorted_and_selective() {
        let reg = Registry::new();
        reg.counter("b_total").inc();
        reg.counter("a_total").add(5);
        reg.gauge("g").set(2);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_total", "b_total"]);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("g"), 2);
    }

    #[test]
    fn concurrent_observation_never_tears() {
        let h = Histogram::default();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.observe((t + 1) * 1000 + n % 7);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for _ in 0..100 {
            let s = h.snapshot();
            assert!(s.p50 <= s.max.max(1) * 2);
        }
        stop.store(true, Ordering::Relaxed);
        let written: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(h.snapshot().count, written);
    }
}
