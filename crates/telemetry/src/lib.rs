//! Unified telemetry: a metrics registry, structured span tracing, and a
//! crash/fault flight recorder (ISSUE 10).
//!
//! The crate is deliberately dependency-free so every layer of the workspace
//! — graph I/O, the mining kernels, the scheduler, the wire transport, even
//! the fault injector — can hook into one instrumentation surface without
//! dependency cycles. It provides three cooperating pieces:
//!
//! * **[`registry`]** — named counters, gauges, and log-bucketed latency
//!   histograms (p50/p95/p99/max). Handles are cheap `Arc` clones that
//!   callers resolve once and cache; updates are single relaxed atomic
//!   operations, and a [`Registry::snapshot`](registry::Registry::snapshot)
//!   reads everything without stopping writers. Metrics are *always on*:
//!   they replace the ad-hoc atomics that the service, cache, and support
//!   oracle previously maintained, at identical cost.
//!
//! * **[`trace`]** — structured span events (start/end/parent) keyed by a
//!   per-job trace id minted at admission and propagated through scheduler
//!   lanes, mining stage loops, cache parking, and the wire protocol.
//!   Tracing follows faultline's arming discipline: every hook is a single
//!   relaxed [`AtomicBool`] load when disarmed, and allocates nothing in
//!   either state (enforced by a counting-allocator test).
//!
//! * **[`recorder`]** — per-thread lock-free ring buffers holding the most
//!   recent span/fault/retry events, dumped as a readable report on
//!   dispatcher panic, fault-plan firing, drain timeout, or on demand.
//!
//! Exposition lives in [`export`]: a Prometheus-style text dump of registry
//! snapshots and a Chrome trace-event (`chrome://tracing`) JSON exporter
//! over captured events.

pub mod export;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use export::{chrome_trace_json, prometheus_text};
pub use recorder::{fault_event, flight_dump, recent_events, retry_event};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot};
pub use trace::{
    capture_snapshot, instant, next_span_id, next_trace_id, span, span_complete, span_end,
    span_start, start_capture, stop_capture, take_capture, Event, EventKind, SpanGuard,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Whether span/flight-recorder hooks record anything. Metrics counters are
/// independent of this flag (they are the system's source of truth and cost
/// exactly what the atomics they replaced did).
static ARMED: AtomicBool = AtomicBool::new(false);

/// True while tracing and the flight recorder are armed. This is the *only*
/// check a disarmed hook performs — one relaxed atomic load.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms span tracing and the flight recorder. Also pins the clock epoch so
/// the first recorded timestamp is near zero.
pub fn arm() {
    epoch();
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms span tracing and the flight recorder; hooks return to their
/// single-load fast path. Already-recorded events stay readable.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// The process-wide monotonic epoch every timestamp is measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the telemetry epoch (pinned on first use or
/// on [`arm`]). Does not allocate.
#[inline]
pub fn now_nanos() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The process-global registry, used for cross-cutting metrics that are not
/// owned by a particular service instance (graph snapshot I/O, the support
/// oracle, wire-level counters). Service-scoped metrics live in the
/// service's own [`Registry`] so concurrent services do not pollute each
/// other's numbers.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_round_trips() {
        assert!(!armed());
        arm();
        assert!(armed());
        disarm();
        assert!(!armed());
    }

    #[test]
    fn clock_is_monotone() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }
}
