//! Exposition formats: Prometheus-style text for registry snapshots and
//! Chrome trace-event JSON for captured span events.
//!
//! Both exporters are pure functions over snapshots — they never touch live
//! atomics or rings, so they can run while the system keeps mining.

use crate::registry::RegistrySnapshot;
use crate::trace::{Event, EventKind};
use std::fmt::Write as _;

/// The base metric name before any `{label="..."}` suffix.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Renders registry snapshots in the Prometheus text exposition format.
/// Multiple snapshots (e.g. a service's registry plus the process-global
/// one) concatenate into one page. Histograms render as summaries:
/// `name{quantile="0.5"}`, `name_count`, `name_sum`, `name_max`.
pub fn prometheus_text(snapshots: &[RegistrySnapshot]) -> String {
    let mut out = String::new();
    let mut typed: Vec<String> = Vec::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let base = base_name(name).to_owned();
        if !typed.contains(&base) {
            let _ = writeln!(out, "# TYPE {base} {kind}");
            typed.push(base);
        }
    };
    for snap in snapshots {
        for (name, value) in &snap.counters {
            type_line(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &snap.gauges {
            type_line(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &snap.histograms {
            type_line(&mut out, name, "summary");
            // Splice quantile labels into any existing label set.
            let quantile = |q: &str| -> String {
                match name.split_once('{') {
                    Some((base, rest)) => format!("{base}{{quantile=\"{q}\",{rest}"),
                    None => format!("{name}{{quantile=\"{q}\"}}"),
                }
            };
            let _ = writeln!(out, "{} {}", quantile("0.5"), h.p50);
            let _ = writeln!(out, "{} {}", quantile("0.95"), h.p95);
            let _ = writeln!(out, "{} {}", quantile("0.99"), h.p99);
            let base = base_name(name);
            let labels = name.strip_prefix(base).unwrap_or("");
            let _ = writeln!(out, "{base}_count{labels} {}", h.count);
            let _ = writeln!(out, "{base}_sum{labels} {}", h.sum);
            let _ = writeln!(out, "{base}_max{labels} {}", h.max);
        }
    }
    out
}

/// Minimal JSON string escaping (event names are static identifiers, but
/// thread names and future callers get correctness anyway).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders captured events as a Chrome trace-event JSON document, loadable
/// in `chrome://tracing` or Perfetto.
///
/// Spans become **async** begin/end pairs (`ph: "b"` / `ph: "e"`) keyed by
/// span id within their trace id, because a span's two ends routinely occur
/// on different threads — async events pair by id, not by thread.
/// Instant/fault/retry events become global instants (`ph: "i"`). The
/// parent span rides in `args.parent`, so the span tree is reconstructible
/// from the file.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let pid = std::process::id();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = event.t_nanos as f64 / 1e3;
        out.push_str("{\"name\":\"");
        escape_json(event.name, &mut out);
        let _ = write!(out, "\",\"cat\":\"{}\",", category(event.kind));
        match event.kind {
            EventKind::SpanStart => {
                let _ = write!(
                    out,
                    "\"ph\":\"b\",\"id\":{},\"args\":{{\"trace\":{},\"parent\":{}}},",
                    event.span, event.trace, event.parent
                );
            }
            EventKind::SpanEnd => {
                let _ = write!(
                    out,
                    "\"ph\":\"e\",\"id\":{},\"args\":{{\"trace\":{}}},",
                    event.span, event.trace
                );
            }
            _ => {
                let _ = write!(
                    out,
                    "\"ph\":\"i\",\"s\":\"g\",\"args\":{{\"trace\":{},\"arg\":{}}},",
                    event.trace, event.parent
                );
            }
        }
        let _ = write!(out, "\"ts\":{ts:.3},\"pid\":{pid},\"tid\":0}}");
    }
    out.push_str("]}");
    out
}

fn category(kind: EventKind) -> &'static str {
    match kind {
        EventKind::SpanStart | EventKind::SpanEnd => "span",
        EventKind::Instant => "instant",
        EventKind::Fault => "fault",
        EventKind::Retry => "retry",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("jobs_total").add(3);
        reg.counter("client_accepted_total{client=\"a\"}").inc();
        reg.gauge("queue_depth").set(2);
        reg.histogram("latency_nanos").observe(1000);
        let text = prometheus_text(&[reg.snapshot()]);
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total 3"));
        assert!(text.contains("# TYPE client_accepted_total counter"));
        assert!(text.contains("client_accepted_total{client=\"a\"} 1"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 2"));
        assert!(text.contains("# TYPE latency_nanos summary"));
        assert!(text.contains("latency_nanos{quantile=\"0.5\"}"));
        assert!(text.contains("latency_nanos_count 1"));
        assert!(text.contains("latency_nanos_sum 1000"));
        assert!(text.contains("latency_nanos_max 1000"));
    }

    #[test]
    fn labeled_histograms_splice_quantiles() {
        let reg = Registry::new();
        reg.histogram("stage_nanos{stage=\"spiders\"}").observe(5);
        let text = prometheus_text(&[reg.snapshot()]);
        assert!(
            text.contains("stage_nanos{quantile=\"0.5\",stage=\"spiders\"}"),
            "{text}"
        );
        assert!(text.contains("stage_nanos_count{stage=\"spiders\"} 1"));
    }

    #[test]
    fn chrome_trace_pairs_async_events() {
        let events = [
            Event {
                kind: EventKind::SpanStart,
                name: "job",
                trace: 7,
                span: 1,
                parent: 0,
                t_nanos: 1_000,
            },
            Event {
                kind: EventKind::Instant,
                name: "admitted",
                trace: 7,
                span: 0,
                parent: 42,
                t_nanos: 1_500,
            },
            Event {
                kind: EventKind::SpanEnd,
                name: "job",
                trace: 7,
                span: 1,
                parent: 0,
                t_nanos: 2_000,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"b\",\"id\":1"));
        assert!(json.contains("\"ph\":\"e\",\"id\":1"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"g\""));
        assert!(json.contains("\"ts\":1.000"));
        // Every event carries the trace id.
        assert_eq!(json.matches("\"trace\":7").count(), 3);
    }

    #[test]
    fn json_escaping_is_applied() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }
}
