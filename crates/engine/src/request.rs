//! The validated, builder-style mining request.
//!
//! A [`MineRequest`] names an [`Algorithm`] and carries the paper's
//! user-facing knobs (σ, K, ε, `Dmax`, r) plus engine-level budgets (time,
//! pattern-size, embedding caps) and the RNG seed. [`MineRequest::build`]
//! validates every field — rejecting e.g. the silently-accepted
//! `support_threshold = 0` of the legacy entry points with a
//! [`MineError::InvalidConfig`] that names the bad field — and produces an
//! [`Engine`](crate::Engine) ready to [`mine`](crate::Miner::mine).

use crate::error::MineError;
use spidermine::SpiderMineConfig;
use spidermine_baselines::{MossConfig, OrigamiConfig, SeusConfig, SubdueConfig};
use spidermine_mining::support::SupportMeasure;
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// The six mining algorithms reachable through the unified API.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// SpiderMine on a single graph (the paper's Algorithm 1).
    SpiderMine,
    /// SpiderMine adapted to the graph-transaction setting (Section 2).
    SpiderMineTransactions,
    /// SUBDUE: MDL-guided beam search.
    Subdue,
    /// MoSS/gSpan-style complete miner.
    Moss,
    /// ORIGAMI: random maximal sampling + α-orthogonal selection.
    Origami,
    /// SEuS: summary-graph candidate generation.
    Seus,
}

impl Algorithm {
    /// Stable lower-case name (also accepted by [`Algorithm::from_str`]).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::SpiderMine => "spidermine",
            Algorithm::SpiderMineTransactions => "spidermine-transactions",
            Algorithm::Subdue => "subdue",
            Algorithm::Moss => "moss",
            Algorithm::Origami => "origami",
            Algorithm::Seus => "seus",
        }
    }

    /// All algorithms, in a stable order.
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::SpiderMine,
            Algorithm::SpiderMineTransactions,
            Algorithm::Subdue,
            Algorithm::Moss,
            Algorithm::Origami,
            Algorithm::Seus,
        ]
    }

    /// True if the algorithm mines a graph-transaction database rather than a
    /// single graph.
    pub fn wants_transactions(&self) -> bool {
        matches!(self, Algorithm::SpiderMineTransactions | Algorithm::Origami)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Algorithm {
    type Err = MineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "spidermine" | "spider-mine" | "spider" => Ok(Algorithm::SpiderMine),
            "spidermine-transactions" | "transactions" | "spidermine-tx" => {
                Ok(Algorithm::SpiderMineTransactions)
            }
            "subdue" => Ok(Algorithm::Subdue),
            "moss" | "gspan" => Ok(Algorithm::Moss),
            "origami" => Ok(Algorithm::Origami),
            "seus" => Ok(Algorithm::Seus),
            other => Err(MineError::invalid(
                "algorithm",
                format!(
                    "unknown algorithm `{other}` (expected one of {})",
                    Algorithm::all().map(|a| a.name()).join(", ")
                ),
            )),
        }
    }
}

/// Builder-style mining request. See the module docs; construct with
/// [`MineRequest::new`], chain setters, finish with [`MineRequest::build`].
#[derive(Clone, Debug)]
pub struct MineRequest {
    // Crate-visible so the wire module (`crate::wire`) can encode and
    // reconstruct requests without widening the public builder surface.
    pub(crate) algorithm: Algorithm,
    pub(crate) support_threshold: usize,
    pub(crate) k: usize,
    pub(crate) epsilon: f64,
    pub(crate) d_max: u32,
    pub(crate) r: u32,
    pub(crate) seed: u64,
    pub(crate) support_measure: Option<SupportMeasure>,
    pub(crate) time_budget: Option<Duration>,
    pub(crate) max_pattern_edges: Option<usize>,
    pub(crate) max_embeddings: Option<usize>,
    pub(crate) threads: Option<usize>,
    pub(crate) deadline_ms: Option<u64>,
}

impl MineRequest {
    /// A request for `algorithm` with the defaults of the paper's
    /// experimental setting (σ = 2, K = 10, ε = 0.1, `Dmax` = 10, r = 1).
    pub fn new(algorithm: Algorithm) -> Self {
        Self {
            algorithm,
            support_threshold: 2,
            k: 10,
            epsilon: 0.1,
            d_max: 10,
            r: 1,
            seed: 0x5eed_5eed,
            support_measure: None,
            time_budget: None,
            max_pattern_edges: None,
            max_embeddings: None,
            threads: None,
            deadline_ms: None,
        }
    }

    /// Support threshold σ (minimum support for a pattern to be frequent).
    pub fn support_threshold(mut self, sigma: usize) -> Self {
        self.support_threshold = sigma;
        self
    }

    /// Number of top patterns to return (K), for the algorithms with a top-K
    /// notion (SpiderMine, its transaction adaptation, SUBDUE's report cap).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Error bound ε of SpiderMine's probabilistic guarantee.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Diameter upper bound `Dmax` for SpiderMine patterns.
    pub fn d_max(mut self, d_max: u32) -> Self {
        self.d_max = d_max;
        self
    }

    /// Spider radius r.
    pub fn radius(mut self, r: u32) -> Self {
        self.r = r;
        self
    }

    /// RNG seed, for the algorithms that randomize (SpiderMine seeding,
    /// ORIGAMI walks). Runs are deterministic in this seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Support measure used for frequency checks, for the single-graph
    /// algorithms with a pluggable measure (SpiderMine's growth/selection,
    /// MoSS's overlap-aware counting). Per-algorithm defaults apply when
    /// unset (MNI for SpiderMine, greedy-disjoint for MoSS); parse CLI
    /// values via [`SupportMeasure::from_str`] (`embeddings` | `mni` |
    /// `greedy-disjoint`).
    pub fn support_measure(mut self, measure: SupportMeasure) -> Self {
        self.support_measure = Some(measure);
        self
    }

    /// Wall-clock budget for the budgeted algorithms (SUBDUE, MoSS, ORIGAMI,
    /// SEuS); their defaults apply when unset.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Expansion budget: maximum pattern size in edges for the edge-growth
    /// algorithms (SUBDUE, MoSS, ORIGAMI walks).
    pub fn max_pattern_edges(mut self, edges: usize) -> Self {
        self.max_pattern_edges = Some(edges);
        self
    }

    /// Cap on embeddings tracked per pattern.
    pub fn max_embeddings(mut self, cap: usize) -> Self {
        self.max_embeddings = Some(cap);
        self
    }

    /// Number of worker threads the run may use. The run's parallel regions
    /// are capped (or raised — the pool grows on demand) to exactly this
    /// width; `1` pins the run to the calling thread, and values above the
    /// pool's worker cap ([`rayon::MAX_WORKERS`]) are rejected at
    /// validation. Unset: the pool default (`RAYON_NUM_THREADS`, else the
    /// machine's parallelism).
    /// Results are identical at every thread count — the runtime's
    /// reductions are order-preserving — so this knob trades wall-clock
    /// against CPU, never output.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Wall-clock deadline for the whole run, in milliseconds. Works for
    /// *every* algorithm (unlike [`MineRequest::time_budget`], which maps to
    /// the budgeted baselines' own knobs): the engine arms the
    /// [`MineContext`](crate::MineContext) deadline, which fires the cancel
    /// token once expired, so the run winds down cooperatively and returns
    /// its partial results with
    /// [`MineOutcome::timed_out`](crate::MineOutcome::timed_out) set —
    /// a timeout is never an error.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// The requested algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The requested thread width, if any.
    pub fn requested_threads(&self) -> Option<usize> {
        self.threads
    }

    /// The requested wall-clock deadline, if any.
    pub fn requested_deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }

    /// A canonical serialized key identifying everything about this request
    /// that can influence a [`MineOutcome`](crate::MineOutcome)'s mined
    /// patterns: algorithm, all thresholds and budgets, the seed and the
    /// support measure, each rendered in a stable normal form (ε as its exact
    /// IEEE-754 bit pattern, unset optionals as `-`).
    ///
    /// Two requests with equal keys produce identical patterns on the same
    /// graph, which is what lets the service layer's result cache use
    /// `(graph fingerprint, canonical key)` as its lookup key. The `threads`
    /// knob is deliberately **excluded**: the runtime's reductions are
    /// order-preserving, so results are byte-identical at every width and
    /// runs differing only in width must share a cache entry.
    pub fn canonical_key(&self) -> String {
        fn opt<T: fmt::Display>(v: Option<T>) -> String {
            v.map_or_else(|| "-".to_owned(), |v| v.to_string())
        }
        format!(
            "v1;algo={};sigma={};k={};eps={:016x};dmax={};r={};seed={:016x};measure={};budget_ns={};max_edges={};max_emb={};deadline_ms={}",
            self.algorithm.name(),
            self.support_threshold,
            self.k,
            self.epsilon.to_bits(),
            self.d_max,
            self.r,
            self.seed,
            self.support_measure.map_or("-", |m| m.name()),
            opt(self.time_budget.map(|b| b.as_nanos())),
            opt(self.max_pattern_edges),
            opt(self.max_embeddings),
            opt(self.deadline_ms),
        )
    }

    /// Validates every field, naming the offending one on failure.
    pub fn validate(&self) -> Result<(), MineError> {
        if self.support_threshold == 0 {
            return Err(MineError::invalid(
                "support_threshold",
                "must be at least 1 (a support threshold of 0 would make every pattern frequent)",
            ));
        }
        if self.k == 0 {
            return Err(MineError::invalid("k", "must be at least 1"));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(MineError::invalid(
                "epsilon",
                format!("must lie in the open interval (0, 1), got {}", self.epsilon),
            ));
        }
        if self.r == 0 {
            return Err(MineError::invalid(
                "radius",
                "spider radius r must be at least 1",
            ));
        }
        if self.d_max == 0 {
            return Err(MineError::invalid("d_max", "must be at least 1"));
        }
        if self.time_budget == Some(Duration::ZERO) {
            return Err(MineError::invalid(
                "time_budget",
                "must be positive when set",
            ));
        }
        if self.max_pattern_edges == Some(0) {
            return Err(MineError::invalid(
                "max_pattern_edges",
                "must be at least 1 when set",
            ));
        }
        if self.max_embeddings == Some(0) {
            return Err(MineError::invalid(
                "max_embeddings",
                "must be at least 1 when set",
            ));
        }
        if self.threads == Some(0) {
            return Err(MineError::invalid(
                "threads",
                "must be at least 1 when set (use 1 to pin the run to the calling thread)",
            ));
        }
        if let Some(threads) = self.threads {
            // Reject instead of silently clamping: the contract is that the
            // run executes at *exactly* the requested width.
            if threads > rayon::MAX_WORKERS {
                return Err(MineError::invalid(
                    "threads",
                    format!(
                        "must be at most {} (the pool's worker cap)",
                        rayon::MAX_WORKERS
                    ),
                ));
            }
        }
        if self.deadline_ms == Some(0) {
            return Err(MineError::invalid(
                "deadline_ms",
                "must be at least 1 millisecond when set (a zero deadline would cancel the run before it starts)",
            ));
        }
        Ok(())
    }

    /// Validates the request and constructs the ready-to-run
    /// [`Engine`](crate::Engine).
    pub fn build(self) -> Result<crate::Engine, MineError> {
        self.validate()?;
        Ok(crate::Engine::from_validated_request(&self))
    }

    pub(crate) fn spidermine_config(&self) -> SpiderMineConfig {
        let defaults = SpiderMineConfig::default();
        SpiderMineConfig {
            support_threshold: self.support_threshold,
            k: self.k,
            epsilon: self.epsilon,
            d_max: self.d_max,
            r: self.r,
            rng_seed: self.seed,
            support_measure: self.support_measure.unwrap_or(defaults.support_measure),
            max_embeddings: self.max_embeddings.unwrap_or(defaults.max_embeddings),
            ..defaults
        }
    }

    pub(crate) fn subdue_config(&self) -> SubdueConfig {
        let defaults = SubdueConfig::default();
        SubdueConfig {
            report: self.k,
            min_instances: self.support_threshold,
            max_edges: self.max_pattern_edges.unwrap_or(defaults.max_edges),
            max_embeddings: self.max_embeddings.unwrap_or(defaults.max_embeddings),
            time_budget: self.time_budget.unwrap_or(defaults.time_budget),
            ..defaults
        }
    }

    pub(crate) fn moss_config(&self) -> MossConfig {
        let defaults = MossConfig::default();
        MossConfig {
            support_threshold: self.support_threshold,
            support_measure: self.support_measure.unwrap_or(defaults.support_measure),
            max_edges: self.max_pattern_edges.unwrap_or(defaults.max_edges),
            max_embeddings: self.max_embeddings.unwrap_or(defaults.max_embeddings),
            time_budget: self.time_budget.unwrap_or(defaults.time_budget),
        }
    }

    pub(crate) fn origami_config(&self) -> OrigamiConfig {
        let defaults = OrigamiConfig::default();
        OrigamiConfig {
            support_threshold: self.support_threshold,
            rng_seed: self.seed,
            max_edges: self.max_pattern_edges.unwrap_or(defaults.max_edges),
            time_budget: self.time_budget.unwrap_or(defaults.time_budget),
            ..defaults
        }
    }

    pub(crate) fn seus_config(&self) -> SeusConfig {
        let defaults = SeusConfig::default();
        SeusConfig {
            support_threshold: self.support_threshold,
            max_embeddings: self.max_embeddings.unwrap_or(defaults.max_embeddings),
            time_budget: self.time_budget.unwrap_or(defaults.time_budget),
            ..defaults
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_request_is_valid_for_every_algorithm() {
        for algo in Algorithm::all() {
            assert!(MineRequest::new(algo).validate().is_ok(), "{algo}");
        }
    }

    #[test]
    fn every_bad_field_is_named() {
        let cases: Vec<(&'static str, MineRequest)> = vec![
            (
                "support_threshold",
                MineRequest::new(Algorithm::SpiderMine).support_threshold(0),
            ),
            ("k", MineRequest::new(Algorithm::SpiderMine).k(0)),
            (
                "epsilon",
                MineRequest::new(Algorithm::SpiderMine).epsilon(0.0),
            ),
            (
                "epsilon",
                MineRequest::new(Algorithm::SpiderMine).epsilon(1.0),
            ),
            ("radius", MineRequest::new(Algorithm::SpiderMine).radius(0)),
            ("d_max", MineRequest::new(Algorithm::SpiderMine).d_max(0)),
            (
                "time_budget",
                MineRequest::new(Algorithm::Moss).time_budget(Duration::ZERO),
            ),
            (
                "max_pattern_edges",
                MineRequest::new(Algorithm::Moss).max_pattern_edges(0),
            ),
            (
                "max_embeddings",
                MineRequest::new(Algorithm::Moss).max_embeddings(0),
            ),
            (
                "threads",
                MineRequest::new(Algorithm::SpiderMine).threads(0),
            ),
            (
                "threads",
                MineRequest::new(Algorithm::SpiderMine).threads(rayon::MAX_WORKERS + 1),
            ),
            (
                "deadline_ms",
                MineRequest::new(Algorithm::SpiderMine).deadline_ms(0),
            ),
        ];
        for (field, request) in cases {
            match request.validate() {
                Err(MineError::InvalidConfig { field: f, .. }) => {
                    assert_eq!(f, field, "wrong field named");
                }
                other => panic!("expected InvalidConfig for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn canonical_key_covers_every_result_affecting_field() {
        let base = || MineRequest::new(Algorithm::SpiderMine);
        let key = base().canonical_key();
        // Each result-affecting knob moves the key.
        let variants = [
            base().support_threshold(3).canonical_key(),
            base().k(4).canonical_key(),
            base().epsilon(0.2).canonical_key(),
            base().d_max(5).canonical_key(),
            base().radius(2).canonical_key(),
            base().seed(1).canonical_key(),
            base()
                .support_measure(SupportMeasure::GreedyDisjoint)
                .canonical_key(),
            base().time_budget(Duration::from_secs(1)).canonical_key(),
            base().max_pattern_edges(9).canonical_key(),
            base().max_embeddings(9).canonical_key(),
            base().deadline_ms(100).canonical_key(),
            MineRequest::new(Algorithm::Moss).canonical_key(),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(&key, v, "variant {i} did not move the key");
        }
        // Equal requests agree; `threads` is excluded by design (results are
        // width-independent, so runs at different widths share a cache slot).
        assert_eq!(key, base().canonical_key());
        assert_eq!(key, base().threads(4).canonical_key());
    }

    #[test]
    fn algorithm_names_round_trip() {
        for algo in Algorithm::all() {
            assert_eq!(algo.name().parse::<Algorithm>().unwrap(), algo);
        }
        assert!("frobnicate".parse::<Algorithm>().is_err());
    }

    #[test]
    fn request_maps_onto_spidermine_config() {
        let config = MineRequest::new(Algorithm::SpiderMine)
            .support_threshold(3)
            .k(7)
            .epsilon(0.05)
            .d_max(6)
            .seed(42)
            .support_measure(SupportMeasure::GreedyDisjoint)
            .spidermine_config();
        assert_eq!(config.support_threshold, 3);
        assert_eq!(config.k, 7);
        assert_eq!(config.epsilon, 0.05);
        assert_eq!(config.d_max, 6);
        assert_eq!(config.rng_seed, 42);
        assert_eq!(config.support_measure, SupportMeasure::GreedyDisjoint);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn support_measure_flows_into_moss_and_defaults_apply() {
        let request =
            MineRequest::new(Algorithm::Moss).support_measure(SupportMeasure::MinimumImage);
        assert_eq!(
            request.moss_config().support_measure,
            SupportMeasure::MinimumImage
        );
        // Unset: per-algorithm defaults survive.
        let request = MineRequest::new(Algorithm::Moss);
        assert_eq!(
            request.moss_config().support_measure,
            MossConfig::default().support_measure
        );
        assert_eq!(
            MineRequest::new(Algorithm::SpiderMine)
                .spidermine_config()
                .support_measure,
            SpiderMineConfig::default().support_measure
        );
    }
}
