//! Pull-based streaming: consume mined patterns as an iterator while the
//! miner runs on a worker thread.
//!
//! The push side of streaming is the [`MineContext`] sink (`on_pattern`),
//! which every miner feeds as it accepts patterns. [`PatternStream`] turns
//! that push into a pull: it spawns the run on a `std::thread`, forwards each
//! streamed pattern through a channel, and implements `Iterator` over the
//! receiving end. The iterator ends when the run finishes;
//! [`PatternStream::outcome`] then joins the thread and returns the full
//! [`MineOutcome`].

use crate::miner::{GraphSource, MineOutcome, Miner};
use crate::MineError;
use spidermine_graph::{GraphDatabase, LabeledGraph};
use spidermine_mining::context::{CancelToken, MineContext, StreamedPattern};
use std::sync::mpsc;
use std::thread::JoinHandle;

/// An owned graph source, so the mining thread does not borrow from the
/// caller.
// One value exists per stream and it is moved, not copied around — the size
// difference between the variants is irrelevant here.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum OwnedGraphSource {
    /// A single labeled graph.
    Single(LabeledGraph),
    /// A graph-transaction database.
    Transactions(GraphDatabase),
}

impl OwnedGraphSource {
    /// Borrows this source as the [`GraphSource`] the [`Miner`] trait takes.
    pub fn as_source(&self) -> GraphSource<'_> {
        match self {
            OwnedGraphSource::Single(g) => GraphSource::Single(g),
            OwnedGraphSource::Transactions(db) => GraphSource::Transactions(db),
        }
    }
}

/// Iterator over patterns streamed out of a background mining run.
pub struct PatternStream {
    rx: mpsc::Receiver<StreamedPattern>,
    handle: Option<JoinHandle<Result<MineOutcome, MineError>>>,
}

impl PatternStream {
    /// Starts `miner` on `source` in a background thread, with cancellation
    /// wired to `cancel`. Patterns become available through the iterator as
    /// the miner accepts them.
    pub fn spawn<M>(miner: M, source: OwnedGraphSource, cancel: CancelToken) -> Self
    where
        M: Miner + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            let mut ctx = MineContext::with_cancel(cancel).on_pattern(move |p| {
                // A dropped receiver just means the consumer stopped pulling;
                // the run still completes and the outcome stays available.
                let _ = tx.send(p);
            });
            miner.mine(&source.as_source(), &mut ctx)
        });
        Self {
            rx,
            handle: Some(handle),
        }
    }

    /// Waits for the run to finish and returns its outcome (consuming the
    /// stream; any patterns not yet pulled are still in the outcome).
    pub fn outcome(mut self) -> Result<MineOutcome, MineError> {
        // The channel is unbounded, so the worker never blocks on it even if
        // the consumer stops pulling; joining directly is safe.
        let handle = self.handle.take().expect("outcome called once");
        match handle.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Iterator for PatternStream {
    type Item = StreamedPattern;

    fn next(&mut self) -> Option<StreamedPattern> {
        self.rx.recv().ok()
    }
}

impl Drop for PatternStream {
    fn drop(&mut self) {
        // Never leak the worker: join it if the stream is dropped unconsumed.
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Algorithm, MineRequest};
    use spidermine_graph::Label;

    fn toy_graph() -> LabeledGraph {
        // Two copies of a labeled path 0-1-2.
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (3, 4), (4, 5)],
        )
    }

    #[test]
    fn stream_yields_exactly_the_outcome_patterns() {
        let engine = MineRequest::new(Algorithm::Moss)
            .support_threshold(2)
            .build()
            .expect("valid request");
        let stream = PatternStream::spawn(
            engine.clone(),
            OwnedGraphSource::Single(toy_graph()),
            CancelToken::new(),
        );
        let streamed: Vec<StreamedPattern> = stream.collect();
        let mut ctx = MineContext::new();
        let outcome = engine
            .mine(&GraphSource::Single(&toy_graph()), &mut ctx)
            .expect("mine");
        assert_eq!(streamed.len(), outcome.patterns.len());
        let mut a: Vec<(usize, usize)> = streamed
            .iter()
            .map(|p| (p.pattern.edge_count(), p.support))
            .collect();
        let mut b: Vec<(usize, usize)> = outcome
            .patterns
            .iter()
            .map(|p| (p.pattern.edge_count(), p.support))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn outcome_is_available_without_pulling() {
        let engine = MineRequest::new(Algorithm::Seus)
            .support_threshold(2)
            .build()
            .expect("valid request");
        let stream = PatternStream::spawn(
            engine,
            OwnedGraphSource::Single(toy_graph()),
            CancelToken::new(),
        );
        let outcome = stream.outcome().expect("mine");
        assert_eq!(outcome.algorithm, Algorithm::Seus);
        assert!(!outcome.cancelled);
    }

    #[test]
    fn dropping_the_stream_joins_the_worker() {
        let engine = MineRequest::new(Algorithm::Subdue)
            .build()
            .expect("valid request");
        let stream = PatternStream::spawn(
            engine,
            OwnedGraphSource::Single(toy_graph()),
            CancelToken::new(),
        );
        drop(stream); // must not hang or leak
    }
}
