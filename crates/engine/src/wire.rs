//! Wire-serializable forms of the engine's request and outcome types.
//!
//! The remote transport (`spidermine-transport`) moves three things over a
//! socket: a [`MineRequest`] travelling client → server, accepted
//! [`StreamedPattern`]s travelling server → client as the run produces them,
//! and the run's [`MineOutcome`] metadata once it finishes. This module
//! defines the byte-level encodings for all three, in the same defensive
//! style as the `SPDRSNAP` snapshot format: every integer is little-endian,
//! every variable-length section is length-prefixed, and the decoder is a
//! bounds-checked cursor that reports malformed input as a typed
//! [`WireError`] — hostile bytes can never panic or over-allocate.
//!
//! Determinism matters here: the transport's contract is that a remote run's
//! reconstructed outcome is *byte-identical* (under
//! [`encode_outcome_semantic`]) to an in-process run. Pattern graphs ride as
//! `SPDRSNAP` snapshot bytes, whose writer is deterministic, so
//! `encode(decode(encode(p))) == encode(p)` holds for every pattern.

use crate::error::MineError;
use crate::miner::MineOutcome;
use crate::request::{Algorithm, MineRequest};
use spidermine_graph::io::{graph_from_snapshot, snapshot_bytes};
use spidermine_mining::context::{StageTiming, StreamedPattern};
use spidermine_mining::support::SupportMeasure;
use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

/// Version tag carried by every encoded form in this module. Bumped on any
/// incompatible layout change; decoders reject other versions instead of
/// misreading bytes.
pub const WIRE_VERSION: u16 = 1;

/// Hard ceiling on any single length-prefixed section (strings, embedding
/// lists, snapshot bytes). A hostile peer can declare arbitrary lengths; the
/// decoder refuses anything beyond this before allocating.
const MAX_SECTION: usize = 64 << 20;

/// Cap on the count of distinct stage names the decoder will intern (stage
/// names must be `&'static str`, so each distinct name is leaked exactly
/// once). A hostile peer sending unbounded distinct names hits the cap and
/// gets a generic label instead of unbounded leaks.
const MAX_INTERNED_STAGES: usize = 256;

/// Cap on stage-name length and stage count per outcome; real runs have a
/// handful of short names.
const MAX_STAGE_NAME: usize = 128;
const MAX_STAGES: usize = 1024;

/// Errors produced while decoding wire bytes. Malformed input is always one
/// of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a declared field/section.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes remaining.
        actual: usize,
    },
    /// A field held a value that cannot be represented (unknown enum name,
    /// invalid UTF-8, embedded snapshot rejected, length over the cap, …).
    Corrupt(String),
    /// The encoded form declared an unsupported wire version.
    UnsupportedVersion(u16),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated wire data: needed {expected} bytes, {actual} remain"
                )
            }
            WireError::Corrupt(msg) => write!(f, "corrupt wire data: {msg}"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (supported: {WIRE_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian writer. The encoding side never fails.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends an optional `u64` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v);
            }
            None => self.put_u8(0),
        }
    }
}

/// Bounds-checked little-endian cursor over untrusted bytes.
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Errors unless every byte has been consumed — trailing garbage is
    /// treated as corruption, not silently ignored.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Corrupt(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                expected: n,
                actual: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32`-length-prefixed byte section, enforcing the section cap
    /// *before* touching the declared length.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        if len > MAX_SECTION {
            return Err(WireError::Corrupt(format!(
                "declared section length {len} exceeds the {MAX_SECTION}-byte cap"
            )));
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|_| WireError::Corrupt("string section is not valid UTF-8".into()))
    }

    /// Reads an optional `u64` written by [`WireWriter::put_opt_u64`].
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            other => Err(WireError::Corrupt(format!(
                "invalid option tag {other} (expected 0 or 1)"
            ))),
        }
    }
}

fn duration_to_nanos(d: Duration) -> u64 {
    // u64 nanoseconds covers ~584 years; a budget beyond that saturates.
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// MineRequest
// ---------------------------------------------------------------------------

/// Encodes a request for the wire. Everything [`MineRequest::canonical_key`]
/// covers rides along, plus the result-neutral `threads` knob, so the server
/// rebuilds a request with the *same* canonical key (and therefore the same
/// cache slot) as the client's original.
pub fn encode_request(request: &MineRequest) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u16(WIRE_VERSION);
    w.put_str(request.algorithm.name());
    w.put_u64(request.support_threshold as u64);
    w.put_u64(request.k as u64);
    w.put_u64(request.epsilon.to_bits());
    w.put_u32(request.d_max);
    w.put_u32(request.r);
    w.put_u64(request.seed);
    match request.support_measure {
        Some(m) => {
            w.put_u8(1);
            w.put_str(m.name());
        }
        None => w.put_u8(0),
    }
    w.put_opt_u64(request.time_budget.map(duration_to_nanos));
    w.put_opt_u64(request.max_pattern_edges.map(|v| v as u64));
    w.put_opt_u64(request.max_embeddings.map(|v| v as u64));
    w.put_opt_u64(request.threads.map(|v| v as u64));
    w.put_opt_u64(request.deadline_ms);
    w.into_bytes()
}

fn usize_field(v: u64, field: &str) -> Result<usize, WireError> {
    usize::try_from(v).map_err(|_| WireError::Corrupt(format!("{field} {v} overflows usize")))
}

fn opt_usize_field(v: Option<u64>, field: &str) -> Result<Option<usize>, WireError> {
    v.map(|v| usize_field(v, field)).transpose()
}

/// Decodes a request encoded by [`encode_request`]. The result is *decoded*,
/// not yet *admitted*: the caller still runs [`MineRequest::validate`] (the
/// service does this on submission), so out-of-range field values are a
/// validation error, while structurally unreadable bytes are a [`WireError`].
pub fn decode_request(bytes: &[u8]) -> Result<MineRequest, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.get_u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let algorithm: Algorithm = r
        .get_str()?
        .parse()
        .map_err(|e: MineError| WireError::Corrupt(e.to_string()))?;
    let support_threshold = usize_field(r.get_u64()?, "support_threshold")?;
    let k = usize_field(r.get_u64()?, "k")?;
    let epsilon = f64::from_bits(r.get_u64()?);
    let d_max = r.get_u32()?;
    let radius = r.get_u32()?;
    let seed = r.get_u64()?;
    let support_measure = match r.get_u8()? {
        0 => None,
        1 => Some(
            r.get_str()?
                .parse::<SupportMeasure>()
                .map_err(|e| WireError::Corrupt(e.to_string()))?,
        ),
        other => {
            return Err(WireError::Corrupt(format!(
                "invalid support-measure tag {other}"
            )))
        }
    };
    let time_budget = r.get_opt_u64()?.map(Duration::from_nanos);
    let max_pattern_edges = opt_usize_field(r.get_opt_u64()?, "max_pattern_edges")?;
    let max_embeddings = opt_usize_field(r.get_opt_u64()?, "max_embeddings")?;
    let threads = opt_usize_field(r.get_opt_u64()?, "threads")?;
    let deadline_ms = r.get_opt_u64()?;
    r.finish()?;
    Ok(MineRequest {
        algorithm,
        support_threshold,
        k,
        epsilon,
        d_max,
        r: radius,
        seed,
        support_measure,
        time_budget,
        max_pattern_edges,
        max_embeddings,
        threads,
        deadline_ms,
    })
}

// ---------------------------------------------------------------------------
// StreamedPattern
// ---------------------------------------------------------------------------

/// Encodes one accepted pattern: the pattern graph as deterministic
/// `SPDRSNAP` snapshot bytes, the support value, and the retained embeddings
/// (host-graph vertex ids, one row per embedding).
pub fn encode_pattern(pattern: &StreamedPattern) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u16(WIRE_VERSION);
    w.put_bytes(&snapshot_bytes(&pattern.pattern));
    w.put_u64(pattern.support as u64);
    w.put_u32(pattern.embeddings.len() as u32);
    for embedding in &pattern.embeddings {
        w.put_u32(embedding.len() as u32);
        for &v in embedding {
            w.put_u32(v.0);
        }
    }
    w.into_bytes()
}

/// Decodes a pattern encoded by [`encode_pattern`]. The embedded snapshot is
/// revalidated in full (magic, checksum, structural invariants), so a
/// bit-flipped pattern graph surfaces as a typed error here rather than as a
/// malformed graph downstream.
pub fn decode_pattern(bytes: &[u8]) -> Result<StreamedPattern, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.get_u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let graph = graph_from_snapshot(r.get_bytes()?)
        .map_err(|e| WireError::Corrupt(format!("embedded pattern snapshot: {e}")))?;
    let support = usize_field(r.get_u64()?, "support")?;
    let rows = r.get_u32()? as usize;
    let vertices = graph.vertex_count();
    let mut embeddings = Vec::new();
    for _ in 0..rows {
        let len = r.get_u32()? as usize;
        if len != vertices {
            return Err(WireError::Corrupt(format!(
                "embedding row of length {len} for a {vertices}-vertex pattern"
            )));
        }
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            row.push(spidermine_graph::VertexId(r.get_u32()?));
        }
        embeddings.push(row);
    }
    r.finish()?;
    Ok(StreamedPattern {
        pattern: graph,
        support,
        embeddings,
    })
}

// ---------------------------------------------------------------------------
// MineOutcome
// ---------------------------------------------------------------------------

static INTERNED_STAGES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Maps a decoded stage name back onto a `&'static str` (the type
/// [`StageTiming::stage`] requires). Each distinct name is leaked exactly
/// once; past [`MAX_INTERNED_STAGES`] distinct names a generic label is
/// returned instead, bounding the leak a hostile peer can cause.
fn intern_stage_name(name: &str) -> &'static str {
    let mut interned = INTERNED_STAGES.lock().unwrap();
    if let Some(&existing) = interned.iter().find(|&&s| s == name) {
        return existing;
    }
    if interned.len() >= MAX_INTERNED_STAGES {
        return "(stage)";
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    interned.push(leaked);
    leaked
}

/// Encodes everything in a [`MineOutcome`] *except* its pattern list: the
/// algorithm, cancellation/timeout flags, stage timings, total wall-clock,
/// thread width and drop counter. The transport streams patterns separately
/// (incrementally, as frames) and sends this header with the final `Done`
/// frame.
pub fn encode_outcome_meta(outcome: &MineOutcome) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u16(WIRE_VERSION);
    w.put_str(outcome.algorithm.name());
    w.put_u8(outcome.cancelled as u8);
    w.put_u8(outcome.timed_out as u8);
    w.put_u64(duration_to_nanos(outcome.total_time));
    w.put_u64(outcome.threads as u64);
    w.put_u64(outcome.dropped_embeddings as u64);
    w.put_u32(outcome.stages.len().min(MAX_STAGES) as u32);
    for stage in outcome.stages.iter().take(MAX_STAGES) {
        let name = &stage.stage[..stage.stage.len().min(MAX_STAGE_NAME)];
        w.put_str(name);
        w.put_u64(duration_to_nanos(stage.elapsed));
    }
    w.into_bytes()
}

/// Decodes an outcome header encoded by [`encode_outcome_meta`]. The
/// returned outcome has an empty `patterns` list; the transport client fills
/// it in from the streamed pattern frames.
pub fn decode_outcome_meta(bytes: &[u8]) -> Result<MineOutcome, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.get_u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let algorithm: Algorithm = r
        .get_str()?
        .parse()
        .map_err(|e: MineError| WireError::Corrupt(e.to_string()))?;
    let cancelled = match r.get_u8()? {
        0 => false,
        1 => true,
        other => return Err(WireError::Corrupt(format!("invalid bool byte {other}"))),
    };
    let timed_out = match r.get_u8()? {
        0 => false,
        1 => true,
        other => return Err(WireError::Corrupt(format!("invalid bool byte {other}"))),
    };
    let total_time = Duration::from_nanos(r.get_u64()?);
    let threads = usize_field(r.get_u64()?, "threads")?;
    let dropped_embeddings = usize_field(r.get_u64()?, "dropped_embeddings")?;
    let stage_count = r.get_u32()? as usize;
    if stage_count > MAX_STAGES {
        return Err(WireError::Corrupt(format!(
            "declared stage count {stage_count} exceeds the cap of {MAX_STAGES}"
        )));
    }
    let mut stages = Vec::with_capacity(stage_count.min(64));
    for _ in 0..stage_count {
        let name = r.get_str()?;
        if name.len() > MAX_STAGE_NAME {
            return Err(WireError::Corrupt(format!(
                "stage name of {} bytes exceeds the cap of {MAX_STAGE_NAME}",
                name.len()
            )));
        }
        let elapsed = Duration::from_nanos(r.get_u64()?);
        stages.push(StageTiming {
            stage: intern_stage_name(name),
            elapsed,
        });
    }
    r.finish()?;
    Ok(MineOutcome {
        algorithm,
        patterns: Vec::new(),
        cancelled,
        timed_out,
        stages,
        total_time,
        threads,
        dropped_embeddings,
    })
}

/// Canonical encoding of everything *result-determined* in an outcome: the
/// algorithm, the cancellation/timeout flags, the drop counter, and the full
/// pattern list (each pattern via [`encode_pattern`]) in result order.
/// Wall-clock fields (`total_time`, `stages`, `threads`) are deliberately
/// excluded — they differ run to run even for identical results.
///
/// Two outcomes are "byte-identical" in the sense the service and transport
/// tests assert exactly when their semantic encodings are equal; this is the
/// function those assertions call.
pub fn encode_outcome_semantic(outcome: &MineOutcome) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u16(WIRE_VERSION);
    w.put_str(outcome.algorithm.name());
    w.put_u8(outcome.cancelled as u8);
    w.put_u8(outcome.timed_out as u8);
    w.put_u64(outcome.dropped_embeddings as u64);
    w.put_u32(outcome.patterns.len() as u32);
    for pattern in &outcome.patterns {
        w.put_bytes(&encode_pattern(pattern));
    }
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::{Label, LabeledGraph, VertexId};

    fn sample_request() -> MineRequest {
        MineRequest::new(Algorithm::SpiderMine)
            .support_threshold(3)
            .k(7)
            .epsilon(0.05)
            .d_max(6)
            .radius(2)
            .seed(0xfeed)
            .support_measure(SupportMeasure::GreedyDisjoint)
            .time_budget(Duration::from_millis(1500))
            .max_pattern_edges(12)
            .max_embeddings(64)
            .threads(2)
            .deadline_ms(2500)
    }

    fn sample_pattern() -> StreamedPattern {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex(Label(1));
        let b = g.add_vertex(Label(2));
        let c = g.add_vertex(Label(1));
        g.add_edge(a, b);
        g.add_edge(b, c);
        StreamedPattern {
            pattern: g,
            support: 4,
            embeddings: vec![
                vec![VertexId(10), VertexId(11), VertexId(12)],
                vec![VertexId(20), VertexId(21), VertexId(22)],
            ],
        }
    }

    #[test]
    fn request_round_trips_with_equal_canonical_key() {
        let request = sample_request();
        let decoded = decode_request(&encode_request(&request)).unwrap();
        assert_eq!(request.canonical_key(), decoded.canonical_key());
        assert_eq!(decoded.requested_threads(), Some(2));
        assert_eq!(
            decoded.requested_deadline(),
            Some(Duration::from_millis(2500))
        );
        // Defaults (all optionals unset) round-trip too.
        let bare = MineRequest::new(Algorithm::Moss);
        let decoded = decode_request(&encode_request(&bare)).unwrap();
        assert_eq!(bare.canonical_key(), decoded.canonical_key());
        assert_eq!(decoded.requested_threads(), None);
    }

    #[test]
    fn request_decoding_rejects_malformed_bytes() {
        let good = encode_request(&sample_request());
        // Every truncation point yields Truncated or Corrupt, never a panic.
        for len in 0..good.len() {
            let err = decode_request(&good[..len]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::Corrupt(_)),
                "truncation at {len} gave {err:?}"
            );
        }
        // Trailing garbage is rejected.
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(
            decode_request(&long).unwrap_err(),
            WireError::Corrupt(_)
        ));
        // An unknown algorithm name is rejected.
        let mut w = WireWriter::new();
        w.put_u16(WIRE_VERSION);
        w.put_str("frobnicate");
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_request(&bytes).unwrap_err(),
            WireError::Truncated { .. } | WireError::Corrupt(_)
        ));
        // A bad version is named.
        let mut w = WireWriter::new();
        w.put_u16(99);
        assert_eq!(
            decode_request(&w.into_bytes()).unwrap_err(),
            WireError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn pattern_round_trips_byte_identically() {
        let pattern = sample_pattern();
        let bytes = encode_pattern(&pattern);
        let decoded = decode_pattern(&bytes).unwrap();
        assert_eq!(decoded.support, pattern.support);
        assert_eq!(decoded.embeddings, pattern.embeddings);
        // Deterministic: re-encoding the decoded pattern reproduces the bytes.
        assert_eq!(encode_pattern(&decoded), bytes);
    }

    #[test]
    fn pattern_decoding_survives_truncation_and_bitflips() {
        let bytes = encode_pattern(&sample_pattern());
        for len in 0..bytes.len() {
            assert!(
                decode_pattern(&bytes[..len]).is_err(),
                "truncation at {len} accepted"
            );
        }
        // A flipped bit lands in the snapshot (checksum catches it), a
        // length field (truncation/corruption), or the embedding section
        // (row-length mismatch) — always a typed error or a changed-but-valid
        // value, never a panic.
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            let _ = decode_pattern(&flipped);
        }
        // Embedding rows must match the pattern's vertex count.
        let mut pattern = sample_pattern();
        pattern.embeddings.push(vec![VertexId(1)]);
        let err = decode_pattern(&encode_pattern(&pattern)).unwrap_err();
        assert!(matches!(err, WireError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn outcome_meta_round_trips() {
        let outcome = MineOutcome {
            algorithm: Algorithm::Seus,
            patterns: Vec::new(),
            cancelled: true,
            timed_out: true,
            stages: vec![
                StageTiming {
                    stage: "spiders",
                    elapsed: Duration::from_millis(3),
                },
                StageTiming {
                    stage: "growth",
                    elapsed: Duration::from_micros(421),
                },
            ],
            total_time: Duration::from_millis(17),
            threads: 4,
            dropped_embeddings: 2,
        };
        let decoded = decode_outcome_meta(&encode_outcome_meta(&outcome)).unwrap();
        assert_eq!(decoded.algorithm, Algorithm::Seus);
        assert!(decoded.cancelled && decoded.timed_out);
        assert_eq!(decoded.total_time, Duration::from_millis(17));
        assert_eq!(decoded.threads, 4);
        assert_eq!(decoded.dropped_embeddings, 2);
        assert_eq!(decoded.stages.len(), 2);
        assert_eq!(decoded.stages[0].stage, "spiders");
        assert_eq!(decoded.stages[1].elapsed, Duration::from_micros(421));
        // Interning is stable: decoding twice yields pointer-equal names.
        let again = decode_outcome_meta(&encode_outcome_meta(&outcome)).unwrap();
        assert!(std::ptr::eq(
            decoded.stages[0].stage.as_ptr(),
            again.stages[0].stage.as_ptr()
        ));
    }

    #[test]
    fn semantic_encoding_ignores_wall_clock_but_not_results() {
        let mut a = MineOutcome {
            algorithm: Algorithm::Moss,
            patterns: vec![sample_pattern()],
            cancelled: false,
            timed_out: false,
            stages: Vec::new(),
            total_time: Duration::from_millis(5),
            threads: 1,
            dropped_embeddings: 0,
        };
        let mut b = a.clone();
        b.total_time = Duration::from_secs(9);
        b.threads = 8;
        b.stages.push(StageTiming {
            stage: "noise",
            elapsed: Duration::from_millis(1),
        });
        assert_eq!(encode_outcome_semantic(&a), encode_outcome_semantic(&b));
        a.patterns[0].support += 1;
        assert_ne!(encode_outcome_semantic(&a), encode_outcome_semantic(&b));
    }
}
