//! Errors of the unified engine API.

use crate::request::Algorithm;
use std::fmt;

/// Everything that can go wrong when building or running a mining request.
///
/// Cancellation is deliberately *not* an error: a fired
/// [`CancelToken`](crate::CancelToken) makes a run wind down and return its
/// partial [`MineOutcome`](crate::MineOutcome) with `cancelled = true`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MineError {
    /// A request (or raw config) failed validation. `field` names the
    /// offending parameter; `message` says what range it must lie in.
    InvalidConfig {
        /// Name of the rejected field (e.g. `"support_threshold"`).
        field: &'static str,
        /// Human-readable constraint, e.g. `"must be at least 1"`.
        message: String,
    },
    /// The algorithm cannot mine the given [`GraphSource`](crate::GraphSource)
    /// variant (e.g. ORIGAMI needs a transaction database, not a single
    /// graph).
    UnsupportedSource {
        /// The algorithm that rejected the source.
        algorithm: Algorithm,
        /// What kind of source it needs.
        expected: &'static str,
    },
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::InvalidConfig { field, message } => {
                write!(f, "invalid mining configuration: `{field}` {message}")
            }
            MineError::UnsupportedSource {
                algorithm,
                expected,
            } => {
                write!(
                    f,
                    "{} cannot mine this graph source: it expects {expected}",
                    algorithm.name()
                )
            }
        }
    }
}

impl std::error::Error for MineError {}

impl MineError {
    /// Convenience constructor for validation failures.
    pub fn invalid(field: &'static str, message: impl Into<String>) -> Self {
        MineError::InvalidConfig {
            field,
            message: message.into(),
        }
    }

    /// The offending field name, if this is a validation failure.
    pub fn field(&self) -> Option<&'static str> {
        match self {
            MineError::InvalidConfig { field, .. } => Some(field),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = MineError::invalid("support_threshold", "must be at least 1");
        let text = e.to_string();
        assert!(text.contains("support_threshold"), "{text}");
        assert_eq!(e.field(), Some("support_threshold"));
    }

    #[test]
    fn unsupported_source_names_the_algorithm() {
        let e = MineError::UnsupportedSource {
            algorithm: Algorithm::Origami,
            expected: "a graph-transaction database",
        };
        let text = e.to_string();
        assert!(text.contains("origami"), "{text}");
        assert!(e.field().is_none());
    }
}
