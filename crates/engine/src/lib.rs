//! The unified mining engine API.
//!
//! The workspace grew six mining entry points with six incompatible shapes
//! (`SpiderMiner::mine`, `TransactionMiner::mine`, and `run()` in each of the
//! four baselines). This crate puts them all behind **one** surface:
//!
//! * [`Miner`] — the single trait: `mine(&GraphSource, &mut MineContext) ->
//!   Result<MineOutcome, MineError>`, implemented by SpiderMine, its
//!   transaction adaptation, SUBDUE, MoSS, ORIGAMI and SEuS.
//! * [`MineRequest`] — a validated builder (σ, K, ε, `Dmax`, r, budgets,
//!   seed). Bad values are rejected with [`MineError::InvalidConfig`] naming
//!   the offending field, instead of the silently-accepted
//!   `support_threshold: 0` of the legacy entry points.
//! * [`MineContext`] — cooperative cancellation ([`CancelToken`]), progress
//!   callbacks ([`ProgressEvent`]), per-stage timings ([`StageTiming`]), and
//!   push-streaming of accepted patterns ([`StreamedPattern`]).
//! * [`PatternStream`] — pull-based streaming: iterate over patterns while
//!   the run proceeds on a worker thread.
//!
//! The legacy per-algorithm entry points remain as thin deprecated shims, so
//! their outputs stay byte-identical; they forward to the same `*_with`
//! implementations this crate drives.
//!
//! ```
//! use spidermine_engine::{Algorithm, GraphSource, MineContext, MineRequest, Miner};
//! use spidermine_graph::{Label, LabeledGraph};
//!
//! // A toy network: two copies of a 4-vertex pattern plus noise.
//! let mut g = LabeledGraph::new();
//! let labels = [0u32, 1, 2, 3, 0, 1, 2, 3, 5, 6];
//! let vs: Vec<_> = labels.iter().map(|&l| g.add_vertex(Label(l))).collect();
//! for (a, b) in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (8, 9)] {
//!     g.add_edge(vs[a], vs[b]);
//! }
//!
//! let miner = MineRequest::new(Algorithm::SpiderMine)
//!     .support_threshold(2)
//!     .k(3)
//!     .build()?;
//! let mut ctx = MineContext::new()
//!     .on_pattern(|p| println!("mined |E|={} support={}", p.pattern.edge_count(), p.support));
//! let outcome = miner.mine(&GraphSource::Single(&g), &mut ctx)?;
//! assert!(!outcome.patterns.is_empty());
//! assert!(!outcome.cancelled);
//! # Ok::<(), spidermine_engine::MineError>(())
//! ```

pub mod error;
pub mod miner;
pub mod request;
pub mod stream;
pub mod wire;

pub use error::MineError;
pub use miner::{
    Engine, EngineKind, GraphSource, MineOutcome, Miner, MossEngine, OrigamiEngine, SeusEngine,
    SpiderMineEngine, SubdueEngine, TransactionEngine,
};
pub use request::{Algorithm, MineRequest};
pub use stream::{OwnedGraphSource, PatternStream};
pub use wire::WireError;

// The execution-context types live in `spidermine-mining` (they are threaded
// through the algorithm crates) and are re-exported here as part of the
// engine's public surface.
pub use spidermine_mining::context::{
    CancelToken, MineContext, ProgressEvent, StageTiming, StreamedPattern,
};

// The evaluation layer (embedding arena + support oracle) also lives in
// `spidermine-mining`; re-exported so engine callers can install a shared
// oracle via `MineContext::with_support_oracle` or pick a `--support-measure`
// without depending on the mining crate directly.
pub use spidermine_mining::eval::{
    DirectOracle, EmbeddingSetId, EmbeddingStore, MemoOracle, OracleStats, SupportOracle,
};
pub use spidermine_mining::support::SupportMeasure;
