//! The [`Miner`] trait, the graph sources it mines, and the unified outcome.

use crate::error::MineError;
use crate::request::{Algorithm, MineRequest};
use spidermine::{SpiderMineConfig, SpiderMiner, TransactionMiner};
use spidermine_baselines::{moss, origami, seus, subdue};
use spidermine_baselines::{MossConfig, OrigamiConfig, SeusConfig, SubdueConfig};
use spidermine_graph::{GraphDatabase, LabeledGraph};
use spidermine_mining::context::{MineContext, StageTiming, StreamedPattern};
use std::time::{Duration, Instant};

/// What a miner mines: a single massive network, or a graph-transaction
/// database. Algorithms reject the variant they cannot handle with
/// [`MineError::UnsupportedSource`].
#[derive(Clone, Copy, Debug)]
pub enum GraphSource<'a> {
    /// The single-graph setting of the paper's main algorithm.
    Single(&'a LabeledGraph),
    /// The graph-transaction setting of Figures 14–15.
    Transactions(&'a GraphDatabase),
}

impl<'a> GraphSource<'a> {
    fn single(&self, algorithm: Algorithm) -> Result<&'a LabeledGraph, MineError> {
        match self {
            GraphSource::Single(g) => Ok(g),
            GraphSource::Transactions(_) => Err(MineError::UnsupportedSource {
                algorithm,
                expected: "a single labeled graph (GraphSource::Single)",
            }),
        }
    }

    fn transactions(&self, algorithm: Algorithm) -> Result<&'a GraphDatabase, MineError> {
        match self {
            GraphSource::Transactions(db) => Ok(db),
            GraphSource::Single(_) => Err(MineError::UnsupportedSource {
                algorithm,
                expected: "a graph-transaction database (GraphSource::Transactions)",
            }),
        }
    }
}

/// The unified result of a mining run, whichever algorithm produced it.
#[derive(Clone, Debug)]
pub struct MineOutcome {
    /// The algorithm that ran.
    pub algorithm: Algorithm,
    /// The mined patterns, in the producing algorithm's result order (support
    /// semantics are per-algorithm: MNI/disjoint embeddings for SpiderMine,
    /// disjoint instances for SUBDUE, transactions for ORIGAMI, …).
    pub patterns: Vec<StreamedPattern>,
    /// True if a fired [`CancelToken`](crate::CancelToken) wound the run down
    /// early; `patterns` is then a valid partial result.
    pub cancelled: bool,
    /// True if the run's armed deadline
    /// ([`MineRequest::deadline_ms`](crate::MineRequest::deadline_ms), or a
    /// caller-armed [`MineContext`] deadline) expired and fired the token.
    /// Implies `cancelled`; like any cancellation, a timeout yields partial
    /// results, never an error.
    pub timed_out: bool,
    /// Per-stage wall-clock timings recorded during the run.
    pub stages: Vec<StageTiming>,
    /// Total wall-clock time of the run.
    pub total_time: Duration,
    /// Effective thread count of the run: the width the per-stage timings
    /// were measured at ([`MineRequest::threads`](crate::MineRequest::threads)
    /// if set, else the pool default). Results never depend on it — the
    /// runtime's reductions are order-preserving.
    pub threads: usize,
    /// Merged-group occurrences the run had to drop because a
    /// confirmed-isomorphic union's embedding could not be re-fetched
    /// (SpiderMine merge accounting; 0 for the other algorithms, and should
    /// be 0 for SpiderMine too — a non-zero value flags a matcher/oracle
    /// disagreement instead of hiding it).
    pub dropped_embeddings: usize,
}

impl MineOutcome {
    /// Size (in edges) of the largest returned pattern, 0 if none.
    pub fn largest_edges(&self) -> usize {
        self.patterns
            .iter()
            .map(|p| p.pattern.edge_count())
            .max()
            .unwrap_or(0)
    }

    /// Size (in vertices) of the largest returned pattern, 0 if none.
    pub fn largest_vertices(&self) -> usize {
        self.patterns
            .iter()
            .map(|p| p.pattern.vertex_count())
            .max()
            .unwrap_or(0)
    }
}

/// The one trait every mining algorithm in the workspace implements: mine a
/// [`GraphSource`] under a [`MineContext`] (cancellation, progress,
/// streaming), produce a [`MineOutcome`].
///
/// Implementations must honor the context contract: poll the cancel token at
/// stage/iteration boundaries, stream each accepted pattern through the sink
/// before returning, and record per-stage timings.
pub trait Miner {
    /// The algorithm behind this miner.
    fn algorithm(&self) -> Algorithm;

    /// Runs the miner. Cancellation is not an error — a fired token yields
    /// `Ok` with `outcome.cancelled == true` and partial patterns.
    fn mine(&self, host: &GraphSource<'_>, ctx: &mut MineContext)
        -> Result<MineOutcome, MineError>;
}

fn finish_outcome(
    algorithm: Algorithm,
    patterns: Vec<StreamedPattern>,
    ctx: &mut MineContext,
    start: Instant,
) -> MineOutcome {
    MineOutcome {
        algorithm,
        patterns,
        cancelled: ctx.was_cancelled(),
        timed_out: ctx.timed_out(),
        stages: ctx.take_timings(),
        total_time: start.elapsed(),
        // Inside an `Engine` run this reflects the request's `threads` knob
        // (the engine wraps the run in the matching width scope).
        threads: rayon::current_num_threads(),
        dropped_embeddings: 0,
    }
}

/// SpiderMine behind the unified API.
#[derive(Clone, Debug)]
pub struct SpiderMineEngine {
    config: SpiderMineConfig,
}

impl SpiderMineEngine {
    /// Wraps a raw config, reporting invalid values as [`MineError`] instead
    /// of the legacy constructor panic.
    pub fn new(config: SpiderMineConfig) -> Result<Self, MineError> {
        config
            .validate()
            .map_err(|message| MineError::InvalidConfig {
                field: "config",
                message,
            })?;
        Ok(Self { config })
    }

    /// The underlying configuration.
    pub fn config(&self) -> &SpiderMineConfig {
        &self.config
    }
}

impl Miner for SpiderMineEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::SpiderMine
    }

    fn mine(
        &self,
        host: &GraphSource<'_>,
        ctx: &mut MineContext,
    ) -> Result<MineOutcome, MineError> {
        let g = host.single(self.algorithm())?;
        let start = Instant::now();
        let result = SpiderMiner::new(self.config.clone()).mine_with(g, ctx);
        let dropped = result.stats.merge_embeddings_dropped;
        let patterns = result
            .patterns
            .into_iter()
            .map(|p| StreamedPattern {
                pattern: p.pattern,
                support: p.support,
                embeddings: p.embeddings,
            })
            .collect();
        let mut outcome = finish_outcome(self.algorithm(), patterns, ctx, start);
        outcome.dropped_embeddings = dropped;
        Ok(outcome)
    }
}

/// SpiderMine's graph-transaction adaptation behind the unified API.
#[derive(Clone, Debug)]
pub struct TransactionEngine {
    config: SpiderMineConfig,
}

impl TransactionEngine {
    /// Wraps a raw config, reporting invalid values as [`MineError`].
    pub fn new(config: SpiderMineConfig) -> Result<Self, MineError> {
        config
            .validate()
            .map_err(|message| MineError::InvalidConfig {
                field: "config",
                message,
            })?;
        Ok(Self { config })
    }
}

impl Miner for TransactionEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::SpiderMineTransactions
    }

    fn mine(
        &self,
        host: &GraphSource<'_>,
        ctx: &mut MineContext,
    ) -> Result<MineOutcome, MineError> {
        let db = host.transactions(self.algorithm())?;
        let start = Instant::now();
        let result = TransactionMiner::new(self.config.clone()).mine_with(db, ctx);
        let dropped = result.stats.merge_embeddings_dropped;
        let patterns = result
            .patterns
            .into_iter()
            .map(|p| StreamedPattern {
                pattern: p.pattern,
                support: p.transaction_support,
                embeddings: Vec::new(),
            })
            .collect();
        let mut outcome = finish_outcome(self.algorithm(), patterns, ctx, start);
        outcome.dropped_embeddings = dropped;
        Ok(outcome)
    }
}

/// SUBDUE behind the unified API. Support is the number of vertex-disjoint
/// instances.
#[derive(Clone, Debug)]
pub struct SubdueEngine {
    config: SubdueConfig,
}

impl SubdueEngine {
    /// Wraps a SUBDUE configuration, rejecting invalid values with
    /// [`MineError::InvalidConfig`] naming the field.
    pub fn new(config: SubdueConfig) -> Result<Self, MineError> {
        if config.min_instances == 0 {
            return Err(MineError::invalid("min_instances", "must be at least 1"));
        }
        if config.report == 0 {
            return Err(MineError::invalid("report", "must be at least 1"));
        }
        if config.beam_width == 0 {
            return Err(MineError::invalid("beam_width", "must be at least 1"));
        }
        if config.max_edges == 0 {
            return Err(MineError::invalid("max_edges", "must be at least 1"));
        }
        if config.max_embeddings == 0 {
            return Err(MineError::invalid("max_embeddings", "must be at least 1"));
        }
        if config.time_budget.is_zero() {
            return Err(MineError::invalid("time_budget", "must be positive"));
        }
        Ok(Self { config })
    }
}

impl Miner for SubdueEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Subdue
    }

    fn mine(
        &self,
        host: &GraphSource<'_>,
        ctx: &mut MineContext,
    ) -> Result<MineOutcome, MineError> {
        let g = host.single(self.algorithm())?;
        let start = Instant::now();
        let result = subdue::run_with(g, &self.config, ctx);
        let patterns = result
            .patterns
            .into_iter()
            .map(|p| StreamedPattern {
                pattern: p.pattern,
                support: p.instances,
                embeddings: Vec::new(),
            })
            .collect();
        Ok(finish_outcome(self.algorithm(), patterns, ctx, start))
    }
}

/// The MoSS/gSpan-style complete miner behind the unified API.
#[derive(Clone, Debug)]
pub struct MossEngine {
    config: MossConfig,
}

impl MossEngine {
    /// Wraps a MoSS configuration, rejecting invalid values with
    /// [`MineError::InvalidConfig`] naming the field.
    pub fn new(config: MossConfig) -> Result<Self, MineError> {
        if config.support_threshold == 0 {
            return Err(MineError::invalid(
                "support_threshold",
                "must be at least 1",
            ));
        }
        if config.max_edges == 0 {
            return Err(MineError::invalid("max_edges", "must be at least 1"));
        }
        if config.max_embeddings == 0 {
            return Err(MineError::invalid("max_embeddings", "must be at least 1"));
        }
        if config.time_budget.is_zero() {
            return Err(MineError::invalid("time_budget", "must be positive"));
        }
        Ok(Self { config })
    }
}

impl Miner for MossEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Moss
    }

    fn mine(
        &self,
        host: &GraphSource<'_>,
        ctx: &mut MineContext,
    ) -> Result<MineOutcome, MineError> {
        let g = host.single(self.algorithm())?;
        let start = Instant::now();
        let result = moss::run_with(g, &self.config, ctx);
        let patterns = result
            .patterns
            .into_iter()
            .map(|p| StreamedPattern {
                pattern: p.pattern,
                support: p.support,
                embeddings: Vec::new(),
            })
            .collect();
        Ok(finish_outcome(self.algorithm(), patterns, ctx, start))
    }
}

/// ORIGAMI behind the unified API. Requires a transaction database.
#[derive(Clone, Debug)]
pub struct OrigamiEngine {
    config: OrigamiConfig,
}

impl OrigamiEngine {
    /// Wraps an ORIGAMI configuration, rejecting invalid values with
    /// [`MineError::InvalidConfig`] naming the field.
    pub fn new(config: OrigamiConfig) -> Result<Self, MineError> {
        if config.support_threshold == 0 {
            return Err(MineError::invalid(
                "support_threshold",
                "must be at least 1",
            ));
        }
        if config.samples == 0 {
            return Err(MineError::invalid("samples", "must be at least 1"));
        }
        if !(0.0..=1.0).contains(&config.alpha) {
            return Err(MineError::invalid("alpha", "must lie in [0, 1]"));
        }
        if config.max_edges == 0 {
            return Err(MineError::invalid("max_edges", "must be at least 1"));
        }
        if config.time_budget.is_zero() {
            return Err(MineError::invalid("time_budget", "must be positive"));
        }
        Ok(Self { config })
    }
}

impl Miner for OrigamiEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Origami
    }

    fn mine(
        &self,
        host: &GraphSource<'_>,
        ctx: &mut MineContext,
    ) -> Result<MineOutcome, MineError> {
        let db = host.transactions(self.algorithm())?;
        let start = Instant::now();
        let result = origami::run_with(db, &self.config, ctx);
        let patterns = result
            .patterns
            .into_iter()
            .map(|p| StreamedPattern {
                pattern: p.pattern,
                support: p.support,
                embeddings: Vec::new(),
            })
            .collect();
        Ok(finish_outcome(self.algorithm(), patterns, ctx, start))
    }
}

/// SEuS behind the unified API.
#[derive(Clone, Debug)]
pub struct SeusEngine {
    config: SeusConfig,
}

impl SeusEngine {
    /// Wraps a SEuS configuration, rejecting invalid values with
    /// [`MineError::InvalidConfig`] naming the field.
    pub fn new(config: SeusConfig) -> Result<Self, MineError> {
        if config.support_threshold == 0 {
            return Err(MineError::invalid(
                "support_threshold",
                "must be at least 1",
            ));
        }
        if config.max_vertices < 2 {
            return Err(MineError::invalid(
                "max_vertices",
                "must be at least 2 (a pattern needs an edge)",
            ));
        }
        if config.max_embeddings == 0 {
            return Err(MineError::invalid("max_embeddings", "must be at least 1"));
        }
        if config.time_budget.is_zero() {
            return Err(MineError::invalid("time_budget", "must be positive"));
        }
        Ok(Self { config })
    }
}

impl Miner for SeusEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Seus
    }

    fn mine(
        &self,
        host: &GraphSource<'_>,
        ctx: &mut MineContext,
    ) -> Result<MineOutcome, MineError> {
        let g = host.single(self.algorithm())?;
        let start = Instant::now();
        let result = seus::run_with(g, &self.config, ctx);
        let patterns = result
            .patterns
            .into_iter()
            .map(|p| StreamedPattern {
                pattern: p.pattern,
                support: p.support,
                embeddings: Vec::new(),
            })
            .collect();
        Ok(finish_outcome(self.algorithm(), patterns, ctx, start))
    }
}

/// The concrete per-algorithm engines behind one dispatching type.
#[derive(Clone, Debug)]
pub enum EngineKind {
    /// SpiderMine on a single graph.
    SpiderMine(SpiderMineEngine),
    /// SpiderMine on a transaction database.
    SpiderMineTransactions(TransactionEngine),
    /// SUBDUE beam search.
    Subdue(SubdueEngine),
    /// MoSS/gSpan-style complete mining.
    Moss(MossEngine),
    /// ORIGAMI sampling.
    Origami(OrigamiEngine),
    /// SEuS summary-graph mining.
    Seus(SeusEngine),
}

/// A ready-to-run miner built from a validated [`MineRequest`]: the
/// algorithm engine plus the request's execution knobs (currently the
/// thread-count cap, applied as a width scope around every run).
#[derive(Clone, Debug)]
pub struct Engine {
    kind: EngineKind,
    threads: Option<usize>,
    deadline: Option<Duration>,
}

impl Engine {
    /// Builds the engine for an already-validated request.
    /// ([`MineRequest::build`] is the public path; it validates first.)
    pub(crate) fn from_validated_request(request: &MineRequest) -> Self {
        let kind = match request.algorithm() {
            Algorithm::SpiderMine => EngineKind::SpiderMine(SpiderMineEngine {
                config: request.spidermine_config(),
            }),
            Algorithm::SpiderMineTransactions => {
                EngineKind::SpiderMineTransactions(TransactionEngine {
                    config: request.spidermine_config(),
                })
            }
            // A validated request maps onto valid per-algorithm configs (the
            // per-field checks below are a subset of `MineRequest::validate`
            // plus always-valid defaults), so these cannot fail.
            Algorithm::Subdue => EngineKind::Subdue(
                SubdueEngine::new(request.subdue_config())
                    .expect("validated request maps to a valid SUBDUE config"),
            ),
            Algorithm::Moss => EngineKind::Moss(
                MossEngine::new(request.moss_config())
                    .expect("validated request maps to a valid MoSS config"),
            ),
            Algorithm::Origami => EngineKind::Origami(
                OrigamiEngine::new(request.origami_config())
                    .expect("validated request maps to a valid ORIGAMI config"),
            ),
            Algorithm::Seus => EngineKind::Seus(
                SeusEngine::new(request.seus_config())
                    .expect("validated request maps to a valid SEuS config"),
            ),
        };
        Self {
            kind,
            threads: request.requested_threads(),
            deadline: request.requested_deadline(),
        }
    }

    /// The per-algorithm engine this run dispatches to.
    pub fn kind(&self) -> &EngineKind {
        &self.kind
    }
}

impl Miner for EngineKind {
    fn algorithm(&self) -> Algorithm {
        match self {
            EngineKind::SpiderMine(m) => m.algorithm(),
            EngineKind::SpiderMineTransactions(m) => m.algorithm(),
            EngineKind::Subdue(m) => m.algorithm(),
            EngineKind::Moss(m) => m.algorithm(),
            EngineKind::Origami(m) => m.algorithm(),
            EngineKind::Seus(m) => m.algorithm(),
        }
    }

    fn mine(
        &self,
        host: &GraphSource<'_>,
        ctx: &mut MineContext,
    ) -> Result<MineOutcome, MineError> {
        match self {
            EngineKind::SpiderMine(m) => m.mine(host, ctx),
            EngineKind::SpiderMineTransactions(m) => m.mine(host, ctx),
            EngineKind::Subdue(m) => m.mine(host, ctx),
            EngineKind::Moss(m) => m.mine(host, ctx),
            EngineKind::Origami(m) => m.mine(host, ctx),
            EngineKind::Seus(m) => m.mine(host, ctx),
        }
    }
}

impl Miner for Engine {
    fn algorithm(&self) -> Algorithm {
        self.kind.algorithm()
    }

    fn mine(
        &self,
        host: &GraphSource<'_>,
        ctx: &mut MineContext,
    ) -> Result<MineOutcome, MineError> {
        // Arm the request's deadline on the context; the miners' cancel polls
        // turn its expiry into a cooperative wind-down (partial results, the
        // outcome's `timed_out` flag set). A caller-armed context deadline is
        // left alone when the request has none.
        if let Some(deadline) = self.deadline {
            ctx.set_deadline_in(deadline);
        }
        // One `engine_mine` span per run, under the caller's trace identity
        // (the scheduler's `running` span; (0, 0) for untraced callers), and
        // one end-to-end latency observation per algorithm in the
        // process-wide registry. Both happen once per run — the mining hot
        // path inside stays allocation-free.
        let (trace, parent) = ctx.trace();
        let span = spidermine_telemetry::span_start("engine_mine", trace, parent);
        let started = Instant::now();
        let result = match self.threads {
            // Pin every parallel region of the run to the requested width
            // (the pool grows on demand if the width exceeds it). The
            // outcome's `threads` field reports this effective count.
            Some(threads) => rayon::with_width(threads, || self.kind.mine(host, ctx)),
            None => self.kind.mine(host, ctx),
        };
        spidermine_telemetry::global()
            .histogram(&format!(
                "engine_mine_nanos{{algorithm=\"{}\"}}",
                self.kind.algorithm().name()
            ))
            .observe_duration(started.elapsed());
        spidermine_telemetry::span_end("engine_mine", trace, span);
        result
    }
}
