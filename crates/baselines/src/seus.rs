//! SEuS: candidate generation from a label-collapsed summary graph.
//!
//! SEuS collapses all vertices with the same label into a single summary
//! vertex; summary edges carry the number of data edges between the two label
//! classes. Connected summary subgraphs whose minimum edge weight reaches the
//! support threshold are candidate patterns (the weight is an upper bound on
//! the true support), which are then verified against the data graph. Because
//! the summary has one vertex per label, candidates can never use a label
//! twice — which is why SEuS "returns mostly small structures" in the paper's
//! experiments (Figures 4–8) and why it struggles when many low-frequency
//! patterns exist.

use rustc_hash::FxHashMap;
use spidermine_graph::graph::LabeledGraph;
use spidermine_graph::label::Label;
use spidermine_mining::context::{MineContext, StreamedPattern};
use spidermine_mining::eval::EmbeddingStore;
use spidermine_mining::support::SupportMeasure;
use std::time::{Duration, Instant};

/// Configuration of the SEuS baseline.
#[derive(Clone, Debug)]
pub struct SeusConfig {
    /// Minimum (verified) support for a pattern to be reported.
    pub support_threshold: usize,
    /// Maximum number of vertices in a candidate pattern.
    pub max_vertices: usize,
    /// Cap on embeddings enumerated during verification.
    pub max_embeddings: usize,
    /// Wall-clock budget.
    pub time_budget: Duration,
}

impl Default for SeusConfig {
    fn default() -> Self {
        Self {
            support_threshold: 2,
            max_vertices: 5,
            max_embeddings: 500,
            time_budget: Duration::from_secs(120),
        }
    }
}

/// A pattern reported by SEuS.
#[derive(Clone, Debug)]
pub struct SeusPattern {
    /// The pattern graph.
    pub pattern: LabeledGraph,
    /// Verified (vertex-disjoint) support in the data graph.
    pub support: usize,
    /// The optimistic support estimate taken from the summary graph.
    pub estimate: usize,
}

/// Result of a SEuS run.
#[derive(Clone, Debug, Default)]
pub struct SeusResult {
    /// Frequent patterns found, sorted by decreasing size then support.
    pub patterns: Vec<SeusPattern>,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// True if the candidate enumeration hit the time budget.
    pub timed_out: bool,
}

impl SeusResult {
    /// Histogram of pattern sizes in vertices.
    pub fn size_histogram_vertices(&self) -> std::collections::BTreeMap<usize, usize> {
        let mut hist = std::collections::BTreeMap::new();
        for p in &self.patterns {
            *hist.entry(p.pattern.vertex_count()).or_insert(0) += 1;
        }
        hist
    }
}

/// The label-collapsed summary: vertices are labels, edges carry data-edge counts.
#[derive(Debug, Default)]
struct Summary {
    labels: Vec<Label>,
    /// Edge weights keyed by (smaller label index, larger label index).
    weights: FxHashMap<(usize, usize), usize>,
}

fn build_summary(host: &LabeledGraph) -> Summary {
    let mut labels: Vec<Label> = host.labels().to_vec();
    labels.sort_unstable();
    labels.dedup();
    let index: FxHashMap<Label, usize> = labels.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    let mut weights: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    for (u, v) in host.edges() {
        let (a, b) = (index[&host.label(u)], index[&host.label(v)]);
        let key = (a.min(b), a.max(b));
        *weights.entry(key).or_insert(0) += 1;
    }
    Summary { labels, weights }
}

/// Runs the SEuS baseline on a single graph.
///
/// Thin shim over [`run_with`]; new code should go through the unified
/// engine API (`spidermine-engine`).
pub fn run(host: &LabeledGraph, config: &SeusConfig) -> SeusResult {
    run_with(host, config, &mut MineContext::new())
}

/// [`run`] with an execution context: the cancel token is polled in both the
/// candidate-generation and verification loops (a fired token returns the
/// patterns verified so far), and the verified patterns stream through the
/// context's sink before returning.
pub fn run_with(host: &LabeledGraph, config: &SeusConfig, ctx: &mut MineContext) -> SeusResult {
    let start = Instant::now();
    let mut result = SeusResult::default();
    let summary = build_summary(host);
    let n = summary.labels.len();

    // Enumerate connected label subsets by growing from each label along
    // summary edges whose weight reaches the threshold.
    // Each candidate: (label indices, summary edges used, support estimate).
    type Candidate = (Vec<usize>, Vec<(usize, usize)>, usize);
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut frontier: Vec<Candidate> = (0..n).map(|i| (vec![i], Vec::new(), usize::MAX)).collect();
    while let Some((members, edges, estimate)) = frontier.pop() {
        if ctx.is_cancelled() {
            break;
        }
        if start.elapsed() > config.time_budget {
            result.timed_out = true;
            break;
        }
        if members.len() > 1 {
            candidates.push((members.clone(), edges.clone(), estimate));
        }
        if members.len() >= config.max_vertices {
            continue;
        }
        let last = *members.last().expect("non-empty");
        for next in (last + 1)..n {
            if members.contains(&next) {
                continue;
            }
            // Connect `next` to any existing member with a heavy-enough edge.
            let mut best_connection = None;
            for &m in &members {
                let key = (m.min(next), m.max(next));
                if let Some(&w) = summary.weights.get(&key) {
                    if w >= config.support_threshold {
                        best_connection = Some((key, w));
                        break;
                    }
                }
            }
            if let Some((key, w)) = best_connection {
                let mut new_members = members.clone();
                new_members.push(next);
                let mut new_edges = edges.clone();
                new_edges.push(key);
                frontier.push((new_members, new_edges, estimate.min(w)));
            }
        }
    }

    // Verify candidates against the data graph: each candidate's embeddings
    // are discovered into the shared arena (scratch matcher — summary
    // candidates have no parent set to extend from) and support is computed
    // straight off the flat rows.
    let mut store = EmbeddingStore::new();
    for (members, edges, estimate) in candidates {
        if ctx.is_cancelled() {
            break;
        }
        if start.elapsed() > config.time_budget {
            result.timed_out = true;
            break;
        }
        let mut pattern = LabeledGraph::new();
        let mut position: FxHashMap<usize, u32> = FxHashMap::default();
        for &m in &members {
            let v = pattern.add_vertex(summary.labels[m]);
            position.insert(m, v.0);
        }
        for (a, b) in edges {
            pattern.add_edge(position[&a].into(), position[&b].into());
        }
        let set = store.discover(&pattern, host, config.max_embeddings);
        let support = store.view(set).support(SupportMeasure::GreedyDisjoint);
        if support >= config.support_threshold {
            result.patterns.push(SeusPattern {
                pattern,
                support,
                estimate,
            });
        }
        // A verified candidate's set is dead immediately; start a fresh arena
        // before the dead spans grow past a bound.
        if store.pool_len() > (1 << 18) {
            store = EmbeddingStore::new();
        }
    }
    result
        .patterns
        .sort_by_key(|p| std::cmp::Reverse((p.pattern.vertex_count(), p.support)));
    for p in &result.patterns {
        ctx.emit_with(|| StreamedPattern {
            pattern: p.pattern.clone(),
            support: p.support,
            embeddings: Vec::new(),
        });
    }
    result.runtime = start.elapsed();
    ctx.record_stage("summarize-verify", result.runtime);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten copies of the labeled edge 0-1 plus two copies of the path 2-3-4.
    fn host() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        for _ in 0..10 {
            let a = g.add_vertex(Label(0));
            let b = g.add_vertex(Label(1));
            g.add_edge(a, b);
        }
        for _ in 0..2 {
            let a = g.add_vertex(Label(2));
            let b = g.add_vertex(Label(3));
            let c = g.add_vertex(Label(4));
            g.add_edge(a, b);
            g.add_edge(b, c);
        }
        g
    }

    #[test]
    fn summary_counts_edges_per_label_pair() {
        let s = build_summary(&host());
        assert_eq!(s.labels.len(), 5);
        // label pair (0,1) appears 10 times.
        assert_eq!(s.weights[&(0, 1)], 10);
        assert_eq!(s.weights[&(2, 3)], 2);
    }

    #[test]
    fn finds_frequent_small_patterns() {
        let result = run(&host(), &SeusConfig::default());
        assert!(!result.patterns.is_empty());
        // The 0-1 edge must be found with support 10.
        let edge01 = result
            .patterns
            .iter()
            .find(|p| p.pattern.vertex_count() == 2 && p.support == 10)
            .expect("0-1 edge pattern");
        assert!(edge01.estimate >= edge01.support);
        // The 2-3-4 path must be found with support 2.
        assert!(result
            .patterns
            .iter()
            .any(|p| p.pattern.vertex_count() == 3 && p.support == 2));
    }

    #[test]
    fn candidates_never_repeat_a_label() {
        let result = run(&host(), &SeusConfig::default());
        for p in &result.patterns {
            assert_eq!(
                p.pattern.distinct_label_count(),
                p.pattern.vertex_count(),
                "SEuS candidates use each label at most once"
            );
        }
    }

    #[test]
    fn support_threshold_is_enforced() {
        let result = run(
            &host(),
            &SeusConfig {
                support_threshold: 3,
                ..SeusConfig::default()
            },
        );
        assert!(result.patterns.iter().all(|p| p.support >= 3));
        assert!(!result
            .patterns
            .iter()
            .any(|p| p.pattern.vertex_count() == 3));
    }

    #[test]
    fn max_vertices_bounds_pattern_size() {
        let result = run(
            &host(),
            &SeusConfig {
                max_vertices: 2,
                ..SeusConfig::default()
            },
        );
        assert!(result
            .patterns
            .iter()
            .all(|p| p.pattern.vertex_count() <= 2));
    }
}
