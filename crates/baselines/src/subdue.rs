//! SUBDUE: beam search over substructures guided by MDL compression.
//!
//! SUBDUE repeatedly evaluates candidate substructures by how well replacing
//! their (vertex-disjoint) instances with a single super-vertex compresses the
//! description length of the input graph, keeps the best `beam_width`
//! candidates, and extends them by one edge. The heuristic strongly favours
//! small patterns with many instances — which is exactly the behaviour the
//! SpiderMine paper reports in Figures 4–8 (SUBDUE's bars sit at small sizes).

use spidermine_graph::graph::LabeledGraph;
use spidermine_mining::context::{MineContext, StreamedPattern};
use spidermine_mining::eval::{EmbeddingSetId, EmbeddingStore};
use spidermine_mining::extension::{
    frequent_single_edges_in, one_edge_extensions_in, StoredPattern,
};
use spidermine_mining::pattern_index::PatternIndex;
use spidermine_mining::support::SupportMeasure;
use std::time::{Duration, Instant};

/// Configuration of the SUBDUE baseline.
#[derive(Clone, Debug)]
pub struct SubdueConfig {
    /// Beam width (number of candidate substructures kept per level).
    pub beam_width: usize,
    /// Maximum number of edges of a substructure.
    pub max_edges: usize,
    /// Number of best substructures reported.
    pub report: usize,
    /// Minimum number of vertex-disjoint instances for a substructure to be
    /// considered at all.
    pub min_instances: usize,
    /// Cap on embeddings tracked per candidate.
    pub max_embeddings: usize,
    /// Wall-clock budget; the search stops early when exceeded.
    pub time_budget: Duration,
}

impl Default for SubdueConfig {
    fn default() -> Self {
        Self {
            beam_width: 4,
            max_edges: 40,
            report: 20,
            min_instances: 2,
            max_embeddings: 500,
            time_budget: Duration::from_secs(120),
        }
    }
}

/// A substructure reported by SUBDUE.
#[derive(Clone, Debug)]
pub struct SubduePattern {
    /// The substructure graph.
    pub pattern: LabeledGraph,
    /// Number of vertex-disjoint instances found.
    pub instances: usize,
    /// MDL compression value (higher is better).
    pub compression: f64,
}

/// Result of a SUBDUE run.
#[derive(Clone, Debug, Default)]
pub struct SubdueResult {
    /// Best substructures, sorted by decreasing compression value.
    pub patterns: Vec<SubduePattern>,
    /// Wall-clock time of the run.
    pub runtime: Duration,
    /// True if the search stopped because of the time budget.
    pub timed_out: bool,
}

impl SubdueResult {
    /// Histogram of pattern sizes in vertices.
    pub fn size_histogram_vertices(&self) -> std::collections::BTreeMap<usize, usize> {
        let mut hist = std::collections::BTreeMap::new();
        for p in &self.patterns {
            *hist.entry(p.pattern.vertex_count()).or_insert(0) += 1;
        }
        hist
    }
}

/// Approximate description length of a labeled graph in bits.
fn description_length(vertices: usize, edges: usize, label_count: usize) -> f64 {
    if vertices == 0 {
        return 0.0;
    }
    let label_bits = (label_count.max(2) as f64).log2();
    let vertex_bits = (vertices.max(2) as f64).log2();
    vertices as f64 * label_bits + edges as f64 * 2.0 * vertex_bits
}

/// MDL compression value of a substructure with `instances` disjoint instances:
/// `DL(G) / (DL(S) + DL(G | S))`.
fn compression_value(
    host_vertices: usize,
    host_edges: usize,
    label_count: usize,
    pattern: &LabeledGraph,
    instances: usize,
) -> f64 {
    let dl_g = description_length(host_vertices, host_edges, label_count);
    let dl_s = description_length(pattern.vertex_count(), pattern.edge_count(), label_count);
    // Each compressed instance removes |Vs|-1 vertices and |Es| edges
    // (the instance collapses into one super-vertex).
    let compressed_vertices =
        host_vertices.saturating_sub(instances * pattern.vertex_count().saturating_sub(1));
    let compressed_edges = host_edges.saturating_sub(instances * pattern.edge_count());
    let dl_rest = description_length(compressed_vertices, compressed_edges, label_count + 1);
    dl_g / (dl_s + dl_rest).max(1e-9)
}

/// Runs the SUBDUE baseline on a single graph.
///
/// Thin shim over [`run_with`]; new code should go through the unified
/// engine API (`spidermine-engine`).
pub fn run(host: &LabeledGraph, config: &SubdueConfig) -> SubdueResult {
    run_with(host, config, &mut MineContext::new())
}

/// [`run`] with an execution context: the cancel token is polled once per
/// beam level (a fired token ends the search with the substructures collected
/// so far), and the reported substructures stream through the context's sink
/// before returning.
pub fn run_with(host: &LabeledGraph, config: &SubdueConfig, ctx: &mut MineContext) -> SubdueResult {
    let start = Instant::now();
    let label_count = host.distinct_label_count();
    let mut result = SubdueResult::default();
    let mut best: Vec<SubduePattern> = Vec::new();
    let mut seen = PatternIndex::new();
    // Candidate embeddings live in one flat arena; the beam carries
    // `EmbeddingSetId` handles and children are produced by the incremental
    // extension engine instead of per-child embedding clones.
    let mut store = EmbeddingStore::new();

    let evaluate = |sp: &StoredPattern, store: &EmbeddingStore| -> SubduePattern {
        let instances = store.view(sp.set).support(SupportMeasure::GreedyDisjoint);
        SubduePattern {
            pattern: sp.pattern.clone(),
            instances,
            compression: compression_value(
                host.vertex_count(),
                host.edge_count(),
                label_count,
                &sp.pattern,
                instances,
            ),
        }
    };

    let mut beam: Vec<StoredPattern> = frequent_single_edges_in(
        &mut store,
        host,
        config.min_instances,
        SupportMeasure::EmbeddingCount,
        config.max_embeddings,
    );
    while !beam.is_empty() {
        if ctx.is_cancelled() {
            break;
        }
        if start.elapsed() > config.time_budget {
            result.timed_out = true;
            break;
        }
        // Evaluate and record the current beam.
        let mut scored: Vec<(f64, StoredPattern)> = Vec::new();
        for sp in beam.drain(..) {
            let evaluated = evaluate(&sp, &store);
            if evaluated.instances < config.min_instances {
                continue;
            }
            let (_, fresh) = seen.insert(sp.pattern.clone());
            if fresh {
                best.push(evaluated.clone());
            }
            scored.push((evaluated.compression, sp));
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(config.beam_width);

        // Extend the surviving beam members by one edge.
        let mut next: Vec<StoredPattern> = Vec::new();
        for (_, sp) in &scored {
            if sp.pattern.edge_count() >= config.max_edges {
                continue;
            }
            if start.elapsed() > config.time_budget {
                result.timed_out = true;
                break;
            }
            for ext in one_edge_extensions_in(
                &mut store,
                host,
                &sp.pattern,
                sp.set,
                config.min_instances,
                SupportMeasure::EmbeddingCount,
                config.max_embeddings,
            ) {
                next.push(ext.child);
            }
        }
        beam = next;
        // The arena never frees: once the surviving beam owns a minority of
        // the pool, re-intern just its sets.
        let live: Vec<EmbeddingSetId> = beam.iter().map(|sp| sp.set).collect();
        if let Some(remap) = store.maybe_compact(&live, 1 << 18) {
            for sp in &mut beam {
                sp.set = remap[&sp.set];
            }
        }
    }

    best.sort_by(|a, b| {
        b.compression
            .partial_cmp(&a.compression)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    best.truncate(config.report);
    result.patterns = best;
    for p in &result.patterns {
        ctx.emit_with(|| StreamedPattern {
            pattern: p.pattern.clone(),
            support: p.instances,
            embeddings: Vec::new(),
        });
    }
    result.runtime = start.elapsed();
    ctx.record_stage("beam-search", result.runtime);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use spidermine_graph::generate;
    use spidermine_graph::label::Label;

    #[test]
    fn description_length_is_monotone() {
        assert!(description_length(10, 20, 5) > description_length(5, 10, 5));
        assert_eq!(description_length(0, 0, 5), 0.0);
    }

    #[test]
    fn compression_rewards_frequent_substructures() {
        let pattern = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let few = compression_value(100, 200, 10, &pattern, 2);
        let many = compression_value(100, 200, 10, &pattern, 20);
        assert!(many > few);
    }

    #[test]
    fn finds_frequent_small_substructure() {
        // A graph made of many copies of the same labeled edge compresses well.
        let mut host = LabeledGraph::new();
        for _ in 0..10 {
            let a = host.add_vertex(Label(0));
            let b = host.add_vertex(Label(1));
            host.add_edge(a, b);
        }
        let result = run(&host, &SubdueConfig::default());
        assert!(!result.patterns.is_empty());
        let top = &result.patterns[0];
        assert_eq!(top.pattern.edge_count(), 1);
        assert_eq!(top.instances, 10);
        assert!(!result.timed_out);
    }

    #[test]
    fn prefers_small_frequent_over_large_rare() {
        // Background with an injected large pattern of only 2 copies plus many
        // repeated small edges: SUBDUE's top pattern should be small.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut host = generate::erdos_renyi_average_degree(&mut rng, 150, 2.0, 4);
        let big = generate::random_connected_pattern(&mut rng, 15, 4, 3);
        generate::inject_pattern(&mut rng, &mut host, &big, 2, 2);
        let result = run(
            &host,
            &SubdueConfig {
                max_edges: 20,
                ..SubdueConfig::default()
            },
        );
        assert!(!result.patterns.is_empty());
        assert!(
            result.patterns[0].pattern.vertex_count() < 15,
            "SUBDUE should favour small, frequent substructures"
        );
    }

    #[test]
    fn time_budget_is_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let host = generate::erdos_renyi_average_degree(&mut rng, 400, 4.0, 3);
        let result = run(
            &host,
            &SubdueConfig {
                time_budget: Duration::from_millis(50),
                max_edges: 1000,
                ..SubdueConfig::default()
            },
        );
        // Either it finished quickly or it noticed the timeout; both are fine,
        // but the run must not take unboundedly long.
        assert!(result.runtime < Duration::from_secs(30));
    }

    #[test]
    fn report_limit_is_respected() {
        let mut host = LabeledGraph::new();
        for i in 0..12u32 {
            let a = host.add_vertex(Label(i % 3));
            let b = host.add_vertex(Label((i + 1) % 3));
            host.add_edge(a, b);
        }
        let result = run(
            &host,
            &SubdueConfig {
                report: 2,
                ..SubdueConfig::default()
            },
        );
        assert!(result.patterns.len() <= 2);
    }
}
