//! A MoSS/gSpan-style complete frequent-subgraph miner for the single-graph
//! setting.
//!
//! The miner follows the classical edge-by-edge pattern-growth paradigm: start
//! from every frequent single edge, repeatedly apply all frequent one-edge
//! extensions, and deduplicate candidates by isomorphism. Support is
//! overlap-aware (greedy vertex-disjoint count), in the spirit of Fiedler &
//! Borgelt's harmful-overlap measure that MoSS implements.
//!
//! Mining the *complete* pattern set is exponential, which is the whole point
//! of the paper's comparison (Figures 9 and 16: MoSS cannot finish on most of
//! the GID datasets within 10 hours). The implementation therefore takes a
//! wall-clock budget and reports whether it completed; the experiment harness
//! prints "-" for runs that exceed the budget, exactly as the paper does.

use spidermine_graph::graph::LabeledGraph;
use spidermine_mining::context::{MineContext, StreamedPattern};
use spidermine_mining::eval::{EmbeddingSetId, EmbeddingStore};
use spidermine_mining::extension::{
    frequent_single_edges_in, one_edge_extensions_in, StoredPattern,
};
use spidermine_mining::pattern_index::PatternIndex;
use spidermine_mining::support::SupportMeasure;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Configuration of the complete miner.
#[derive(Clone, Debug)]
pub struct MossConfig {
    /// Minimum support (greedy vertex-disjoint embeddings).
    pub support_threshold: usize,
    /// Maximum number of edges per pattern (safety bound; the complete set is
    /// usually exhausted or the time budget hit long before).
    pub max_edges: usize,
    /// Cap on embeddings tracked per pattern.
    pub max_embeddings: usize,
    /// Wall-clock budget; mining stops (and is marked incomplete) beyond it.
    pub time_budget: Duration,
    /// Support measure (the paper's setting corresponds to an overlap-aware
    /// count; the default is greedy vertex-disjoint).
    pub support_measure: SupportMeasure,
}

impl Default for MossConfig {
    fn default() -> Self {
        Self {
            support_threshold: 2,
            max_edges: 64,
            max_embeddings: 400,
            time_budget: Duration::from_secs(60),
            support_measure: SupportMeasure::GreedyDisjoint,
        }
    }
}

/// A pattern in the (partial) complete set.
#[derive(Clone, Debug)]
pub struct MossPattern {
    /// The pattern graph.
    pub pattern: LabeledGraph,
    /// Support under the configured measure.
    pub support: usize,
}

/// Result of a complete-mining run.
#[derive(Clone, Debug, Default)]
pub struct MossResult {
    /// All frequent patterns found (complete if `completed` is true).
    pub patterns: Vec<MossPattern>,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// True if the full pattern space was explored within the budget.
    pub completed: bool,
    /// Number of candidate patterns generated (work measure).
    pub candidates_generated: usize,
}

impl MossResult {
    /// Histogram of pattern sizes in vertices.
    pub fn size_histogram_vertices(&self) -> std::collections::BTreeMap<usize, usize> {
        let mut hist = std::collections::BTreeMap::new();
        for p in &self.patterns {
            *hist.entry(p.pattern.vertex_count()).or_insert(0) += 1;
        }
        hist
    }

    /// Size (in vertices) of the largest frequent pattern found.
    pub fn largest_vertices(&self) -> usize {
        self.patterns
            .iter()
            .map(|p| p.pattern.vertex_count())
            .max()
            .unwrap_or(0)
    }
}

/// Runs the complete miner on a single graph.
///
/// Thin shim over [`run_with`]; new code should go through the unified
/// engine API (`spidermine-engine`).
pub fn run(host: &LabeledGraph, config: &MossConfig) -> MossResult {
    run_with(host, config, &mut MineContext::new())
}

/// [`run`] with an execution context: every frequent pattern streams through
/// the context's sink the moment it is accepted (this miner's exploration is
/// naturally incremental), and the cancel token is polled once per queue pop
/// — a fired token marks the run incomplete and returns the patterns found so
/// far.
pub fn run_with(host: &LabeledGraph, config: &MossConfig, ctx: &mut MineContext) -> MossResult {
    let start = Instant::now();
    let mut result = MossResult {
        completed: true,
        ..MossResult::default()
    };
    let mut seen = PatternIndex::new();
    // The exploration queue holds embedding-set handles into one flat arena;
    // children come out of the incremental extension engine, so no pattern is
    // ever re-matched from scratch and no embedding list is ever cloned.
    let mut store = EmbeddingStore::new();
    let mut queue: VecDeque<StoredPattern> = VecDeque::new();
    for sp in frequent_single_edges_in(
        &mut store,
        host,
        config.support_threshold,
        config.support_measure,
        config.max_embeddings,
    ) {
        let (_, fresh) = seen.insert(sp.pattern.clone());
        if fresh {
            ctx.emit_with(|| StreamedPattern {
                pattern: sp.pattern.clone(),
                support: sp.support,
                embeddings: Vec::new(),
            });
            result.patterns.push(MossPattern {
                pattern: sp.pattern.clone(),
                support: sp.support,
            });
            queue.push_back(sp);
        }
    }
    while let Some(sp) = queue.pop_front() {
        if ctx.is_cancelled() {
            result.completed = false;
            break;
        }
        if start.elapsed() > config.time_budget {
            result.completed = false;
            break;
        }
        if sp.pattern.edge_count() >= config.max_edges {
            result.completed = false;
            continue;
        }
        for ext in one_edge_extensions_in(
            &mut store,
            host,
            &sp.pattern,
            sp.set,
            config.support_threshold,
            config.support_measure,
            config.max_embeddings,
        ) {
            result.candidates_generated += 1;
            let (_, fresh) = seen.insert(ext.child.pattern.clone());
            if !fresh {
                continue;
            }
            ctx.emit_with(|| StreamedPattern {
                pattern: ext.child.pattern.clone(),
                support: ext.child.support,
                embeddings: Vec::new(),
            });
            result.patterns.push(MossPattern {
                pattern: ext.child.pattern.clone(),
                support: ext.child.support,
            });
            queue.push_back(ext.child);
        }
        // Popped parents and duplicate children leave dead sets behind; once
        // they dominate the pool, re-intern just the queued frontier.
        let live: Vec<EmbeddingSetId> = queue.iter().map(|q| q.set).collect();
        if let Some(remap) = store.maybe_compact(&live, 1 << 18) {
            for q in &mut queue {
                q.set = remap[&q.set];
            }
        }
    }
    result.runtime = start.elapsed();
    ctx.record_stage("explore", result.runtime);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::label::Label;

    /// Two copies of the triangle with labels 0, 1, 2.
    fn two_triangles() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(2), Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
    }

    #[test]
    fn finds_the_complete_pattern_set_of_two_triangles() {
        let result = run(&two_triangles(), &MossConfig::default());
        assert!(result.completed);
        // Frequent patterns (support 2): 3 single edges, 3 two-edge paths,
        // 1 triangle = 7 patterns.
        assert_eq!(result.patterns.len(), 7);
        assert_eq!(result.largest_vertices(), 3);
        let triangle_count = result
            .patterns
            .iter()
            .filter(|p| p.pattern.edge_count() == 3)
            .count();
        assert_eq!(triangle_count, 1);
        for p in &result.patterns {
            assert!(p.support >= 2);
        }
    }

    #[test]
    fn support_threshold_prunes_everything_when_too_high() {
        let result = run(
            &two_triangles(),
            &MossConfig {
                support_threshold: 3,
                ..MossConfig::default()
            },
        );
        assert!(result.patterns.is_empty());
        assert!(result.completed);
    }

    #[test]
    fn time_budget_marks_run_incomplete() {
        // A graph with a single repeated label is a worst case for complete
        // mining; a zero budget must stop immediately and be marked incomplete.
        let mut g = LabeledGraph::new();
        let vs: Vec<_> = (0..30).map(|_| g.add_vertex(Label(0))).collect();
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                if (i + j) % 3 == 0 {
                    g.add_edge(vs[i], vs[j]);
                }
            }
        }
        let result = run(
            &g,
            &MossConfig {
                time_budget: Duration::from_millis(0),
                ..MossConfig::default()
            },
        );
        assert!(!result.completed);
    }

    #[test]
    fn max_edges_bounds_pattern_size() {
        let result = run(
            &two_triangles(),
            &MossConfig {
                max_edges: 1,
                ..MossConfig::default()
            },
        );
        assert!(result.patterns.iter().all(|p| p.pattern.edge_count() <= 2));
        assert!(!result.completed, "cut off by max_edges");
    }

    #[test]
    fn histogram_reports_sizes() {
        let result = run(&two_triangles(), &MossConfig::default());
        let hist = result.size_histogram_vertices();
        assert_eq!(hist.get(&2), Some(&3));
        assert_eq!(hist.get(&3), Some(&4));
    }
}
