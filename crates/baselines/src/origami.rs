//! ORIGAMI: α-orthogonal, β-representative maximal pattern sampling
//! (graph-transaction setting).
//!
//! ORIGAMI avoids enumerating the complete pattern set by sampling random
//! *maximal* frequent patterns (random walks in the pattern lattice that stop
//! when no extension stays frequent) and then greedily selecting a subset of
//! pairwise-dissimilar ("orthogonal") representatives. As its authors note —
//! and the SpiderMine paper stresses in Figures 14–15 — the random walks tend
//! to get absorbed by the many small maximal patterns, so the result leans
//! toward small patterns when the database contains lots of them.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;
use spidermine_graph::graph::LabeledGraph;
use spidermine_graph::label::Label;
use spidermine_graph::transaction::GraphDatabase;
use spidermine_mining::context::{MineContext, StreamedPattern};
use spidermine_mining::eval::PatternMemo;
use spidermine_mining::pattern_index::PatternIndex;
use std::time::{Duration, Instant};

/// Configuration of the ORIGAMI baseline.
#[derive(Clone, Debug)]
pub struct OrigamiConfig {
    /// Minimum number of supporting transactions.
    pub support_threshold: usize,
    /// Number of random maximal-pattern walks.
    pub samples: usize,
    /// Maximum pairwise similarity allowed in the representative set (α).
    pub alpha: f64,
    /// RNG seed.
    pub rng_seed: u64,
    /// Wall-clock budget.
    pub time_budget: Duration,
    /// Safety bound on pattern edges during a walk.
    pub max_edges: usize,
}

impl Default for OrigamiConfig {
    fn default() -> Self {
        Self {
            support_threshold: 2,
            samples: 40,
            alpha: 0.6,
            rng_seed: 0x0e1_6a41,
            time_budget: Duration::from_secs(120),
            max_edges: 64,
        }
    }
}

/// A maximal pattern sampled by ORIGAMI.
#[derive(Clone, Debug)]
pub struct OrigamiPattern {
    /// The pattern graph.
    pub pattern: LabeledGraph,
    /// Number of supporting transactions.
    pub support: usize,
}

/// Result of an ORIGAMI run.
#[derive(Clone, Debug, Default)]
pub struct OrigamiResult {
    /// The α-orthogonal representative set, sorted by decreasing size.
    pub patterns: Vec<OrigamiPattern>,
    /// All distinct maximal patterns sampled (before orthogonal selection).
    pub sampled_maximal: usize,
    /// Wall-clock runtime.
    pub runtime: Duration,
}

impl OrigamiResult {
    /// Histogram of pattern sizes in vertices (what Figures 14–15 plot).
    pub fn size_histogram_vertices(&self) -> std::collections::BTreeMap<usize, usize> {
        let mut hist = std::collections::BTreeMap::new();
        for p in &self.patterns {
            *hist.entry(p.pattern.vertex_count()).or_insert(0) += 1;
        }
        hist
    }
}

/// Similarity between two patterns: Jaccard similarity of their edge
/// label-pair multisets (a cheap stand-in for maximal-common-subgraph overlap).
fn similarity(a: &LabeledGraph, b: &LabeledGraph) -> f64 {
    let multiset = |g: &LabeledGraph| {
        let mut m: FxHashMap<(Label, Label), usize> = FxHashMap::default();
        for (u, v) in g.edges() {
            let (lu, lv) = (g.label(u), g.label(v));
            let key = if lu <= lv { (lu, lv) } else { (lv, lu) };
            *m.entry(key).or_insert(0) += 1;
        }
        m
    };
    let (ma, mb) = (multiset(a), multiset(b));
    let mut intersection = 0usize;
    let mut union = 0usize;
    let mut keys: Vec<_> = ma.keys().chain(mb.keys()).collect();
    keys.sort_unstable();
    keys.dedup();
    for k in keys {
        let x = ma.get(k).copied().unwrap_or(0);
        let y = mb.get(k).copied().unwrap_or(0);
        intersection += x.min(y);
        union += x.max(y);
    }
    if union == 0 {
        0.0
    } else {
        intersection as f64 / union as f64
    }
}

/// One random walk to a maximal frequent pattern: start from a random frequent
/// edge and keep applying random frequent one-edge extensions until none exist.
///
/// `support_memo` memoizes `db.support` per canonical pattern across *all*
/// walks of a run — transaction support is a pure function of the isomorphism
/// class, so the memo is exact, and the walks re-propose the same children
/// constantly (that absorption into common small maximal patterns is the
/// algorithm's documented weakness; no reason to pay for it twice).
fn random_maximal_walk(
    db: &GraphDatabase,
    config: &OrigamiConfig,
    rng: &mut ChaCha8Rng,
    deadline: Instant,
    support_memo: &mut PatternMemo,
) -> Option<OrigamiPattern> {
    // Frequent single edges by transaction support.
    let mut edge_kinds: FxHashMap<(Label, Label), usize> = FxHashMap::default();
    for g in db.graphs() {
        let mut local: FxHashMap<(Label, Label), ()> = FxHashMap::default();
        for (u, v) in g.edges() {
            let (lu, lv) = (g.label(u), g.label(v));
            let key = if lu <= lv { (lu, lv) } else { (lv, lu) };
            local.entry(key).or_insert(());
        }
        for key in local.keys() {
            *edge_kinds.entry(*key).or_insert(0) += 1;
        }
    }
    let mut frequent_edges: Vec<(Label, Label)> = edge_kinds
        .iter()
        .filter(|(_, &c)| c >= config.support_threshold)
        .map(|(&k, _)| k)
        .collect();
    frequent_edges.sort_unstable();
    let &(la, lb) = frequent_edges.choose(rng)?;
    let mut pattern = LabeledGraph::from_parts(&[la, lb], &[(0, 1)]);
    let mut support = support_memo.get_or_insert_with(&pattern, || db.support(&pattern));
    if support < config.support_threshold {
        return None;
    }

    // Labels present anywhere in the database, candidates for new vertices.
    let mut all_labels: Vec<Label> = db
        .graphs()
        .iter()
        .flat_map(|g| g.labels().iter().copied())
        .collect();
    all_labels.sort_unstable();
    all_labels.dedup();

    loop {
        if Instant::now() > deadline || pattern.edge_count() >= config.max_edges {
            break;
        }
        // Candidate extensions: attach a new labeled vertex to any pattern
        // vertex, or close an edge between two pattern vertices.
        let mut candidates: Vec<LabeledGraph> = Vec::new();
        for at in pattern.vertices() {
            for &label in &all_labels {
                let mut child = pattern.clone();
                let nv = child.add_vertex(label);
                child.add_edge(at, nv);
                candidates.push(child);
            }
        }
        for u in pattern.vertices() {
            for v in pattern.vertices() {
                if u < v && !pattern.has_edge(u, v) {
                    let mut child = pattern.clone();
                    child.add_edge(u, v);
                    candidates.push(child);
                }
            }
        }
        candidates.shuffle(rng);
        let mut advanced = false;
        for child in candidates {
            if Instant::now() > deadline {
                break;
            }
            let s = support_memo.get_or_insert_with(&child, || db.support(&child));
            if s >= config.support_threshold {
                pattern = child;
                support = s;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    Some(OrigamiPattern { pattern, support })
}

/// Runs ORIGAMI on a transaction database.
///
/// Thin shim over [`run_with`]; new code should go through the unified
/// engine API (`spidermine-engine`).
pub fn run(db: &GraphDatabase, config: &OrigamiConfig) -> OrigamiResult {
    run_with(db, config, &mut MineContext::new())
}

/// [`run`] with an execution context: the cancel token is polled once per
/// random maximal walk (a fired token proceeds straight to representative
/// selection over the patterns sampled so far), and the selected
/// representatives stream through the context's sink before returning.
pub fn run_with(
    db: &GraphDatabase,
    config: &OrigamiConfig,
    ctx: &mut MineContext,
) -> OrigamiResult {
    let start = Instant::now();
    let deadline = start + config.time_budget;
    let mut rng = ChaCha8Rng::seed_from_u64(config.rng_seed);
    let mut result = OrigamiResult::default();
    if db.is_empty() {
        return result;
    }
    let mut maximal: Vec<OrigamiPattern> = Vec::new();
    let mut index = PatternIndex::new();
    let mut support_memo = PatternMemo::new();
    for _ in 0..config.samples {
        if ctx.is_cancelled() || Instant::now() > deadline {
            break;
        }
        if let Some(p) = random_maximal_walk(db, config, &mut rng, deadline, &mut support_memo) {
            let (_, fresh) = index.insert(p.pattern.clone());
            if fresh {
                maximal.push(p);
            }
        }
    }
    result.sampled_maximal = maximal.len();
    // Greedy α-orthogonal selection, scanning in random order as the original
    // algorithm does (ORIGAMI favours whatever the walks found, which skews
    // small when small maximal patterns dominate).
    maximal.shuffle(&mut rng);
    let mut selected: Vec<OrigamiPattern> = Vec::new();
    for candidate in maximal {
        if selected
            .iter()
            .all(|s| similarity(&s.pattern, &candidate.pattern) <= config.alpha)
        {
            selected.push(candidate);
        }
    }
    selected.sort_by_key(|p| std::cmp::Reverse((p.pattern.edge_count(), p.support)));
    result.patterns = selected;
    for p in &result.patterns {
        ctx.emit_with(|| StreamedPattern {
            pattern: p.pattern.clone(),
            support: p.support,
            embeddings: Vec::new(),
        });
    }
    result.runtime = start.elapsed();
    ctx.record_stage("sample-select", result.runtime);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Database of 4 transactions, each containing the path 0-1-2 plus noise.
    fn db_with_shared_path() -> GraphDatabase {
        let mut db = GraphDatabase::default();
        for t in 0..4u32 {
            let mut g = LabeledGraph::new();
            let a = g.add_vertex(Label(0));
            let b = g.add_vertex(Label(1));
            let c = g.add_vertex(Label(2));
            g.add_edge(a, b);
            g.add_edge(b, c);
            // transaction-specific noise
            let x = g.add_vertex(Label(10 + t));
            g.add_edge(c, x);
            db.push(g);
        }
        db
    }

    fn config() -> OrigamiConfig {
        OrigamiConfig {
            support_threshold: 3,
            samples: 10,
            rng_seed: 5,
            ..OrigamiConfig::default()
        }
    }

    #[test]
    fn finds_the_shared_maximal_pattern() {
        let db = db_with_shared_path();
        let result = run(&db, &config());
        assert!(!result.patterns.is_empty());
        // The largest representative is the shared 0-1-2 path (3 vertices):
        // the noise vertices differ per transaction so they are not frequent.
        let top = &result.patterns[0];
        assert_eq!(top.pattern.vertex_count(), 3);
        assert!(top.support >= 3);
    }

    #[test]
    fn walks_stop_at_maximality() {
        let db = db_with_shared_path();
        let result = run(&db, &config());
        for p in &result.patterns {
            assert!(p.pattern.vertex_count() <= 3, "nothing larger is frequent");
        }
    }

    #[test]
    fn orthogonal_selection_removes_near_duplicates() {
        let db = db_with_shared_path();
        let result = run(
            &db,
            &OrigamiConfig {
                alpha: 0.0,
                ..config()
            },
        );
        // With alpha = 0 every pair of selected patterns must share no edge
        // label pair at all.
        for (i, a) in result.patterns.iter().enumerate() {
            for b in result.patterns.iter().skip(i + 1) {
                assert!(similarity(&a.pattern, &b.pattern) == 0.0);
            }
        }
    }

    #[test]
    fn similarity_is_one_for_identical_and_zero_for_disjoint() {
        let a = LabeledGraph::from_parts(&[Label(0), Label(1)], &[(0, 1)]);
        let b = LabeledGraph::from_parts(&[Label(2), Label(3)], &[(0, 1)]);
        assert!((similarity(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(similarity(&a, &b), 0.0);
    }

    #[test]
    fn empty_database_returns_empty_result() {
        let result = run(&GraphDatabase::default(), &config());
        assert!(result.patterns.is_empty());
        assert_eq!(result.sampled_maximal, 0);
    }

    #[test]
    fn support_threshold_is_respected() {
        let db = db_with_shared_path();
        let result = run(&db, &config());
        for p in &result.patterns {
            assert!(p.support >= 3);
        }
    }
}
