//! Baseline miners that the SpiderMine paper compares against.
//!
//! These are from-scratch reimplementations that follow the published
//! descriptions of each system closely enough to reproduce the *qualitative*
//! behaviour the paper reports (what sizes of patterns each method finds and
//! how its runtime scales), not line-by-line ports of the original tools:
//!
//! * [`subdue`] — SUBDUE (Holder, Cook & Djoko, KDD 1994): beam search guided
//!   by an MDL compression measure. Finds small, highly frequent patterns.
//! * [`seus`] — SEuS (Ghazizadeh & Chawathe, DS 2002): collapses same-label
//!   vertices into a summary graph to generate candidates cheaply, then
//!   verifies them against the data graph. Returns mostly tiny patterns.
//! * [`moss`] — a MoSS/gSpan-style complete miner (Fiedler & Borgelt 2007 /
//!   Yan & Han 2002): exhaustive edge-by-edge pattern growth with
//!   isomorphism-based deduplication and a wall-clock budget, since the
//!   complete pattern set is exponential ("-" entries in Figure 16).
//! * [`origami`] — ORIGAMI (Hasan et al., ICDM 2007): random maximal pattern
//!   sampling followed by α-orthogonal representative selection, for the
//!   graph-transaction comparison of Figures 14–15.

pub mod moss;
pub mod origami;
pub mod seus;
pub mod subdue;

pub use moss::{MossConfig, MossResult};
pub use origami::{OrigamiConfig, OrigamiResult};
pub use seus::{SeusConfig, SeusResult};
pub use subdue::{SubdueConfig, SubdueResult};
