//! Synthetic single-graph datasets (Tables 1–3 of the paper).
//!
//! Each dataset is an Erdős–Rényi background graph into which a number of
//! *large* patterns (the mining targets) and *small* patterns (distractors)
//! are injected with a controlled number of embeddings. GID 1–5 are the small
//! configurations used for the head-to-head comparison with SUBDUE/SEuS/MoSS
//! (Figures 4–8 and 16); GID 6–10 are the larger robustness configurations of
//! Table 3 / Figure 18.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_graph::generate;
use spidermine_graph::graph::LabeledGraph;
use spidermine_graph::traversal;

/// Parameters of one synthetic dataset, mirroring the columns of Table 1
/// (`|V|`, `f`, `d`, `m`, `|V_L|`, `Lsup`, `n`, `|V_S|`, `Ssup`).
#[derive(Clone, Debug, PartialEq)]
pub struct GidConfig {
    /// Dataset identifier (1–10, matching the paper's GID column).
    pub gid: u32,
    /// Number of background vertices.
    pub vertices: usize,
    /// Number of distinct vertex labels.
    pub labels: u32,
    /// Average degree of the background graph.
    pub average_degree: f64,
    /// Number of distinct large patterns injected (`m`).
    pub large_patterns: usize,
    /// Vertices per large pattern (`|V_L|`).
    pub large_pattern_vertices: usize,
    /// Embeddings injected per large pattern (`Lsup`).
    pub large_support: usize,
    /// Number of distinct small patterns injected (`n`).
    pub small_patterns: usize,
    /// Vertices per small pattern (`|V_S|`).
    pub small_pattern_vertices: usize,
    /// Embeddings injected per small pattern (`Ssup`).
    pub small_support: usize,
    /// Target diameter bound for the injected large patterns (they are
    /// regenerated until they fit), so the miner's `Dmax` covers them.
    pub large_pattern_diameter: u32,
}

impl GidConfig {
    /// The Table 1 configuration for `gid` ∈ 1..=5.
    pub fn table1(gid: u32) -> Self {
        let (vertices, labels, degree, small_patterns, small_support) = match gid {
            1 => (400, 70, 2.0, 5, 2),
            2 => (400, 70, 4.0, 5, 2),
            3 => (1000, 250, 2.0, 5, 20),
            4 => (1000, 250, 4.0, 5, 20),
            5 => (600, 130, 4.0, 20, 2),
            _ => panic!("Table 1 defines GID 1 through 5, got {gid}"),
        };
        Self {
            gid,
            vertices,
            labels,
            average_degree: degree,
            large_patterns: 5,
            large_pattern_vertices: 30,
            large_support: 2,
            small_patterns,
            small_pattern_vertices: 3,
            small_support,
            large_pattern_diameter: 4,
        }
    }

    /// The Table 3 configuration for `gid` ∈ 6..=10, optionally scaled down by
    /// `scale` (1.0 = the paper's sizes; the experiment harness uses smaller
    /// scales to keep laptop runtimes reasonable — see EXPERIMENTS.md).
    pub fn table3(gid: u32, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        let (vertices, labels, small_support) = match gid {
            6 => (20_490, 1064, 10),
            7 => (31_110, 1658, 15),
            8 => (37_595, 2062, 20),
            9 => (47_410, 2610, 25),
            10 => (56_740, 3138, 30),
            _ => panic!("Table 3 defines GID 6 through 10, got {gid}"),
        };
        Self {
            gid,
            vertices: ((vertices as f64 * scale) as usize).max(500),
            labels: ((labels as f64 * scale) as u32).max(50),
            // Table 3 graphs have |E| ≈ 1.5 |V|.
            average_degree: 3.0,
            large_patterns: 5,
            large_pattern_vertices: 50,
            large_support: 12,
            small_patterns: 50,
            small_pattern_vertices: 5,
            small_support,
            large_pattern_diameter: 6,
        }
    }
}

/// A generated dataset: the graph plus the injected ground-truth patterns.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The configuration that produced it.
    pub config: GidConfig,
    /// The data graph (background + injections).
    pub graph: LabeledGraph,
    /// The distinct large patterns that were injected.
    pub large_patterns: Vec<LabeledGraph>,
    /// The distinct small patterns that were injected.
    pub small_patterns: Vec<LabeledGraph>,
}

/// Generates a random connected pattern whose diameter does not exceed
/// `max_diameter`, densifying and retrying as needed.
pub fn bounded_diameter_pattern<R: Rng>(
    rng: &mut R,
    vertices: usize,
    labels: u32,
    max_diameter: u32,
) -> LabeledGraph {
    let mut extra = vertices / 3;
    for _ in 0..64 {
        let candidate = generate::random_connected_pattern(rng, vertices, labels, extra);
        if traversal::diameter(&candidate) <= max_diameter {
            return candidate;
        }
        extra += vertices / 3 + 1;
    }
    // Fall back to a star-of-paths that trivially satisfies any bound >= 2.
    let mut g = LabeledGraph::with_capacity(vertices);
    let hub = g.add_vertex(spidermine_graph::label::Label(rng.gen_range(0..labels)));
    for _ in 1..vertices {
        let v = g.add_vertex(spidermine_graph::label::Label(rng.gen_range(0..labels)));
        g.add_edge(hub, v);
    }
    g
}

impl SyntheticDataset {
    /// Builds the dataset for `config`, deterministically in `seed`.
    pub fn build(config: GidConfig, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ u64::from(config.gid) << 32);
        let mut graph = generate::erdos_renyi_average_degree(
            &mut rng,
            config.vertices,
            config.average_degree,
            config.labels,
        );
        let mut large_patterns = Vec::with_capacity(config.large_patterns);
        for _ in 0..config.large_patterns {
            let pattern = bounded_diameter_pattern(
                &mut rng,
                config.large_pattern_vertices,
                config.labels,
                config.large_pattern_diameter,
            );
            generate::inject_pattern(&mut rng, &mut graph, &pattern, config.large_support, 2);
            large_patterns.push(pattern);
        }
        let mut small_patterns = Vec::with_capacity(config.small_patterns);
        for _ in 0..config.small_patterns {
            let pattern = generate::random_connected_pattern(
                &mut rng,
                config.small_pattern_vertices,
                config.labels,
                1,
            );
            generate::inject_pattern(&mut rng, &mut graph, &pattern, config.small_support, 1);
            small_patterns.push(pattern);
        }
        Self {
            config,
            graph,
            large_patterns,
            small_patterns,
        }
    }
}

/// A random (Erdős–Rényi) graph with injected large patterns, parameterized by
/// size — the series used for the scalability experiments (Figures 10–12).
pub fn scalability_graph(vertices: usize, seed: u64) -> (LabeledGraph, LabeledGraph) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Figure 10–12 setting: average degree 3, 100 labels, sigma = 2, K = 10.
    let mut graph = generate::erdos_renyi_average_degree(&mut rng, vertices, 3.0, 100);
    // Plant one large pattern whose size grows with the graph (the paper's
    // Figure 12 reports the largest discovered pattern growing with |V|).
    let pattern_vertices = (vertices / 175).clamp(8, 240);
    let pattern = bounded_diameter_pattern(&mut rng, pattern_vertices, 100, 8);
    generate::inject_pattern(&mut rng, &mut graph, &pattern, 2, 2);
    (graph, pattern)
}

/// A Barabási–Albert scale-free graph with one injected large pattern — the
/// series used for the scale-free experiments (Figures 13 and 17).
pub fn scalefree_graph(vertices: usize, seed: u64) -> (LabeledGraph, LabeledGraph) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graph = generate::barabasi_albert(&mut rng, vertices, 2, 100);
    let pattern_vertices = (vertices / 175).clamp(8, 140);
    let pattern = bounded_diameter_pattern(&mut rng, pattern_vertices, 100, 8);
    generate::inject_pattern(&mut rng, &mut graph, &pattern, 2, 2);
    (graph, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::iso;

    #[test]
    fn table1_configs_match_the_paper() {
        let c1 = GidConfig::table1(1);
        assert_eq!(c1.vertices, 400);
        assert_eq!(c1.labels, 70);
        assert_eq!(c1.average_degree, 2.0);
        assert_eq!(c1.large_patterns, 5);
        assert_eq!(c1.large_pattern_vertices, 30);
        assert_eq!(c1.large_support, 2);
        let c3 = GidConfig::table1(3);
        assert_eq!(c3.vertices, 1000);
        assert_eq!(c3.small_support, 20);
        let c5 = GidConfig::table1(5);
        assert_eq!(c5.small_patterns, 20);
    }

    #[test]
    #[should_panic(expected = "Table 1 defines GID 1 through 5")]
    fn table1_rejects_unknown_gid() {
        GidConfig::table1(6);
    }

    #[test]
    fn table3_scaling_reduces_size() {
        let full = GidConfig::table3(7, 1.0);
        assert_eq!(full.vertices, 31_110);
        let quarter = GidConfig::table3(7, 0.25);
        assert!(quarter.vertices < full.vertices);
        assert!(quarter.labels < full.labels);
        assert_eq!(quarter.large_pattern_vertices, 50);
    }

    #[test]
    fn build_injects_the_configured_patterns() {
        let config = GidConfig::table1(1);
        let ds = SyntheticDataset::build(config.clone(), 7);
        assert_eq!(ds.large_patterns.len(), config.large_patterns);
        assert_eq!(ds.small_patterns.len(), config.small_patterns);
        // Graph contains background + injected copies.
        let expected_extra =
            config.large_patterns * config.large_support * config.large_pattern_vertices
                + config.small_patterns * config.small_support * config.small_pattern_vertices;
        assert_eq!(ds.graph.vertex_count(), config.vertices + expected_extra);
        // Each large pattern has diameter within the configured bound.
        for p in &ds.large_patterns {
            assert!(traversal::diameter(p) <= config.large_pattern_diameter);
            assert_eq!(p.vertex_count(), config.large_pattern_vertices);
        }
    }

    #[test]
    fn injected_large_pattern_is_embedded_at_least_lsup_times() {
        let ds = SyntheticDataset::build(GidConfig::table1(1), 13);
        let pattern = &ds.large_patterns[0];
        let embeddings = iso::find_embeddings(pattern, &ds.graph, 5);
        assert!(
            embeddings.len() >= ds.config.large_support,
            "found {} embeddings, expected at least {}",
            embeddings.len(),
            ds.config.large_support
        );
    }

    #[test]
    fn build_is_deterministic_in_the_seed() {
        let a = SyntheticDataset::build(GidConfig::table1(2), 3);
        let b = SyntheticDataset::build(GidConfig::table1(2), 3);
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let c = SyntheticDataset::build(GidConfig::table1(2), 4);
        assert!(
            a.graph.edge_count() != c.graph.edge_count() || a.graph.labels() != c.graph.labels(),
            "different seeds should give different graphs"
        );
    }

    #[test]
    fn bounded_diameter_pattern_respects_the_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..5 {
            let p = bounded_diameter_pattern(&mut rng, 30, 40, 4);
            assert_eq!(p.vertex_count(), 30);
            assert!(traversal::diameter(&p) <= 4);
            assert!(traversal::is_connected(&p));
        }
    }

    #[test]
    fn scalability_graph_grows_with_requested_size() {
        let (small, _) = scalability_graph(1000, 1);
        let (large, _) = scalability_graph(5000, 1);
        assert!(small.vertex_count() > 1000);
        assert!(large.vertex_count() > small.vertex_count());
    }

    #[test]
    fn scalefree_graph_has_hubs() {
        let (g, _) = scalefree_graph(3000, 9);
        assert!(g.max_degree() as f64 > 4.0 * g.average_degree());
    }
}
