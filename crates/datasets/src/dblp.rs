//! A synthetic twin of the paper's DBLP co-authorship graph (Figure 20).
//!
//! The paper's real graph has 6 508 authors, 24 402 co-authorship edges and
//! four seniority labels (Prolific / Senior / Junior / Beginner), and its
//! interesting structure is a set of recurring *collaborative patterns* shared
//! by different research groups (Figures 22–23). The real data is not shipped
//! with this repository; this generator produces a graph with the same label
//! alphabet, comparable size and density, community structure (research
//! groups), and planted collaborative patterns that recur across groups — so
//! the mining code path exercised by Figure 20 is the same. See DESIGN.md.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::label::{Label, LabelInterner};

/// Seniority labels used by the paper.
pub const SENIORITY_LABELS: [&str; 4] = ["Prolific", "Senior", "Junior", "Beginner"];

/// Parameters of the DBLP-like generator.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Number of authors (paper: 6 508). Scaled down by default so the
    /// experiment harness finishes quickly; pass 1.0 for the paper's size.
    pub authors: usize,
    /// Number of research groups (communities).
    pub groups: usize,
    /// Number of distinct collaborative patterns shared across groups.
    pub shared_patterns: usize,
    /// How many groups each shared pattern is planted into.
    pub pattern_occurrences: usize,
    /// Vertices per planted collaborative pattern.
    pub pattern_vertices: usize,
}

impl DblpConfig {
    /// Configuration scaled relative to the paper's graph size.
    pub fn scaled(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        Self {
            authors: ((6508.0 * scale) as usize).max(300),
            groups: ((160.0 * scale) as usize).max(12),
            shared_patterns: 4,
            pattern_occurrences: 6,
            pattern_vertices: 16,
        }
    }
}

/// The generated co-authorship graph plus ground truth.
#[derive(Clone, Debug)]
pub struct DblpDataset {
    /// The co-authorship graph (labels: seniority classes).
    pub graph: LabeledGraph,
    /// The label interner mapping seniority names to label ids.
    pub labels: LabelInterner,
    /// The planted collaborative patterns.
    pub planted_patterns: Vec<LabeledGraph>,
}

/// Draws a seniority label with the skew of the paper's relabeled DBLP data:
/// few Prolific authors, many Beginners.
fn seniority<R: Rng>(rng: &mut R) -> u32 {
    let x: f64 = rng.gen();
    if x < 0.05 {
        0 // Prolific
    } else if x < 0.23 {
        1 // Senior
    } else if x < 0.55 {
        2 // Junior
    } else {
        3 // Beginner
    }
}

/// Builds a collaborative pattern: a couple of Prolific/Senior hubs with
/// Junior/Beginner collaborators, the shape Figure 22 illustrates.
fn collaborative_pattern<R: Rng>(rng: &mut R, vertices: usize) -> LabeledGraph {
    let mut g = LabeledGraph::with_capacity(vertices);
    let hub_count = (vertices / 5).max(2);
    let mut hubs = Vec::new();
    for _ in 0..hub_count {
        hubs.push(g.add_vertex(Label(if rng.gen_bool(0.5) { 0 } else { 1 })));
    }
    for w in hubs.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    for _ in hub_count..vertices {
        let v = g.add_vertex(Label(if rng.gen_bool(0.4) { 2 } else { 3 }));
        // Each junior/beginner collaborates with one or two hubs.
        let h1 = hubs[rng.gen_range(0..hubs.len())];
        g.add_edge(v, h1);
        if rng.gen_bool(0.5) {
            let h2 = hubs[rng.gen_range(0..hubs.len())];
            g.add_edge(v, h2);
        }
    }
    g
}

/// Generates the DBLP-like dataset deterministically from `seed`.
pub fn generate(config: &DblpConfig, seed: u64) -> DblpDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut labels = LabelInterner::new();
    for name in SENIORITY_LABELS {
        labels.intern(name);
    }
    let mut graph = LabeledGraph::with_capacity(config.authors);
    for _ in 0..config.authors {
        graph.add_vertex(Label(seniority(&mut rng)));
    }
    // Research groups: partition authors into groups and wire co-authorships
    // inside each group (denser) plus sparse cross-group edges.
    let group_of: Vec<usize> = (0..config.authors)
        .map(|_| rng.gen_range(0..config.groups))
        .collect();
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); config.groups];
    for (i, &g) in group_of.iter().enumerate() {
        members[g].push(VertexId(i as u32));
    }
    for group in &members {
        if group.len() < 2 {
            continue;
        }
        // ~2.5 intra-group co-authorships per member.
        let edges = group.len() * 5 / 2;
        for _ in 0..edges {
            let a = group[rng.gen_range(0..group.len())];
            let b = group[rng.gen_range(0..group.len())];
            if a != b {
                graph.add_edge(a, b);
            }
        }
    }
    // Sparse cross-group collaborations (~0.5 per author).
    for _ in 0..config.authors / 2 {
        let a = VertexId(rng.gen_range(0..config.authors as u32));
        let b = VertexId(rng.gen_range(0..config.authors as u32));
        if a != b {
            graph.add_edge(a, b);
        }
    }
    // Plant the shared collaborative patterns into several groups each.
    let mut planted_patterns = Vec::new();
    for _ in 0..config.shared_patterns {
        let pattern = collaborative_pattern(&mut rng, config.pattern_vertices);
        spidermine_graph::generate::inject_pattern(
            &mut rng,
            &mut graph,
            &pattern,
            config.pattern_occurrences,
            2,
        );
        planted_patterns.push(pattern);
    }
    DblpDataset {
        graph,
        labels,
        planted_patterns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_tracks_paper_size() {
        let full = DblpConfig::scaled(1.0);
        assert_eq!(full.authors, 6508);
        let tenth = DblpConfig::scaled(0.1);
        assert!(tenth.authors < full.authors);
        assert!(tenth.authors >= 300);
    }

    #[test]
    fn generated_graph_uses_four_labels() {
        let ds = generate(&DblpConfig::scaled(0.05), 3);
        assert_eq!(ds.labels.len(), 4);
        assert!(ds.graph.distinct_label_count() <= 4);
        assert!(ds.graph.vertex_count() >= 300);
        assert!(ds.graph.edge_count() > ds.graph.vertex_count());
    }

    #[test]
    fn planted_patterns_recur_in_the_graph() {
        let config = DblpConfig::scaled(0.05);
        let ds = generate(&config, 9);
        assert_eq!(ds.planted_patterns.len(), config.shared_patterns);
        // With only 4 labels exact isomorphism checks are expensive; verify
        // instead that the injection increased the vertex count as expected.
        let planted_vertices: usize = ds
            .planted_patterns
            .iter()
            .map(|p| p.vertex_count() * config.pattern_occurrences)
            .sum();
        assert!(ds.graph.vertex_count() >= config.authors + planted_vertices);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&DblpConfig::scaled(0.05), 4);
        let b = generate(&DblpConfig::scaled(0.05), 4);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn seniority_distribution_is_skewed() {
        let ds = generate(&DblpConfig::scaled(0.1), 5);
        let mut counts = [0usize; 4];
        for &l in ds.graph.labels() {
            if (l.0 as usize) < 4 {
                counts[l.0 as usize] += 1;
            }
        }
        assert!(
            counts[3] > counts[0],
            "beginners outnumber prolific authors"
        );
    }
}
