//! Graph-transaction databases for the ORIGAMI comparison (Figures 14–15).
//!
//! The paper builds the database from 10 Erdős–Rényi graphs with 500 vertices
//! and average degree 5 over 65 labels, injects five distinctive 30-vertex
//! patterns (Figure 14), and for Figure 15 additionally injects 100 small
//! 5-vertex patterns to show ORIGAMI's drift toward small maximal patterns.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_graph::generate;
use spidermine_graph::graph::LabeledGraph;
use spidermine_graph::transaction::GraphDatabase;

use crate::synthetic::bounded_diameter_pattern;

/// Parameters of the transaction-setting benchmark.
#[derive(Clone, Debug)]
pub struct TransactionConfig {
    /// Number of transactions (paper: 10).
    pub transactions: usize,
    /// Vertices per transaction (paper: 500).
    pub vertices_per_transaction: usize,
    /// Average degree (paper: 5).
    pub average_degree: f64,
    /// Number of labels (paper: 65).
    pub labels: u32,
    /// Number of distinct large patterns injected (paper: 5).
    pub large_patterns: usize,
    /// Vertices per large pattern (paper: 30).
    pub large_pattern_vertices: usize,
    /// Transactions each large pattern is injected into.
    pub large_pattern_transactions: usize,
    /// Number of distinct small patterns injected (0 for Figure 14,
    /// 100 for Figure 15).
    pub small_patterns: usize,
    /// Vertices per small pattern (paper: 5).
    pub small_pattern_vertices: usize,
    /// Transactions each small pattern is injected into.
    pub small_pattern_transactions: usize,
}

impl TransactionConfig {
    /// The Figure 14 configuration ("fewer small patterns"), optionally scaled.
    pub fn figure14(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        Self {
            transactions: 10,
            vertices_per_transaction: ((500.0 * scale) as usize).max(60),
            average_degree: 5.0,
            labels: ((65.0 * scale) as u32).max(20),
            large_patterns: 5,
            large_pattern_vertices: 30,
            large_pattern_transactions: 6,
            small_patterns: 0,
            small_pattern_vertices: 5,
            small_pattern_transactions: 6,
        }
    }

    /// The Figure 15 configuration ("more small patterns"), optionally scaled.
    pub fn figure15(scale: f64) -> Self {
        Self {
            small_patterns: ((100.0 * scale) as usize).max(20),
            ..Self::figure14(scale)
        }
    }
}

/// A generated transaction database plus its ground truth.
#[derive(Clone, Debug)]
pub struct TransactionDataset {
    /// The configuration used.
    pub config: TransactionConfig,
    /// The database.
    pub database: GraphDatabase,
    /// The injected large patterns.
    pub large_patterns: Vec<LabeledGraph>,
    /// The injected small patterns.
    pub small_patterns: Vec<LabeledGraph>,
}

impl TransactionDataset {
    /// Builds the dataset deterministically from `seed`.
    pub fn build(config: TransactionConfig, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut graphs: Vec<LabeledGraph> = (0..config.transactions)
            .map(|_| {
                generate::erdos_renyi_average_degree(
                    &mut rng,
                    config.vertices_per_transaction,
                    config.average_degree,
                    config.labels,
                )
            })
            .collect();
        let transaction_ids: Vec<usize> = (0..config.transactions).collect();

        let mut large_patterns = Vec::new();
        for _ in 0..config.large_patterns {
            let pattern =
                bounded_diameter_pattern(&mut rng, config.large_pattern_vertices, config.labels, 6);
            let mut targets = transaction_ids.clone();
            targets.shuffle(&mut rng);
            for &t in targets.iter().take(config.large_pattern_transactions) {
                generate::inject_pattern(&mut rng, &mut graphs[t], &pattern, 1, 2);
            }
            large_patterns.push(pattern);
        }
        let mut small_patterns = Vec::new();
        for _ in 0..config.small_patterns {
            let pattern = generate::random_connected_pattern(
                &mut rng,
                config.small_pattern_vertices,
                config.labels,
                1,
            );
            let mut targets = transaction_ids.clone();
            targets.shuffle(&mut rng);
            for &t in targets.iter().take(config.small_pattern_transactions) {
                generate::inject_pattern(&mut rng, &mut graphs[t], &pattern, 1, 1);
            }
            small_patterns.push(pattern);
        }
        Self {
            config,
            database: GraphDatabase::new(graphs),
            large_patterns,
            small_patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TransactionConfig {
        TransactionConfig {
            transactions: 4,
            vertices_per_transaction: 60,
            average_degree: 3.0,
            labels: 25,
            large_patterns: 2,
            large_pattern_vertices: 10,
            large_pattern_transactions: 3,
            small_patterns: 3,
            small_pattern_vertices: 4,
            small_pattern_transactions: 3,
        }
    }

    #[test]
    fn figure_configs_match_the_paper_at_full_scale() {
        let f14 = TransactionConfig::figure14(1.0);
        assert_eq!(f14.transactions, 10);
        assert_eq!(f14.vertices_per_transaction, 500);
        assert_eq!(f14.labels, 65);
        assert_eq!(f14.large_patterns, 5);
        assert_eq!(f14.small_patterns, 0);
        let f15 = TransactionConfig::figure15(1.0);
        assert_eq!(f15.small_patterns, 100);
        assert_eq!(f15.small_pattern_vertices, 5);
    }

    #[test]
    fn build_produces_the_right_number_of_transactions() {
        let ds = TransactionDataset::build(small_config(), 5);
        assert_eq!(ds.database.len(), 4);
        assert_eq!(ds.large_patterns.len(), 2);
        assert_eq!(ds.small_patterns.len(), 3);
    }

    #[test]
    fn injected_large_patterns_reach_their_transaction_support() {
        let config = small_config();
        let ds = TransactionDataset::build(config.clone(), 11);
        for p in &ds.large_patterns {
            let support = ds.database.support(p);
            assert!(
                support >= config.large_pattern_transactions,
                "transaction support {support} below the {} injections",
                config.large_pattern_transactions
            );
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = TransactionDataset::build(small_config(), 3);
        let b = TransactionDataset::build(small_config(), 3);
        assert_eq!(a.database.total_edges(), b.database.total_edges());
    }
}
