//! Dataset builders reproducing the SpiderMine paper's evaluation inputs.
//!
//! * [`synthetic`] — the Erdős–Rényi datasets with injected large/small
//!   patterns of Table 1 (GID 1–5) and Table 3 (GID 6–10), plus the
//!   scalability series of Figures 9–13 and the scale-free series of
//!   Figures 13/17.
//! * [`transactions`] — the graph-transaction databases of Figures 14–15.
//! * [`dblp`] — a synthetic twin of the paper's DBLP co-authorship graph
//!   (Figure 20; see DESIGN.md for the substitution note).
//! * [`jeti`] — a synthetic twin of the Jeti call graph (Figure 21).
//!
//! Every builder takes an RNG seed and is fully deterministic, so experiment
//! runs are reproducible.

pub mod dblp;
pub mod jeti;
pub mod synthetic;
pub mod transactions;

pub use synthetic::{GidConfig, SyntheticDataset};
