//! A synthetic twin of the Jeti call graph (Figure 21).
//!
//! The paper extracts a method-call graph from the Jeti instant-messaging
//! application: 835 nodes (methods), 1 764 edges (call relationships),
//! 267 labels (the class each method belongs to), average degree 2.13,
//! maximum degree 69. The interesting mined structure is a recurring
//! "API-usage backbone" — tightly coupled calls among methods of a few
//! related classes (GregorianCalendar / Calendar / SimpleDateFormat in
//! Figure 24). This generator reproduces those statistics and plants such
//! backbones; see DESIGN.md for the substitution note.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spidermine_graph::graph::{LabeledGraph, VertexId};
use spidermine_graph::label::Label;

/// Parameters of the Jeti-like call-graph generator.
#[derive(Clone, Debug)]
pub struct JetiConfig {
    /// Number of methods (paper: 835).
    pub methods: usize,
    /// Number of classes, i.e. labels (paper: 267).
    pub classes: u32,
    /// Target number of call edges (paper: 1 764).
    pub calls: usize,
    /// Number of distinct API-usage backbones planted.
    pub backbones: usize,
    /// Occurrences of each backbone (paper sets minimum support 10).
    pub backbone_occurrences: usize,
    /// Methods per backbone.
    pub backbone_vertices: usize,
}

impl Default for JetiConfig {
    fn default() -> Self {
        Self {
            methods: 835,
            classes: 267,
            calls: 1764,
            backbones: 3,
            backbone_occurrences: 10,
            backbone_vertices: 9,
        }
    }
}

/// The generated call graph plus ground truth.
#[derive(Clone, Debug)]
pub struct JetiDataset {
    /// The call graph (labels: classes).
    pub graph: LabeledGraph,
    /// The planted API-usage backbones.
    pub backbones: Vec<LabeledGraph>,
}

/// A backbone pattern: methods of three related classes calling each other,
/// mirroring the Calendar/GregorianCalendar/SimpleDateFormat example.
fn backbone_pattern<R: Rng>(rng: &mut R, vertices: usize, classes: u32) -> LabeledGraph {
    let class_a = Label(rng.gen_range(0..classes));
    let class_b = Label(rng.gen_range(0..classes));
    let class_c = Label(rng.gen_range(0..classes));
    let choices = [class_a, class_b, class_c];
    let mut g = LabeledGraph::with_capacity(vertices);
    for i in 0..vertices {
        g.add_vertex(choices[i % 3]);
    }
    // Chain plus cross-calls: high cohesion among the three classes.
    for i in 1..vertices as u32 {
        g.add_edge(VertexId(i - 1), VertexId(i));
    }
    for i in 0..vertices as u32 {
        let j = (i + 3) % vertices as u32;
        if i != j {
            g.add_edge(VertexId(i), VertexId(j));
        }
    }
    g
}

/// Generates the Jeti-like dataset deterministically from `seed`.
pub fn generate(config: &JetiConfig, seed: u64) -> JetiDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graph = LabeledGraph::with_capacity(config.methods);
    // Class sizes are skewed: a few classes own many methods (utility/API
    // classes), most own a handful — drawn from a Zipf-ish distribution.
    for _ in 0..config.methods {
        let x: f64 = rng.gen();
        let class = ((x * x) * config.classes as f64) as u32;
        graph.add_vertex(Label(class.min(config.classes - 1)));
    }
    // Call edges: preferential attachment toward a small set of "API" methods
    // reproduces the max-degree-69 hub structure.
    let hubs: Vec<VertexId> = (0..(config.methods / 40).max(3))
        .map(|_| VertexId(rng.gen_range(0..config.methods as u32)))
        .collect();
    let mut added = 0;
    let mut guard = 0;
    while added < config.calls && guard < config.calls * 20 {
        guard += 1;
        let a = VertexId(rng.gen_range(0..config.methods as u32));
        let b = if rng.gen_bool(0.25) {
            hubs[rng.gen_range(0..hubs.len())]
        } else {
            VertexId(rng.gen_range(0..config.methods as u32))
        };
        if a != b && graph.add_edge(a, b) {
            added += 1;
        }
    }
    // Plant the recurring API-usage backbones.
    let mut backbones = Vec::new();
    for _ in 0..config.backbones {
        let pattern = backbone_pattern(&mut rng, config.backbone_vertices, config.classes);
        spidermine_graph::generate::inject_pattern(
            &mut rng,
            &mut graph,
            &pattern,
            config.backbone_occurrences,
            1,
        );
        backbones.push(pattern);
    }
    JetiDataset { graph, backbones }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_statistics() {
        let c = JetiConfig::default();
        assert_eq!(c.methods, 835);
        assert_eq!(c.classes, 267);
        assert_eq!(c.calls, 1764);
    }

    #[test]
    fn generated_graph_is_sparse_with_hubs() {
        let ds = generate(&JetiConfig::default(), 3);
        let g = &ds.graph;
        assert!(g.vertex_count() >= 835);
        // Average degree close to the paper's 2.13 (before backbone injection
        // it is exactly calls/methods*2; injection adds a little).
        let avg = g.average_degree();
        assert!(avg > 1.5 && avg < 4.5, "average degree {avg}");
        assert!(
            g.max_degree() >= 15,
            "expected hub methods, max {}",
            g.max_degree()
        );
        assert!(g.distinct_label_count() <= 267);
    }

    #[test]
    fn backbones_are_planted() {
        let config = JetiConfig {
            backbone_occurrences: 5,
            ..JetiConfig::default()
        };
        let ds = generate(&config, 7);
        assert_eq!(ds.backbones.len(), config.backbones);
        for b in &ds.backbones {
            assert_eq!(b.vertex_count(), config.backbone_vertices);
            assert!(b.distinct_label_count() <= 3, "backbone uses three classes");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&JetiConfig::default(), 11);
        let b = generate(&JetiConfig::default(), 11);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }
}
