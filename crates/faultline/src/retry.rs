//! The shared retry/backoff vocabulary.
//!
//! One [`RetryPolicy`] type serves every layer that retries transient
//! faults: the scheduler (snapshot-load retries at admission, panic
//! retries at execution), the transport client (connect-with-backoff),
//! and the resilient client (reconnect-and-resume). Delays grow
//! exponentially from `base_delay`, are capped at `max_delay`, and —
//! unless jitter is disabled — are scattered over `[d/2, d)` with a
//! deterministic splitmix64 hash of `(seed, attempt)`, so a fleet of
//! clients restarting against one server does not thunder in lockstep
//! while tests remain exactly reproducible from their seeds.

use std::time::Duration;

/// SplitMix64: the minimal, dependency-free mixer used everywhere this
/// crate needs deterministic pseudo-randomness (plan generation, jitter).
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How (and whether) to retry an operation that failed transiently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = never retry).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each subsequent retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Scatter each delay over `[d/2, d)` deterministically from the
    /// seed passed to [`RetryPolicy::delay_for`].
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A fast-retry profile for tests: tight delays, deterministic jitter.
    pub fn fast(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
            jitter: true,
        }
    }

    /// Whether a retry is allowed after `attempt` attempts have failed.
    pub fn should_retry(&self, attempts_made: u32) -> bool {
        attempts_made < self.max_attempts
    }

    /// Delay to sleep before retry number `retry` (1-based: the retry
    /// after the first failure is `retry == 1`). Exponential in `retry`,
    /// capped at `max_delay`, jittered deterministically from `seed`.
    pub fn delay_for(&self, retry: u32, seed: u64) -> Duration {
        let exp = retry.saturating_sub(1).min(20);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.max_delay);
        if !self.jitter || raw.is_zero() {
            return raw;
        }
        // Full-ish jitter: uniform over [raw/2, raw).
        let nanos = raw.as_nanos() as u64;
        let r = splitmix64(seed ^ ((retry as u64) << 32));
        let jittered = nanos / 2 + r % (nanos / 2).max(1);
        Duration::from_nanos(jittered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter: false,
        };
        assert_eq!(policy.delay_for(1, 0), Duration::from_millis(10));
        assert_eq!(policy.delay_for(2, 0), Duration::from_millis(20));
        assert_eq!(policy.delay_for(3, 0), Duration::from_millis(40));
        // Capped from here on, and immune to shift overflow at huge counts.
        assert_eq!(policy.delay_for(5, 0), Duration::from_millis(100));
        assert_eq!(policy.delay_for(40, 0), Duration::from_millis(100));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_scattered() {
        let policy = RetryPolicy {
            jitter: true,
            base_delay: Duration::from_millis(16),
            max_delay: Duration::from_secs(1),
            max_attempts: 5,
        };
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..32 {
            let d = policy.delay_for(1, seed);
            assert_eq!(
                d,
                policy.delay_for(1, seed),
                "jitter must be seed-deterministic"
            );
            assert!(
                d >= Duration::from_millis(8) && d < Duration::from_millis(16),
                "{d:?}"
            );
            distinct.insert(d);
        }
        assert!(distinct.len() > 16, "jitter should scatter across seeds");
    }

    #[test]
    fn should_retry_respects_max_attempts() {
        let policy = RetryPolicy::fast(3);
        assert!(policy.should_retry(1));
        assert!(policy.should_retry(2));
        assert!(!policy.should_retry(3));
        assert!(!RetryPolicy::none().should_retry(1));
    }
}
