//! The process-wide injector: arming a [`FaultPlan`] and consulting it.
//!
//! Instrumented call sites call [`check`] with their [`FaultSite`]; the
//! disarmed path is a single relaxed atomic load. When a plan is armed,
//! each call bumps the site's operation counter and fires the matching
//! rule (once) if the counter hits a rule's `nth`. Latency kinds
//! ([`FaultKind::Delay`] / [`FaultKind::Stall`]) sleep *inside* `check`
//! and return `None`, so call sites only ever interpret the disruptive
//! kinds they support.
//!
//! [`FaultInjector::install`] serializes installers on a process-global
//! lock: concurrently running `#[test]`s that each install a plan queue
//! up instead of trampling each other's schedules. Poisoned locks are
//! recovered (`into_inner`), so one failing fault test cannot wedge the
//! rest of the binary.

use crate::plan::{FaultKind, FaultPlan, FaultRule, FaultSite};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Fast-path flag: `true` iff an injector is currently installed.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The installed plan's runtime state (`None` when disarmed).
static STATE: Mutex<Option<Arc<ActiveState>>> = Mutex::new(None);

/// Serializes installers; held (inside the guard) for the injector's lifetime.
static INSTALL: Mutex<()> = Mutex::new(());

struct ActiveState {
    rules: Vec<FaultRule>,
    /// One flag per rule: each rule fires at most once.
    fired_flags: Vec<AtomicBool>,
    /// Per-site operation counters, indexed by `FaultSite as usize`.
    counters: [AtomicU64; FaultSite::ALL.len()],
    log: Mutex<Vec<FiredFault>>,
}

/// A fault that actually fired: which rule landed on which operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FiredFault {
    /// Site the fault fired at.
    pub site: FaultSite,
    /// Operation index it landed on.
    pub nth: u64,
    /// The injected kind.
    pub kind: FaultKind,
}

impl fmt::Display for FiredFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.site, self.nth, self.kind)
    }
}

fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Guard for an installed plan. Dropping it disarms the injector and
/// releases the process-global installer lock.
pub struct FaultInjector {
    state: Arc<ActiveState>,
    _exclusive: MutexGuard<'static, ()>,
}

impl FaultInjector {
    /// Install `plan` process-wide. Blocks until any previously installed
    /// injector is dropped; the returned guard keeps the plan armed.
    pub fn install(plan: &FaultPlan) -> FaultInjector {
        let exclusive = lock_recovering(&INSTALL);
        let state = Arc::new(ActiveState {
            rules: plan.rules.clone(),
            fired_flags: plan.rules.iter().map(|_| AtomicBool::new(false)).collect(),
            counters: Default::default(),
            log: Mutex::new(Vec::new()),
        });
        *lock_recovering(&STATE) = Some(state.clone());
        ARMED.store(true, Ordering::SeqCst);
        FaultInjector {
            state,
            _exclusive: exclusive,
        }
    }

    /// Faults that have fired so far under this injector, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        lock_recovering(&self.state.log).clone()
    }

    /// Number of faults that have fired so far under this injector.
    pub fn fired_count(&self) -> usize {
        lock_recovering(&self.state.log).len()
    }

    /// Operations observed so far at `site` (fired or not).
    pub fn ops_at(&self, site: FaultSite) -> u64 {
        self.state.counters[site as usize].load(Ordering::Relaxed)
    }
}

impl Drop for FaultInjector {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *lock_recovering(&STATE) = None;
    }
}

/// Whether an injector is currently installed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Consult the injector at `site`. Returns the fault the call site must
/// inject, or `None` to proceed normally. Disarmed cost: one relaxed load.
#[inline]
pub fn check(site: FaultSite) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_armed(site)
}

#[cold]
fn check_armed(site: FaultSite) -> Option<FaultKind> {
    let state = lock_recovering(&STATE).clone()?;
    let n = state.counters[site as usize].fetch_add(1, Ordering::Relaxed);
    for (i, rule) in state.rules.iter().enumerate() {
        if rule.site != site || rule.nth != n {
            continue;
        }
        if state.fired_flags[i].swap(true, Ordering::Relaxed) {
            continue; // already fired (two rules can share a (site, nth))
        }
        lock_recovering(&state.log).push(FiredFault {
            site,
            nth: n,
            kind: rule.kind,
        });
        // Tie the fault log into the telemetry timeline: with the flight
        // recorder armed, the firing shows up between the spans of whatever
        // job it hit.
        spidermine_telemetry::fault_event(site.name(), 0, n);
        return match rule.kind {
            // Latency faults resolve here: sleep, then let the operation
            // proceed. Call sites never see them.
            FaultKind::Delay { ms } | FaultKind::Stall { ms } => {
                std::thread::sleep(Duration::from_millis(ms as u64));
                None
            }
            kind => Some(kind),
        };
    }
    None
}

/// All faults fired under the currently installed injector (empty when
/// disarmed). For end-of-run reporting, e.g. `examples/mine.rs --chaos`.
pub fn fired() -> Vec<FiredFault> {
    match lock_recovering(&STATE).as_ref() {
        Some(state) => lock_recovering(&state.log).clone(),
        None => Vec::new(),
    }
}

/// Apply a buffer-corrupting fault kind to `buf`: [`FaultKind::BitFlip`]
/// flips `bit % (8 * len)`, [`FaultKind::Truncate`] keeps
/// `permille`/1000 of the bytes. Returns `true` if the buffer changed;
/// other kinds (and empty buffers) are left untouched.
pub fn corrupt_buffer(buf: &mut Vec<u8>, kind: FaultKind) -> bool {
    match kind {
        FaultKind::BitFlip { bit } => {
            if buf.is_empty() {
                return false;
            }
            let bit = bit % (buf.len() as u64 * 8);
            buf[(bit / 8) as usize] ^= 1 << (bit % 8);
            true
        }
        FaultKind::Truncate { permille } => {
            let keep = (buf.len() as u64 * permille as u64 / 1000) as usize;
            if keep >= buf.len() {
                return false;
            }
            buf.truncate(keep);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, FaultPlan, FaultRule, FaultSite};

    #[test]
    fn disarmed_check_is_none_and_cheap() {
        assert!(!armed());
        for site in FaultSite::ALL {
            assert_eq!(check(site), None);
        }
    }

    #[test]
    fn rules_fire_on_the_nth_operation_exactly_once() {
        let plan = FaultPlan {
            rules: vec![
                FaultRule {
                    site: FaultSite::DiskRead,
                    nth: 2,
                    kind: FaultKind::Error,
                },
                FaultRule {
                    site: FaultSite::WireWrite,
                    nth: 0,
                    kind: FaultKind::Disconnect,
                },
            ],
        };
        let injector = FaultInjector::install(&plan);
        assert!(armed());
        assert_eq!(check(FaultSite::WireWrite), Some(FaultKind::Disconnect));
        assert_eq!(check(FaultSite::WireWrite), None);
        assert_eq!(check(FaultSite::DiskRead), None); // op 0
        assert_eq!(check(FaultSite::DiskRead), None); // op 1
        assert_eq!(check(FaultSite::DiskRead), Some(FaultKind::Error)); // op 2
        assert_eq!(check(FaultSite::DiskRead), None); // op 3
        assert_eq!(injector.fired_count(), 2);
        assert_eq!(injector.ops_at(FaultSite::DiskRead), 4);
        drop(injector);
        assert!(!armed());
        assert_eq!(check(FaultSite::DiskRead), None);
    }

    #[test]
    fn latency_kinds_resolve_inside_check() {
        let plan = FaultPlan::parse("exec:0:stall=1, wire-read:0:delay=1").unwrap();
        let injector = FaultInjector::install(&plan);
        // Both sleep briefly and report "proceed normally".
        assert_eq!(check(FaultSite::ExecRun), None);
        assert_eq!(check(FaultSite::WireRead), None);
        assert_eq!(injector.fired_count(), 2);
    }

    #[test]
    fn corrupt_buffer_flips_and_truncates() {
        let mut buf = vec![0u8; 8];
        assert!(corrupt_buffer(&mut buf, FaultKind::BitFlip { bit: 65 }));
        assert_eq!(buf[0], 2); // bit 65 % 64 == bit 1 of byte 0
        let mut buf = vec![7u8; 10];
        assert!(corrupt_buffer(
            &mut buf,
            FaultKind::Truncate { permille: 500 }
        ));
        assert_eq!(buf.len(), 5);
        let mut buf = vec![7u8; 10];
        assert!(!corrupt_buffer(&mut buf, FaultKind::Error));
        assert_eq!(buf.len(), 10);
        let mut empty: Vec<u8> = Vec::new();
        assert!(!corrupt_buffer(&mut empty, FaultKind::BitFlip { bit: 3 }));
    }
}
