//! Fault plans: which fault fires where, and on which operation.
//!
//! A [`FaultPlan`] is a small list of [`FaultRule`]s. Each rule names an
//! instrumented [`FaultSite`], the zero-based index of the operation at
//! that site that should fail (`nth`), and the [`FaultKind`] to inject.
//! Plans are either derived deterministically from a seed
//! ([`FaultPlan::random`] / [`FaultPlan::random_for`]) or written by hand
//! in the compact spec syntax accepted by [`FaultPlan::parse`]:
//!
//! ```text
//! disk-read:0:error, wire-write:2:disconnect, exec:1:panic
//! site:nth:kind[=arg]
//! ```
//!
//! Kinds with an argument: `bitflip=BIT`, `truncate=PERMILLE`,
//! `delay=MS`, `stall=MS`. `Display` prints the same syntax back, so a
//! failing run's plan can be pasted into `--fault-plan` verbatim.

use crate::retry::splitmix64;
use std::fmt;

/// An instrumented I/O or execution boundary that faults can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Snapshot header probe (`graph::io::probe_snapshot`).
    DiskProbe,
    /// Snapshot open/read (`graph::io::open_snapshot` and the v1/v2 loaders).
    DiskRead,
    /// Snapshot persistence (`graph::io::atomic_write`).
    DiskWrite,
    /// Wire reads: socket reads feeding `transport::frame::read_frame`.
    WireRead,
    /// Wire writes: server writer loop and client `send_frame`.
    WireWrite,
    /// Job execution inside the scheduler's leader run.
    ExecRun,
}

impl FaultSite {
    /// All sites, in counter-array order. `as usize` indexes this array.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::DiskProbe,
        FaultSite::DiskRead,
        FaultSite::DiskWrite,
        FaultSite::WireRead,
        FaultSite::WireWrite,
        FaultSite::ExecRun,
    ];

    /// The spec-syntax name (`disk-read`, `wire-write`, `exec`, ...).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DiskProbe => "disk-probe",
            FaultSite::DiskRead => "disk-read",
            FaultSite::DiskWrite => "disk-write",
            FaultSite::WireRead => "wire-read",
            FaultSite::WireWrite => "wire-write",
            FaultSite::ExecRun => "exec",
        }
    }

    fn from_name(name: &str) -> Option<FaultSite> {
        Self::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// Fault kinds that make sense at this site. Random plan generation
    /// draws from this set; `parse` rejects incompatible pairs.
    pub fn supported_kinds(self) -> &'static [&'static str] {
        match self {
            FaultSite::DiskProbe => &["error", "delay"],
            FaultSite::DiskRead => &["error", "bitflip", "truncate", "delay"],
            FaultSite::DiskWrite => &["error", "delay"],
            FaultSite::WireRead => &["error", "bitflip", "truncate", "disconnect", "delay"],
            FaultSite::WireWrite => &["error", "disconnect", "delay"],
            FaultSite::ExecRun => &["panic", "stall"],
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happens when a rule fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with a *transient*-class error (an I/O error on
    /// disk, a connection error on the wire). Retry policies may retry it.
    Error,
    /// One bit of the operation's buffer is flipped before validation.
    /// Downstream checksums classify the result as *permanent* corruption.
    BitFlip {
        /// Bit index; reduced modulo the buffer's bit length when applied.
        bit: u64,
    },
    /// The operation's buffer is cut short: only `permille`/1000 of the
    /// bytes survive. Exercises short-read / short-frame handling.
    Truncate {
        /// Surviving fraction of the buffer, in thousandths (0..=999).
        permille: u16,
    },
    /// The operation is delayed by `ms` milliseconds, then proceeds
    /// normally. Exercises timeout and liveness paths.
    Delay {
        /// Injected latency in milliseconds.
        ms: u16,
    },
    /// The connection is severed mid-stream (wire sites only).
    Disconnect,
    /// The job panics mid-run (execution site only); the scheduler's
    /// panic isolation and retry policy take over.
    Panic,
    /// The job stalls for `ms` milliseconds mid-run, then continues.
    /// Exercises deadline/cancellation behaviour without failing.
    Stall {
        /// Injected stall in milliseconds.
        ms: u16,
    },
}

impl FaultKind {
    fn spec_name(self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::BitFlip { .. } => "bitflip",
            FaultKind::Truncate { .. } => "truncate",
            FaultKind::Delay { .. } => "delay",
            FaultKind::Disconnect => "disconnect",
            FaultKind::Panic => "panic",
            FaultKind::Stall { .. } => "stall",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::BitFlip { bit } => write!(f, "bitflip={bit}"),
            FaultKind::Truncate { permille } => write!(f, "truncate={permille}"),
            FaultKind::Delay { ms } => write!(f, "delay={ms}"),
            FaultKind::Stall { ms } => write!(f, "stall={ms}"),
            other => f.write_str(other.spec_name()),
        }
    }
}

/// One scheduled fault: the `nth` operation at `site` suffers `kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// Boundary the fault targets.
    pub site: FaultSite,
    /// Zero-based index of the operation at `site` that fires the rule.
    pub nth: u64,
    /// The fault to inject.
    pub kind: FaultKind,
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.site, self.nth, self.kind)
    }
}

/// A seeded schedule of faults, installable via
/// [`FaultInjector::install`](crate::FaultInjector::install).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The rules, in no particular order; each fires at most once.
    pub rules: Vec<FaultRule>,
}

/// Maximum injected latency/stall in randomly generated plans, so fault
/// sweeps stay fast even at hundreds of plans.
const MAX_RANDOM_MS: u16 = 30;

impl FaultPlan {
    /// An empty plan (installing it arms the injector but fires nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derive a plan deterministically from `seed`, drawing sites from
    /// the full set.
    pub fn random(seed: u64) -> FaultPlan {
        FaultPlan::random_for(seed, &FaultSite::ALL)
    }

    /// Derive a plan deterministically from `seed`, restricted to
    /// `sites`. Produces 1–3 rules with small `nth` (0..6) and bounded
    /// delays, which is the profile the fault-sweep suite wants: faults
    /// that actually land on the handful of operations a small run does.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn random_for(seed: u64, sites: &[FaultSite]) -> FaultPlan {
        assert!(!sites.is_empty(), "random_for needs at least one site");
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(state)
        };
        let n_rules = 1 + (next() % 3) as usize;
        let mut rules = Vec::with_capacity(n_rules);
        for _ in 0..n_rules {
            let site = sites[(next() % sites.len() as u64) as usize];
            let kinds = site.supported_kinds();
            let kind_name = kinds[(next() % kinds.len() as u64) as usize];
            let arg = next();
            let kind = match kind_name {
                "error" => FaultKind::Error,
                "bitflip" => FaultKind::BitFlip { bit: arg },
                "truncate" => FaultKind::Truncate {
                    permille: (arg % 1000) as u16,
                },
                "delay" => FaultKind::Delay {
                    ms: (arg % MAX_RANDOM_MS as u64) as u16,
                },
                "disconnect" => FaultKind::Disconnect,
                "panic" => FaultKind::Panic,
                "stall" => FaultKind::Stall {
                    ms: (arg % MAX_RANDOM_MS as u64) as u16,
                },
                _ => unreachable!("supported_kinds names are exhaustive"),
            };
            rules.push(FaultRule {
                site,
                nth: next() % 6,
                kind,
            });
        }
        FaultPlan { rules }
    }

    /// Parse the compact spec syntax: comma- or whitespace-separated
    /// `site:nth:kind[=arg]` rules. Returns a human-readable error for
    /// unknown sites/kinds, malformed numbers, or site-incompatible
    /// kinds.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for raw in spec.split([',', ' ', '\t']).filter(|s| !s.is_empty()) {
            let mut parts = raw.splitn(3, ':');
            let (site, nth, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(s), Some(n), Some(k)) => (s, n, k),
                _ => return Err(format!("rule `{raw}`: expected site:nth:kind[=arg]")),
            };
            let site = FaultSite::from_name(site).ok_or_else(|| {
                let names: Vec<_> = FaultSite::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "rule `{raw}`: unknown site `{site}` (one of {})",
                    names.join(", ")
                )
            })?;
            let nth: u64 = nth
                .parse()
                .map_err(|_| format!("rule `{raw}`: bad operation index `{nth}`"))?;
            let (kind_name, arg) = match kind.split_once('=') {
                Some((k, a)) => (k, Some(a)),
                None => (kind, None),
            };
            let parse_arg = |what: &str| -> Result<u64, String> {
                arg.ok_or_else(|| format!("rule `{raw}`: `{kind_name}` needs =<{what}>"))?
                    .parse()
                    .map_err(|_| format!("rule `{raw}`: bad {what} argument"))
            };
            let kind = match kind_name {
                "error" => FaultKind::Error,
                "bitflip" => FaultKind::BitFlip {
                    bit: parse_arg("bit")?,
                },
                "truncate" => {
                    let p = parse_arg("permille")?;
                    if p > 999 {
                        return Err(format!("rule `{raw}`: truncate permille must be 0..=999"));
                    }
                    FaultKind::Truncate { permille: p as u16 }
                }
                "delay" => FaultKind::Delay {
                    ms: parse_arg("ms")?.min(u16::MAX as u64) as u16,
                },
                "disconnect" => FaultKind::Disconnect,
                "panic" => FaultKind::Panic,
                "stall" => FaultKind::Stall {
                    ms: parse_arg("ms")?.min(u16::MAX as u64) as u16,
                },
                other => return Err(format!("rule `{raw}`: unknown fault kind `{other}`")),
            };
            if !site.supported_kinds().contains(&kind_name) {
                return Err(format!(
                    "rule `{raw}`: `{kind_name}` is not supported at site `{site}` (supported: {})",
                    site.supported_kinds().join(", ")
                ));
            }
            rules.push(FaultRule { site, nth, kind });
        }
        if rules.is_empty() {
            return Err("empty fault plan spec".to_string());
        }
        Ok(FaultPlan { rules })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_and_site_compatible() {
        for seed in 0..500 {
            let a = FaultPlan::random(seed);
            let b = FaultPlan::random(seed);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(!a.rules.is_empty());
            for rule in &a.rules {
                assert!(
                    rule.site.supported_kinds().contains(&rule.kind.spec_name()),
                    "seed {seed}: {rule} pairs an unsupported kind with its site"
                );
            }
        }
        assert_ne!(FaultPlan::random(1), FaultPlan::random(2));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for seed in 0..200 {
            let plan = FaultPlan::random(seed);
            let spec = plan.to_string();
            let reparsed = FaultPlan::parse(&spec)
                .unwrap_or_else(|e| panic!("seed {seed}: spec `{spec}` failed to re-parse: {e}"));
            assert_eq!(plan, reparsed, "seed {seed}: `{spec}`");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "disk-read",
            "disk-read:0",
            "nowhere:0:error",
            "disk-read:x:error",
            "disk-read:0:frobnicate",
            "disk-read:0:bitflip",       // missing =bit
            "disk-read:0:truncate=1000", // permille out of range
            "exec:0:error",              // kind not supported at site
            "disk-probe:0:panic",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn parse_accepts_mixed_separators() {
        let plan = FaultPlan::parse("disk-read:0:error, wire-write:2:disconnect exec:1:stall=5")
            .expect("valid spec");
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[2].kind, FaultKind::Stall { ms: 5 });
    }
}
