//! Deterministic, seed-driven fault injection for the mining service.
//!
//! Every robustness claim in this workspace — typed errors instead of
//! panics, transient failures retried, permanent corruption surfaced —
//! is only as good as the faults that have actually been thrown at it.
//! This crate provides the harness: a [`FaultPlan`] is a seeded schedule
//! of `{site, nth-operation, kind}` rules, installed process-wide with
//! [`FaultInjector::install`], and consulted by instrumented call sites
//! in `graph::io` (disk), `transport` (wire) and the service scheduler
//! (execution) via [`check`].
//!
//! Design constraints:
//!
//! - **Zero-cost when disarmed.** [`check`] is a single relaxed atomic
//!   load on the hot path; no plan is consulted, no counter bumped, no
//!   lock touched unless an injector is installed. Production binaries
//!   never arm it.
//! - **Deterministic from `(seed, plan)`.** [`FaultPlan::random`]
//!   derives the whole schedule from a seed via splitmix64;
//!   [`FaultPlan::parse`] round-trips the human-readable spec printed by
//!   `Display`. Which *logical* operation is "nth" at a site is exact
//!   under single-threaded execution and stable-enough under the small
//!   thread counts the fault suite runs at; tests therefore assert
//!   outcome invariants (typed error, successful retry, byte-identical
//!   recovery), not exact firing interleavings.
//! - **Dependency-free.** `graph`, `transport` and `service` all sit on
//!   top of this crate, so it can use nothing but `std`.
//!
//! The crate also hosts [`RetryPolicy`] — the one retry/backoff
//! vocabulary shared by the scheduler (admission + execution retries)
//! and the transport client (reconnect-with-backoff) — so every layer
//! jitters and caps delays the same way.

pub mod inject;
pub mod plan;
pub mod retry;

pub use inject::{armed, check, corrupt_buffer, fired, FaultInjector, FiredFault};
pub use plan::{FaultKind, FaultPlan, FaultRule, FaultSite};
pub use retry::{splitmix64, RetryPolicy};
