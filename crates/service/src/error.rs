//! Errors of the service layer.

use spidermine_engine::MineError;
use spidermine_graph::io::SnapshotError;
use std::fmt;

/// Everything that can go wrong submitting to or operating the service.
///
/// The scheduler's cancellation contract mirrors the engine's: a cancelled or
/// timed-out *run* is not an error — it finishes with a partial
/// [`MineOutcome`](spidermine_engine::MineOutcome). Errors are reserved for
/// admission failures (unknown graph, full queue, invalid request), job
/// execution failures, and snapshot persistence problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The named graph is not registered in the catalog.
    UnknownGraph(String),
    /// Admission control rejected the job: the queue is at its depth limit.
    QueueFull {
        /// Jobs currently queued.
        depth: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The request failed validation (or asked for something the service
    /// cannot serve, e.g. a transaction-database algorithm against the
    /// single-graph catalog, or a thread width above the service cap).
    InvalidRequest(MineError),
    /// The job ran and the engine returned an error.
    JobFailed(MineError),
    /// The job's engine run panicked. The dispatcher catches the unwind, so
    /// one poisoned run never kills the pool or strands waiters; the payload
    /// message is preserved here.
    JobPanicked(String),
    /// The scheduler is shutting down and accepts no new jobs.
    ShuttingDown,
    /// Persisting or loading a catalog snapshot failed.
    Snapshot(SnapshotError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownGraph(name) => {
                write!(f, "no graph named `{name}` in the catalog")
            }
            ServiceError::QueueFull { depth, limit } => {
                write!(f, "job queue full ({depth} of {limit} slots used)")
            }
            ServiceError::InvalidRequest(e) => write!(f, "request rejected: {e}"),
            ServiceError::JobFailed(e) => write!(f, "job failed: {e}"),
            ServiceError::JobPanicked(message) => {
                write!(f, "job panicked while mining: {message}")
            }
            ServiceError::ShuttingDown => write!(f, "scheduler is shutting down"),
            ServiceError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl ServiceError {
    /// Whether retrying the same submission can plausibly succeed.
    ///
    /// This is the classification the scheduler's
    /// [`RetryPolicy`](spidermine_faultline::RetryPolicy) consults: transient
    /// snapshot I/O (see [`SnapshotError::is_transient`]), a momentarily full
    /// queue, and panicked runs (tail tolerance for one poisoned execution)
    /// are retryable; validation failures, unknown graphs, engine errors and
    /// permanent snapshot corruption never are — retrying a request that is
    /// *wrong* only repeats the rejection.
    pub fn is_transient(&self) -> bool {
        match self {
            ServiceError::Snapshot(e) => e.is_transient(),
            ServiceError::QueueFull { .. } | ServiceError::JobPanicked(_) => true,
            ServiceError::UnknownGraph(_)
            | ServiceError::InvalidRequest(_)
            | ServiceError::JobFailed(_)
            | ServiceError::ShuttingDown => false,
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SnapshotError> for ServiceError {
    fn from(e: SnapshotError) -> Self {
        ServiceError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServiceError::UnknownGraph("web".into())
            .to_string()
            .contains("web"));
        let full = ServiceError::QueueFull {
            depth: 16,
            limit: 16,
        };
        assert!(full.to_string().contains("16"));
        let invalid = ServiceError::InvalidRequest(MineError::invalid("k", "must be at least 1"));
        assert!(invalid.to_string().contains('k'));
        let snap: ServiceError = SnapshotError::BadMagic.into();
        assert!(snap.to_string().contains("magic"));
    }
}
