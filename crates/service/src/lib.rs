//! The mining service layer: one process serving many mining requests over
//! shared massive networks.
//!
//! PRs 1–4 built a fast single-run engine
//! ([`spidermine_engine`]); this crate is the subsystem that
//! multiplexes it. Three components:
//!
//! * [`GraphCatalog`] — named, immutable graph snapshots. The expensive
//!   inputs (graph + frozen CSR index) are loaded once and shared by every
//!   concurrent job as a cheap [`Arc<GraphSnapshot>`] handle; snapshots
//!   persist to the versioned binary CSR format of
//!   [`spidermine_graph::io`] (magic + version + checksum), so a service
//!   restart reloads flat arrays instead of rebuilding datasets. Each
//!   snapshot carries a stable content **fingerprint**.
//! * [`JobScheduler`] — a bounded FIFO/priority queue with typed admission
//!   control ([`ServiceError::QueueFull`]), a small dispatcher pool executing
//!   jobs on the work-stealing runtime at each job's own `threads` width,
//!   cooperative cancellation and `deadline_ms` timeouts (partial results,
//!   never errors), status-pollable [`JobHandle`]s, and per-job plus
//!   service-wide metrics.
//! * [`ResultCache`] — an LRU keyed by `(graph name, snapshot fingerprint,
//!   canonical request key)` with single-flight deduplication: identical concurrent
//!   jobs mine once and share the outcome. Serving cached outcomes is
//!   legitimate because engine results are byte-identical at every thread
//!   width — a cached outcome is exactly what a fresh run would produce.
//!
//! [`MiningService`] bundles the three behind one facade:
//!
//! ```
//! use spidermine_engine::{Algorithm, MineRequest};
//! use spidermine_graph::{Label, LabeledGraph};
//! use spidermine_service::{MiningService, ServiceConfig};
//!
//! // A toy network: two labeled paths.
//! let graph = LabeledGraph::from_parts(
//!     &[Label(0), Label(1), Label(2), Label(0), Label(1), Label(2)],
//!     &[(0, 1), (1, 2), (3, 4), (4, 5)],
//! );
//!
//! let service = MiningService::new(ServiceConfig::default());
//! service.catalog().register("toy", graph);
//!
//! // Submit the same request twice: the second is served from the cache.
//! let request = MineRequest::new(Algorithm::Moss).support_threshold(2);
//! let first = service.submit("toy", request.clone())?.wait()?;
//! let second = service.submit("toy", request)?.wait()?;
//! assert!(!first.patterns.is_empty());
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! assert_eq!(service.metrics().cache.hits, 1);
//! # Ok::<(), spidermine_service::ServiceError>(())
//! ```

pub mod cache;
pub mod catalog;
pub mod clients;
pub mod error;
pub mod scheduler;

pub use cache::{CacheKey, CacheLookup, CacheStats, ResultCache};
pub use catalog::{GraphCatalog, GraphSnapshot, MANIFEST_FILE};
pub use clients::{ClientRegistry, ClientStats};
pub use error::ServiceError;
pub use scheduler::{
    JobHandle, JobMetrics, JobScheduler, JobStatus, PatternObserver, Priority, ServiceConfig,
    ServiceMetrics, SubmitOptions,
};
pub use spidermine_faultline::RetryPolicy;

use spidermine_engine::MineRequest;
use std::sync::Arc;

/// The one-stop facade: a [`GraphCatalog`] plus a [`JobScheduler`] (which
/// owns the [`ResultCache`]) wired together.
#[derive(Debug)]
pub struct MiningService {
    scheduler: JobScheduler,
}

impl MiningService {
    /// A service with an empty catalog and running dispatchers.
    pub fn new(config: ServiceConfig) -> Self {
        let catalog = Arc::new(GraphCatalog::new());
        Self {
            scheduler: JobScheduler::new(catalog, config),
        }
    }

    /// The graph catalog: register, load or persist snapshots here.
    pub fn catalog(&self) -> &GraphCatalog {
        self.scheduler.catalog()
    }

    /// Submits `(graph name, request)` at normal priority. See
    /// [`JobScheduler::submit`].
    pub fn submit(&self, graph: &str, request: MineRequest) -> Result<JobHandle, ServiceError> {
        self.scheduler.submit(graph, request)
    }

    /// Submits with an explicit [`Priority`].
    pub fn submit_with_priority(
        &self,
        graph: &str,
        request: MineRequest,
        priority: Priority,
    ) -> Result<JobHandle, ServiceError> {
        self.scheduler
            .submit_with_priority(graph, request, priority)
    }

    /// Submits with full [`SubmitOptions`] (priority, streaming observer,
    /// per-client attribution). See [`JobScheduler::submit_with_options`].
    pub fn submit_with_options(
        &self,
        graph: &str,
        request: MineRequest,
        options: SubmitOptions,
    ) -> Result<JobHandle, ServiceError> {
        self.scheduler.submit_with_options(graph, request, options)
    }

    /// Per-client counters; see [`JobScheduler::clients`].
    pub fn clients(&self) -> &ClientRegistry {
        self.scheduler.clients()
    }

    /// Service-wide counters (jobs, queue wait, run time, cache hit/miss).
    pub fn metrics(&self) -> ServiceMetrics {
        self.scheduler.metrics()
    }

    /// The per-service telemetry registry behind [`MiningService::metrics`]:
    /// the same counter cells plus latency histograms, snapshotable for
    /// Prometheus-style exposition. See [`JobScheduler::registry`].
    pub fn registry(&self) -> &Arc<spidermine_telemetry::Registry> {
        self.scheduler.registry()
    }

    /// The underlying scheduler, for queue inspection or cache clearing.
    pub fn scheduler(&self) -> &JobScheduler {
        &self.scheduler
    }

    /// Graceful drain: stops accepting jobs, gives in-flight work until
    /// `deadline` to finish, then cancels the stragglers and waits for them
    /// to settle. Returns `true` if nothing had to be cancelled. Takes
    /// `&self`, so a shared service (e.g. behind the transport server) can
    /// be drained; see [`JobScheduler::drain`].
    pub fn drain(&self, deadline: std::time::Duration) -> bool {
        self.scheduler.drain(deadline)
    }

    /// Stops accepting jobs, drains the queue, joins the dispatchers.
    pub fn shutdown(mut self) {
        self.scheduler.shutdown();
    }
}
