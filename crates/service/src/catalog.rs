//! The graph catalog: named, immutable, shareable graph snapshots.
//!
//! The expensive inputs of a mining request — the graph and its frozen CSR
//! index — are loaded **once** per graph and handed to every job as a cheap
//! [`Arc<GraphSnapshot>`] handle. A snapshot is immutable by construction
//! (the catalog takes ownership and nothing mutates the graph afterwards),
//! so its lazily built CSR index is shared safely across concurrent jobs.
//!
//! # Snapshot sources and laziness
//!
//! A snapshot is backed either by an in-memory graph
//! ([`GraphCatalog::register`], always loaded) or by a snapshot file
//! ([`GraphCatalog::register_snapshot_file`]). File-backed registration is
//! O(header): only [`io::probe_snapshot`] runs — magic, version, fingerprint,
//! section table — and the data pages stay untouched until the first job
//! against the graph calls [`GraphSnapshot::ensure_loaded`] (the scheduler
//! does this at admission, surfacing corruption as typed errors at submit
//! time). With [`LoadMode::Mapped`] the materialized graph stays zero-copy:
//! its CSR arrays point into the mapped file, and registration never
//! re-freezes what the snapshot already froze.
//!
//! # Persistence
//!
//! [`GraphCatalog::persist`] writes every registered graph as a v2 snapshot
//! (content-addressed by fingerprint, so re-persisting an unchanged graph
//! rewrites nothing) plus a `catalog.manifest` naming them, atomically
//! rewritten via temp-file + rename. [`GraphCatalog::restore`] reads the
//! manifest back and registers every graph header-only — a warm service
//! restart costs a handful of page reads regardless of catalog size. Each
//! snapshot carries the content fingerprint of its graph
//! ([`graph_fingerprint`]): the stable identity the result cache keys on,
//! valid across processes and restarts.

use crate::error::ServiceError;
use spidermine_graph::io::{self, LoadMode, SnapshotError};
use spidermine_graph::signature::graph_fingerprint;
use spidermine_graph::LabeledGraph;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// File name of the catalog manifest inside a persistence directory.
pub const MANIFEST_FILE: &str = "catalog.manifest";

/// An immutable, named graph with its frozen CSR index and content
/// fingerprint. Handed out as `Arc<GraphSnapshot>`; cloning the handle is
/// O(1) and every concurrent job reads the same index.
#[derive(Debug)]
pub struct GraphSnapshot {
    name: String,
    fingerprint: u64,
    /// File backing for lazily registered snapshots; `None` for in-memory
    /// registrations (which are seeded at construction).
    source: Option<(PathBuf, LoadMode)>,
    /// The materialized graph, set exactly once on a successful load.
    graph: OnceLock<LabeledGraph>,
    /// A *permanent* load failure (corruption, bad fingerprint), which is
    /// sticky: the bytes themselves are wrong, so every future attempt would
    /// fail identically. Transient I/O failures are deliberately **not**
    /// recorded here — the next [`GraphSnapshot::ensure_loaded`] retries the
    /// file. Doubles as the lock that serializes concurrent first loads.
    load_failure: Mutex<Option<SnapshotError>>,
}

impl GraphSnapshot {
    /// Wraps an in-memory graph: fingerprinted (which freezes the CSR index —
    /// a no-op for graphs loaded from snapshots, whose index ships
    /// pre-seeded) and immediately loaded.
    fn new_loaded(name: String, graph: LabeledGraph) -> Self {
        let fingerprint = graph_fingerprint(&graph);
        let cell = OnceLock::new();
        cell.set(graph)
            .unwrap_or_else(|_| unreachable!("freshly created OnceLock"));
        Self {
            name,
            fingerprint,
            source: None,
            graph: cell,
            load_failure: Mutex::new(None),
        }
    }

    /// Wraps a probed-but-unloaded snapshot file.
    fn new_pending(name: String, fingerprint: u64, path: PathBuf, mode: LoadMode) -> Self {
        Self {
            name,
            fingerprint,
            source: Some((path, mode)),
            graph: OnceLock::new(),
            load_failure: Mutex::new(None),
        }
    }

    /// The catalog name this snapshot was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stable content fingerprint of the graph
    /// ([`graph_fingerprint`]): equal across processes and across
    /// save/load round-trips, which is what makes it a valid persistent
    /// cache-key component. For file-backed snapshots this comes from the
    /// header probe — available without loading the graph.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// True once the graph is materialized in memory (always true for
    /// in-memory registrations).
    pub fn is_loaded(&self) -> bool {
        self.graph.get().is_some()
    }

    /// Materializes the graph if this snapshot is file-backed and not yet
    /// loaded, validating the file (section checksums, structure,
    /// fingerprint) on the way in.
    ///
    /// Failures are typed, and their retry semantics follow
    /// [`SnapshotError::is_transient`]: a *transient* I/O failure (the file
    /// briefly unreadable) leaves the snapshot pending, so the next call —
    /// e.g. the scheduler's admission retry — attempts the load again; a
    /// *permanent* failure (corruption, fingerprint mismatch) is sticky and
    /// every future call reports the recorded error without touching the
    /// file.
    ///
    /// The scheduler calls this at admission, so a job against a corrupt
    /// snapshot is rejected synchronously at submit time rather than failing
    /// in a dispatcher.
    pub fn ensure_loaded(&self) -> Result<&LabeledGraph, ServiceError> {
        if let Some(graph) = self.graph.get() {
            return Ok(graph);
        }
        // The failure slot doubles as the load lock: concurrent first uses
        // serialize here instead of loading the file N times.
        let mut failure = self.load_failure.lock().expect("snapshot load lock");
        if let Some(graph) = self.graph.get() {
            return Ok(graph); // a concurrent loader won while we waited
        }
        if let Some(error) = failure.as_ref() {
            return Err(ServiceError::Snapshot(error.clone()));
        }
        let (path, mode) = self
            .source
            .as_ref()
            .expect("unloaded snapshot always has a file source");
        // The file may have been swapped since registration (atomic
        // re-persist): re-probe the header so the graph served under
        // this handle is always the one that was registered.
        let result = io::probe_snapshot(path).and_then(|info| {
            if info.fingerprint != self.fingerprint {
                return Err(SnapshotError::Corrupt(format!(
                    "snapshot {} now has fingerprint {:#018x}, registered as {:#018x}",
                    path.display(),
                    info.fingerprint,
                    self.fingerprint
                )));
            }
            io::open_snapshot(path, *mode)
        });
        match result {
            Ok(graph) => {
                self.graph
                    .set(graph)
                    .unwrap_or_else(|_| unreachable!("loads are serialized by the failure lock"));
                Ok(self.graph.get().expect("just set"))
            }
            Err(error) => {
                if !error.is_transient() {
                    *failure = Some(error.clone());
                }
                Err(ServiceError::Snapshot(error))
            }
        }
    }

    /// The graph itself.
    ///
    /// # Panics
    /// Panics if the snapshot is file-backed and its file fails to load.
    /// Jobs never hit this: admission calls [`GraphSnapshot::ensure_loaded`]
    /// first and rejects on error.
    pub fn graph(&self) -> &LabeledGraph {
        self.ensure_loaded()
            .expect("snapshot failed to materialize")
    }
}

/// A registry of named [`GraphSnapshot`]s.
///
/// Thread-safe: `register`/`get` take an internal lock only for the map
/// operation; the snapshots themselves are lock-free to read.
#[derive(Debug, Default)]
pub struct GraphCatalog {
    graphs: Mutex<HashMap<String, Arc<GraphSnapshot>>>,
}

impl GraphCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `graph` under `name`, freezing its CSR index and computing
    /// its fingerprint. Replaces (and returns the handle of) any snapshot
    /// previously registered under the same name — existing jobs holding the
    /// old handle keep mining the old snapshot; new submissions see the new
    /// one.
    pub fn register(&self, name: impl Into<String>, graph: LabeledGraph) -> Arc<GraphSnapshot> {
        let name = name.into();
        let snapshot = Arc::new(GraphSnapshot::new_loaded(name.clone(), graph));
        self.insert(name, snapshot.clone());
        snapshot
    }

    /// Registers the snapshot file at `path` under `name` **without loading
    /// it**: only the header is probed (O(header) — magic, version,
    /// fingerprint, section table), so registering a multi-gigabyte graph
    /// costs the same as a tiny one. The graph materializes on first use,
    /// backed according to `mode`.
    pub fn register_snapshot_file(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        mode: LoadMode,
    ) -> Result<Arc<GraphSnapshot>, ServiceError> {
        let name = name.into();
        let path = path.as_ref().to_path_buf();
        let info = io::probe_snapshot(&path)?;
        let snapshot = Arc::new(GraphSnapshot::new_pending(
            name.clone(),
            info.fingerprint,
            path,
            mode,
        ));
        self.insert(name, snapshot.clone());
        Ok(snapshot)
    }

    fn insert(&self, name: String, snapshot: Arc<GraphSnapshot>) {
        self.graphs
            .lock()
            .expect("catalog lock")
            .insert(name, snapshot);
    }

    /// The snapshot registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<GraphSnapshot>> {
        self.graphs.lock().expect("catalog lock").get(name).cloned()
    }

    /// Removes the snapshot registered under `name`, returning its handle.
    pub fn remove(&self, name: &str) -> Option<Arc<GraphSnapshot>> {
        self.graphs.lock().expect("catalog lock").remove(name)
    }

    /// All registered names, ascending.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .graphs
            .lock()
            .expect("catalog lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.lock().expect("catalog lock").len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persists the named snapshot to `path` in the v1 binary snapshot
    /// format (single eager payload). Prefer [`GraphCatalog::persist`] for
    /// whole-catalog persistence in the lazy v2 format.
    pub fn save(&self, name: &str, path: impl AsRef<Path>) -> Result<(), ServiceError> {
        let snapshot = self
            .get(name)
            .ok_or_else(|| ServiceError::UnknownGraph(name.to_owned()))?;
        io::save_snapshot(path, snapshot.ensure_loaded()?)?;
        Ok(())
    }

    /// Loads a snapshot file (either format) eagerly and registers it under
    /// `name`. The decoded graph's fingerprint necessarily equals the one
    /// stored in the file (the loader verifies it), so a reloaded graph hits
    /// the same cache entries as the original. For header-only registration
    /// use [`GraphCatalog::register_snapshot_file`].
    pub fn load(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<Arc<GraphSnapshot>, ServiceError> {
        let graph = io::open_snapshot(path, LoadMode::Eager)?;
        Ok(self.register(name, graph))
    }

    /// Persists the whole catalog into `dir`: one v2 snapshot file per graph,
    /// named by content fingerprint (`<fingerprint>.snap`, so identical
    /// graphs dedupe and unchanged graphs are not rewritten), plus a
    /// [`MANIFEST_FILE`] listing `name → file + fingerprint`. The manifest is
    /// rewritten atomically (temp file + fsync + rename), so a crash
    /// mid-persist leaves the previous manifest intact and a partially
    /// written snapshot file is never referenced.
    pub fn persist(&self, dir: impl AsRef<Path>) -> Result<(), ServiceError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", dir.display())))?;
        let mut lines = String::from("# spidermine catalog manifest v1\n");
        for name in self.names() {
            if name.chars().any(|c| c.is_control()) {
                return Err(ServiceError::Snapshot(SnapshotError::Corrupt(format!(
                    "graph name {name:?} contains control characters and cannot be persisted"
                ))));
            }
            let snapshot = self.get(&name).expect("name just listed");
            let file = format!("{:016x}.snap", snapshot.fingerprint());
            let path = dir.join(&file);
            if !path.exists() {
                io::save_snapshot_v2(&path, snapshot.ensure_loaded()?)?;
            }
            lines.push_str(&format!("{:016x} {file} {name}\n", snapshot.fingerprint()));
        }
        io::atomic_write(dir.join(MANIFEST_FILE), lines.as_bytes())
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", dir.display())))?;
        Ok(())
    }

    /// Restores every graph listed in `dir`'s manifest, registering each one
    /// header-only with [`LoadMode::Mapped`] (see
    /// [`GraphCatalog::restore_with`]). One call rebuilds the whole catalog;
    /// returns the restored names in manifest order.
    pub fn restore(&self, dir: impl AsRef<Path>) -> Result<Vec<String>, ServiceError> {
        self.restore_with(dir, LoadMode::Mapped)
    }

    /// [`GraphCatalog::restore`] with an explicit [`LoadMode`] for the lazy
    /// materialization of each restored graph.
    ///
    /// Restoration is O(header) per graph: each snapshot file's header is
    /// probed (validating magic, version, section table) and its fingerprint
    /// cross-checked against the manifest; no data pages are read until a
    /// job first uses the graph.
    pub fn restore_with(
        &self,
        dir: impl AsRef<Path>,
        mode: LoadMode,
    ) -> Result<Vec<String>, ServiceError> {
        let dir = dir.as_ref();
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", manifest_path.display())))?;
        let corrupt = |line: &str, why: &str| {
            ServiceError::Snapshot(SnapshotError::Corrupt(format!(
                "manifest line {line:?}: {why}"
            )))
        };
        let mut restored = Vec::new();
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = trimmed.splitn(3, ' ');
            let fingerprint = parts
                .next()
                .and_then(|f| u64::from_str_radix(f, 16).ok())
                .ok_or_else(|| corrupt(trimmed, "bad fingerprint field"))?;
            let file = parts
                .next()
                .filter(|f| !f.contains('/') && !f.contains(".."))
                .ok_or_else(|| corrupt(trimmed, "bad snapshot file field"))?;
            let name = parts
                .next()
                .filter(|n| !n.is_empty())
                .ok_or_else(|| corrupt(trimmed, "missing graph name"))?;
            let snapshot = self.register_snapshot_file(name, dir.join(file), mode)?;
            if snapshot.fingerprint() != fingerprint {
                self.remove(name);
                return Err(corrupt(
                    trimmed,
                    &format!(
                        "snapshot file has fingerprint {:#018x}, manifest says {fingerprint:#018x}",
                        snapshot.fingerprint()
                    ),
                ));
            }
            restored.push(name.to_owned());
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::Label;

    fn toy() -> LabeledGraph {
        LabeledGraph::from_parts(&[Label(0), Label(1), Label(0)], &[(0, 1), (1, 2)])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spidermine-catalog-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn register_get_names_remove() {
        let catalog = GraphCatalog::new();
        assert!(catalog.is_empty());
        let snap = catalog.register("toy", toy());
        assert_eq!(snap.name(), "toy");
        assert!(snap.is_loaded());
        assert_eq!(snap.graph().vertex_count(), 3);
        assert_eq!(catalog.names(), vec!["toy".to_owned()]);
        let again = catalog.get("toy").expect("registered");
        assert!(Arc::ptr_eq(&snap, &again), "get hands out the same handle");
        assert!(catalog.get("other").is_none());
        assert!(catalog.remove("toy").is_some());
        assert!(catalog.is_empty());
    }

    #[test]
    fn reregistering_replaces_but_old_handles_survive() {
        let catalog = GraphCatalog::new();
        let old = catalog.register("g", toy());
        let bigger = LabeledGraph::from_parts(&[Label(0); 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let new = catalog.register("g", bigger);
        assert_eq!(catalog.len(), 1);
        assert!(!Arc::ptr_eq(&old, &new));
        assert_eq!(old.graph().vertex_count(), 3, "old handle still valid");
        assert_eq!(catalog.get("g").expect("g").graph().vertex_count(), 5);
    }

    #[test]
    fn save_load_roundtrip_preserves_fingerprint() {
        let catalog = GraphCatalog::new();
        let original = catalog.register("toy", toy());
        let dir = temp_dir("v1");
        let path = dir.join("toy.snap");
        catalog.save("toy", &path).expect("save");
        let restored = GraphCatalog::new();
        let loaded = restored.load("toy", &path).expect("load");
        assert_eq!(loaded.fingerprint(), original.fingerprint());
        assert_eq!(loaded.graph().edge_count(), original.graph().edge_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_unknown_graph_is_typed() {
        let catalog = GraphCatalog::new();
        assert!(matches!(
            catalog.save("ghost", "/tmp/never-written.snap"),
            Err(ServiceError::UnknownGraph(_))
        ));
    }

    #[test]
    fn register_snapshot_file_is_lazy_until_first_use() {
        let g = toy();
        let dir = temp_dir("lazy");
        let path = dir.join("toy.snap2");
        io::save_snapshot_v2(&path, &g).expect("save");
        let catalog = GraphCatalog::new();
        let snap = catalog
            .register_snapshot_file("toy", &path, LoadMode::Mapped)
            .expect("register");
        assert!(!snap.is_loaded(), "registration must not load the graph");
        assert_eq!(snap.fingerprint(), graph_fingerprint(&g));
        // First use materializes.
        assert_eq!(snap.ensure_loaded().expect("load").vertex_count(), 3);
        assert!(snap.is_loaded());
        assert_eq!(snap.graph().edge_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lazy_load_errors_are_typed_and_sticky() {
        let g = toy();
        let dir = temp_dir("sticky");
        let path = dir.join("toy.snap2");
        io::save_snapshot_v2(&path, &g).expect("save");
        let catalog = GraphCatalog::new();
        let snap = catalog
            .register_snapshot_file("toy", &path, LoadMode::Mapped)
            .expect("register");
        // Corrupt the labels section (first page) after registration but
        // before first use. (The label-index section would not do: it is
        // redundant, and a corrupt one self-heals via rebuild.)
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[io::SNAPSHOT_PAGE] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write");
        let err = snap.ensure_loaded().expect_err("must fail");
        assert!(matches!(err, ServiceError::Snapshot(_)), "{err}");
        assert!(!snap.is_loaded());
        // Sticky: corruption is a property of the bytes, so even repairing
        // the file does not resurrect this handle — the recorded permanent
        // error is reported without re-reading anything.
        bytes[io::SNAPSHOT_PAGE] ^= 0xff;
        std::fs::write(&path, &bytes).expect("repair");
        assert!(snap.ensure_loaded().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_io_failures_are_retryable_not_sticky() {
        let g = toy();
        let dir = temp_dir("transient");
        let path = dir.join("toy.snap2");
        io::save_snapshot_v2(&path, &g).expect("save");
        let catalog = GraphCatalog::new();
        let snap = catalog
            .register_snapshot_file("toy", &path, LoadMode::Mapped)
            .expect("register");
        // A transient outage: the file is briefly gone (mid-replacement, a
        // flaky mount), which surfaces as a transient `SnapshotError::Io`.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::remove_file(&path).expect("remove");
        let err = snap.ensure_loaded().expect_err("missing file must surface");
        match &err {
            ServiceError::Snapshot(e) => assert!(e.is_transient(), "{e}"),
            other => panic!("unexpected error: {other}"),
        }
        assert!(!snap.is_loaded());
        std::fs::write(&path, &bytes).expect("restore");
        // Not sticky: the next attempt reads the (healthy) file and loads.
        assert_eq!(snap.ensure_loaded().expect("retry").vertex_count(), 3);
        assert!(snap.is_loaded());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persist_restore_roundtrips_a_multi_graph_catalog() {
        let catalog = GraphCatalog::new();
        catalog.register("toy", toy());
        let bigger = LabeledGraph::from_parts(&[Label(2); 4], &[(0, 1), (1, 2), (2, 3)]);
        catalog.register("bigger", bigger);
        let dir = temp_dir("persist");
        catalog.persist(&dir).expect("persist");

        // "Kill" the service: a brand-new catalog restores from disk alone.
        let restored = GraphCatalog::new();
        let names = restored.restore(&dir).expect("restore");
        assert_eq!(names, catalog.names());
        for name in &names {
            let a = catalog.get(name).expect("original");
            let b = restored.get(name).expect("restored");
            assert_eq!(a.fingerprint(), b.fingerprint(), "{name}");
            assert!(!b.is_loaded(), "restore must be header-only");
            assert_eq!(
                a.graph().edge_count(),
                b.ensure_loaded().expect("load").edge_count(),
                "{name}"
            );
        }
        // Re-persisting an unchanged catalog rewrites no snapshot files.
        let before: Vec<(PathBuf, std::time::SystemTime)> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| {
                let e = e.expect("entry");
                (
                    e.path(),
                    e.metadata().expect("meta").modified().expect("mtime"),
                )
            })
            .collect();
        catalog.persist(&dir).expect("re-persist");
        for (path, mtime) in before {
            if path.file_name().is_some_and(|n| n != MANIFEST_FILE) {
                let now = path.metadata().expect("meta").modified().expect("mtime");
                assert_eq!(now, mtime, "{} was rewritten", path.display());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_snapshot_write_is_invisible_to_restore() {
        let catalog = GraphCatalog::new();
        catalog.register("toy", toy());
        let dir = temp_dir("partial");
        catalog.persist(&dir).expect("persist");
        // Simulate a crash mid-write: a temp file the atomic writer did not
        // get to rename. Restore must ignore it entirely.
        std::fs::write(dir.join(".0123.snap.tmp.9999"), b"SPDR").expect("write");
        let restored = GraphCatalog::new();
        let names = restored.restore(&dir).expect("restore");
        assert_eq!(names, vec!["toy".to_owned()]);
        assert_eq!(
            restored
                .get("toy")
                .expect("toy")
                .ensure_loaded()
                .expect("load")
                .vertex_count(),
            3
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_rejects_corrupt_manifest_and_fingerprint_lies() {
        let dir = temp_dir("manifest");
        std::fs::write(dir.join(MANIFEST_FILE), "not-hex file.snap name\n").expect("write");
        let catalog = GraphCatalog::new();
        assert!(matches!(
            catalog.restore(&dir),
            Err(ServiceError::Snapshot(SnapshotError::Corrupt(_)))
        ));
        // A manifest whose fingerprint disagrees with the snapshot file.
        let g = toy();
        let file = format!("{:016x}.snap", graph_fingerprint(&g));
        io::save_snapshot_v2(dir.join(&file), &g).expect("save");
        std::fs::write(
            dir.join(MANIFEST_FILE),
            format!("{:016x} {file} toy\n", 0xdead_beefu64),
        )
        .expect("write");
        assert!(matches!(
            catalog.restore(&dir),
            Err(ServiceError::Snapshot(SnapshotError::Corrupt(_)))
        ));
        assert!(catalog.is_empty(), "failed restore must not leave entries");
        // Missing manifest is a typed Io error.
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(
            catalog.restore(&dir),
            Err(ServiceError::Snapshot(SnapshotError::Io(_)))
        ));
    }

    #[test]
    fn persist_rejects_control_characters_in_names() {
        let catalog = GraphCatalog::new();
        catalog.register("evil\nname", toy());
        let dir = temp_dir("evil");
        assert!(catalog.persist(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn names_with_spaces_survive_the_manifest() {
        let catalog = GraphCatalog::new();
        catalog.register("my favorite graph", toy());
        let dir = temp_dir("spaces");
        catalog.persist(&dir).expect("persist");
        let restored = GraphCatalog::new();
        assert_eq!(
            restored.restore(&dir).expect("restore"),
            vec!["my favorite graph".to_owned()]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
