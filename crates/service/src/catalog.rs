//! The graph catalog: named, immutable, shareable graph snapshots.
//!
//! The expensive inputs of a mining request — the graph and its frozen CSR
//! index — are loaded **once** per graph and handed to every job as a cheap
//! [`Arc<GraphSnapshot>`] handle. A snapshot is immutable by construction
//! (the catalog takes ownership and nothing mutates the graph afterwards),
//! so its lazily built CSR index is shared safely across concurrent jobs;
//! [`GraphCatalog::register`] builds it eagerly so the first job does not pay
//! the freeze.
//!
//! Snapshots persist to the versioned binary format of
//! [`spidermine_graph::io`] ([`GraphCatalog::save`] / [`GraphCatalog::load`]),
//! so a service restart reloads flat CSR arrays instead of rebuilding
//! datasets. Each snapshot carries the content fingerprint of its graph
//! ([`graph_fingerprint`]): the stable identity the result cache keys on.

use crate::error::ServiceError;
use spidermine_graph::io;
use spidermine_graph::signature::graph_fingerprint;
use spidermine_graph::LabeledGraph;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An immutable, named graph with its frozen CSR index and content
/// fingerprint. Handed out as `Arc<GraphSnapshot>`; cloning the handle is
/// O(1) and every concurrent job reads the same index.
#[derive(Debug)]
pub struct GraphSnapshot {
    name: String,
    graph: LabeledGraph,
    fingerprint: u64,
}

impl GraphSnapshot {
    fn new(name: String, graph: LabeledGraph) -> Self {
        // Freeze the CSR view now, on the registering thread, so concurrent
        // jobs never race to build it (OnceLock would make that safe but
        // wasteful) and the first job is not slower than the rest.
        graph.csr();
        let fingerprint = graph_fingerprint(&graph);
        Self {
            name,
            graph,
            fingerprint,
        }
    }

    /// The catalog name this snapshot was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph itself (CSR index already built).
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// Stable content fingerprint of the graph
    /// ([`graph_fingerprint`]): equal across processes and across
    /// save/load round-trips, which is what makes it a valid persistent
    /// cache-key component.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// A registry of named [`GraphSnapshot`]s.
///
/// Thread-safe: `register`/`get` take an internal lock only for the map
/// operation; the snapshots themselves are lock-free to read.
#[derive(Debug, Default)]
pub struct GraphCatalog {
    graphs: Mutex<HashMap<String, Arc<GraphSnapshot>>>,
}

impl GraphCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `graph` under `name`, freezing its CSR index and computing
    /// its fingerprint. Replaces (and returns the handle of) any snapshot
    /// previously registered under the same name — existing jobs holding the
    /// old handle keep mining the old snapshot; new submissions see the new
    /// one.
    pub fn register(&self, name: impl Into<String>, graph: LabeledGraph) -> Arc<GraphSnapshot> {
        let name = name.into();
        let snapshot = Arc::new(GraphSnapshot::new(name.clone(), graph));
        self.graphs
            .lock()
            .expect("catalog lock")
            .insert(name, snapshot.clone());
        snapshot
    }

    /// The snapshot registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<GraphSnapshot>> {
        self.graphs.lock().expect("catalog lock").get(name).cloned()
    }

    /// Removes the snapshot registered under `name`, returning its handle.
    pub fn remove(&self, name: &str) -> Option<Arc<GraphSnapshot>> {
        self.graphs.lock().expect("catalog lock").remove(name)
    }

    /// All registered names, ascending.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .graphs
            .lock()
            .expect("catalog lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.lock().expect("catalog lock").len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persists the named snapshot to `path` in the binary snapshot format.
    pub fn save(&self, name: &str, path: impl AsRef<Path>) -> Result<(), ServiceError> {
        let snapshot = self
            .get(name)
            .ok_or_else(|| ServiceError::UnknownGraph(name.to_owned()))?;
        io::save_snapshot(path, snapshot.graph())?;
        Ok(())
    }

    /// Loads a binary snapshot file and registers it under `name`. The
    /// decoded graph's fingerprint necessarily equals the one stored in the
    /// file (the loader verifies it), so a reloaded graph hits the same
    /// cache entries as the original.
    pub fn load(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<Arc<GraphSnapshot>, ServiceError> {
        let graph = io::load_snapshot(path)?;
        Ok(self.register(name, graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_graph::Label;

    fn toy() -> LabeledGraph {
        LabeledGraph::from_parts(&[Label(0), Label(1), Label(0)], &[(0, 1), (1, 2)])
    }

    #[test]
    fn register_get_names_remove() {
        let catalog = GraphCatalog::new();
        assert!(catalog.is_empty());
        let snap = catalog.register("toy", toy());
        assert_eq!(snap.name(), "toy");
        assert_eq!(snap.graph().vertex_count(), 3);
        assert_eq!(catalog.names(), vec!["toy".to_owned()]);
        let again = catalog.get("toy").expect("registered");
        assert!(Arc::ptr_eq(&snap, &again), "get hands out the same handle");
        assert!(catalog.get("other").is_none());
        assert!(catalog.remove("toy").is_some());
        assert!(catalog.is_empty());
    }

    #[test]
    fn reregistering_replaces_but_old_handles_survive() {
        let catalog = GraphCatalog::new();
        let old = catalog.register("g", toy());
        let bigger = LabeledGraph::from_parts(&[Label(0); 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let new = catalog.register("g", bigger);
        assert_eq!(catalog.len(), 1);
        assert!(!Arc::ptr_eq(&old, &new));
        assert_eq!(old.graph().vertex_count(), 3, "old handle still valid");
        assert_eq!(catalog.get("g").expect("g").graph().vertex_count(), 5);
    }

    #[test]
    fn save_load_roundtrip_preserves_fingerprint() {
        let catalog = GraphCatalog::new();
        let original = catalog.register("toy", toy());
        let dir = std::env::temp_dir().join(format!("spidermine-catalog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("toy.snap");
        catalog.save("toy", &path).expect("save");
        let restored = GraphCatalog::new();
        let loaded = restored.load("toy", &path).expect("load");
        assert_eq!(loaded.fingerprint(), original.fingerprint());
        assert_eq!(loaded.graph().edge_count(), original.graph().edge_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_unknown_graph_is_typed() {
        let catalog = GraphCatalog::new();
        assert!(matches!(
            catalog.save("ghost", "/tmp/never-written.snap"),
            Err(ServiceError::UnknownGraph(_))
        ));
    }
}
