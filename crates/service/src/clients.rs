//! Per-client accounting for the service's network edge.
//!
//! The remote transport identifies every connection by a client-supplied
//! name; admission decisions and streamed traffic are attributed to that
//! name here so [`ServiceMetrics`](crate::ServiceMetrics) can answer "who is
//! hitting this service, and with what" — the per-tenant visibility any
//! quota or billing story needs. In-process submissions may attribute
//! themselves too by submitting with
//! [`SubmitOptions::client`](crate::scheduler::SubmitOptions); unattributed
//! work simply never touches the registry.
//!
//! The counters themselves are telemetry [`Counter`] cells. A registry built
//! with [`ClientRegistry::with_registry`] resolves each client's cells as
//! labeled metrics (`client_accepted_total{client="alice"}`, …) in the
//! service's telemetry [`Registry`], so the per-client story in the
//! Prometheus exposition and the [`ClientStats`] snapshots read the *same*
//! cells — there is no second set of counts to drift.

use spidermine_telemetry::{Counter, Registry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Counters for one named client.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Submissions admitted into the scheduler.
    pub accepted: u64,
    /// Submissions rejected at admission — the scheduler's typed rejections
    /// plus transport-edge rejections (per-client quota, connection caps).
    pub rejected: u64,
    /// Patterns streamed to this client over the wire.
    pub patterns_streamed: u64,
    /// Encoded pattern payload bytes streamed to this client.
    pub bytes_streamed: u64,
}

/// One client's live counter cells.
struct ClientCounters {
    accepted: Counter,
    rejected: Counter,
    patterns_streamed: Counter,
    bytes_streamed: Counter,
}

impl ClientCounters {
    /// Standalone cells (no telemetry registry attached).
    fn detached() -> Self {
        Self {
            accepted: Counter::default(),
            rejected: Counter::default(),
            patterns_streamed: Counter::default(),
            bytes_streamed: Counter::default(),
        }
    }

    /// Cells resolved in `registry` as labeled metrics for `client`.
    fn registered(registry: &Registry, client: &str) -> Self {
        let named = |metric: &str| registry.counter(&format!("{metric}{{client=\"{client}\"}}"));
        Self {
            accepted: named("client_accepted_total"),
            rejected: named("client_rejected_total"),
            patterns_streamed: named("client_patterns_streamed_total"),
            bytes_streamed: named("client_bytes_streamed_total"),
        }
    }

    fn stats(&self) -> ClientStats {
        ClientStats {
            accepted: self.accepted.get(),
            rejected: self.rejected.get(),
            patterns_streamed: self.patterns_streamed.get(),
            bytes_streamed: self.bytes_streamed.get(),
        }
    }
}

/// Thread-safe name → [`ClientStats`] map. All methods take `&self`; the
/// registry lives inside the scheduler and is shared with the transport.
#[derive(Default)]
pub struct ClientRegistry {
    clients: Mutex<HashMap<String, ClientCounters>>,
    /// When present, each client's cells are also exported here as labeled
    /// metrics.
    telemetry: Option<Arc<Registry>>,
}

impl std::fmt::Debug for ClientRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientRegistry")
            .field("clients", &self.snapshot())
            .finish()
    }
}

impl ClientRegistry {
    /// An empty registry with detached counters (tests, ad-hoc use).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry whose per-client counters are exported through the
    /// service's telemetry registry. This is what the scheduler builds.
    pub fn with_registry(telemetry: Arc<Registry>) -> Self {
        Self {
            clients: Mutex::new(HashMap::new()),
            telemetry: Some(telemetry),
        }
    }

    fn update(&self, client: &str, apply: impl FnOnce(&ClientCounters)) {
        let mut clients = self.clients.lock().expect("client stats lock");
        let counters =
            clients
                .entry(client.to_owned())
                .or_insert_with(|| match self.telemetry.as_deref() {
                    Some(registry) => ClientCounters::registered(registry, client),
                    None => ClientCounters::detached(),
                });
        apply(counters);
    }

    /// Records one admitted submission.
    pub fn record_accepted(&self, client: &str) {
        self.update(client, |c| c.accepted.inc());
    }

    /// Records one rejected submission (scheduler- or transport-edge).
    pub fn record_rejected(&self, client: &str) {
        self.update(client, |c| c.rejected.inc());
    }

    /// Records `patterns` streamed patterns totalling `bytes` encoded bytes.
    pub fn record_streamed(&self, client: &str, patterns: u64, bytes: u64) {
        self.update(client, |c| {
            c.patterns_streamed.add(patterns);
            c.bytes_streamed.add(bytes);
        });
    }

    /// Counters for one client, if it has ever been recorded.
    pub fn get(&self, client: &str) -> Option<ClientStats> {
        self.clients
            .lock()
            .expect("client stats lock")
            .get(client)
            .map(ClientCounters::stats)
    }

    /// Every client's counters, sorted by name for stable output.
    pub fn snapshot(&self) -> Vec<(String, ClientStats)> {
        let clients = self.clients.lock().expect("client stats lock");
        let mut rows: Vec<_> = clients
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect();
        drop(clients);
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_client_and_snapshot_sorts() {
        let registry = ClientRegistry::new();
        registry.record_accepted("bob");
        registry.record_accepted("alice");
        registry.record_accepted("alice");
        registry.record_rejected("alice");
        registry.record_streamed("bob", 3, 1200);
        registry.record_streamed("bob", 1, 400);
        assert_eq!(
            registry.get("alice"),
            Some(ClientStats {
                accepted: 2,
                rejected: 1,
                ..ClientStats::default()
            })
        );
        assert_eq!(registry.get("ghost"), None);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            ["alice", "bob"]
        );
        assert_eq!(snapshot[1].1.patterns_streamed, 4);
        assert_eq!(snapshot[1].1.bytes_streamed, 1600);
    }

    #[test]
    fn registry_backed_counters_surface_as_labeled_metrics() {
        let telemetry = Arc::new(Registry::new());
        let registry = ClientRegistry::with_registry(telemetry.clone());
        registry.record_accepted("alice");
        registry.record_rejected("alice");
        registry.record_streamed("alice", 2, 64);
        // The ClientStats snapshot and the telemetry exposition read the
        // same cells.
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("client_accepted_total{client=\"alice\"}"), 1);
        assert_eq!(snap.counter("client_rejected_total{client=\"alice\"}"), 1);
        assert_eq!(
            snap.counter("client_bytes_streamed_total{client=\"alice\"}"),
            64
        );
        assert_eq!(
            registry.get("alice"),
            Some(ClientStats {
                accepted: 1,
                rejected: 1,
                patterns_streamed: 2,
                bytes_streamed: 64,
            })
        );
    }
}
