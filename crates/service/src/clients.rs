//! Per-client accounting for the service's network edge.
//!
//! The remote transport identifies every connection by a client-supplied
//! name; admission decisions and streamed traffic are attributed to that
//! name here so [`ServiceMetrics`](crate::ServiceMetrics) can answer "who is
//! hitting this service, and with what" — the per-tenant visibility any
//! quota or billing story needs. In-process submissions may attribute
//! themselves too by submitting with
//! [`SubmitOptions::client`](crate::scheduler::SubmitOptions); unattributed
//! work simply never touches the registry.

use std::collections::HashMap;
use std::sync::Mutex;

/// Counters for one named client.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Submissions admitted into the scheduler.
    pub accepted: u64,
    /// Submissions rejected at admission — the scheduler's typed rejections
    /// plus transport-edge rejections (per-client quota, connection caps).
    pub rejected: u64,
    /// Patterns streamed to this client over the wire.
    pub patterns_streamed: u64,
    /// Encoded pattern payload bytes streamed to this client.
    pub bytes_streamed: u64,
}

/// Thread-safe name → [`ClientStats`] map. All methods take `&self`; the
/// registry lives inside the scheduler and is shared with the transport.
#[derive(Debug, Default)]
pub struct ClientRegistry {
    stats: Mutex<HashMap<String, ClientStats>>,
}

impl ClientRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn update(&self, client: &str, apply: impl FnOnce(&mut ClientStats)) {
        let mut stats = self.stats.lock().expect("client stats lock");
        apply(stats.entry(client.to_owned()).or_default());
    }

    /// Records one admitted submission.
    pub fn record_accepted(&self, client: &str) {
        self.update(client, |s| s.accepted += 1);
    }

    /// Records one rejected submission (scheduler- or transport-edge).
    pub fn record_rejected(&self, client: &str) {
        self.update(client, |s| s.rejected += 1);
    }

    /// Records `patterns` streamed patterns totalling `bytes` encoded bytes.
    pub fn record_streamed(&self, client: &str, patterns: u64, bytes: u64) {
        self.update(client, |s| {
            s.patterns_streamed += patterns;
            s.bytes_streamed += bytes;
        });
    }

    /// Counters for one client, if it has ever been recorded.
    pub fn get(&self, client: &str) -> Option<ClientStats> {
        self.stats
            .lock()
            .expect("client stats lock")
            .get(client)
            .copied()
    }

    /// Every client's counters, sorted by name for stable output.
    pub fn snapshot(&self) -> Vec<(String, ClientStats)> {
        let stats = self.stats.lock().expect("client stats lock");
        let mut rows: Vec<_> = stats.iter().map(|(k, v)| (k.clone(), *v)).collect();
        drop(stats);
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_client_and_snapshot_sorts() {
        let registry = ClientRegistry::new();
        registry.record_accepted("bob");
        registry.record_accepted("alice");
        registry.record_accepted("alice");
        registry.record_rejected("alice");
        registry.record_streamed("bob", 3, 1200);
        registry.record_streamed("bob", 1, 400);
        assert_eq!(
            registry.get("alice"),
            Some(ClientStats {
                accepted: 2,
                rejected: 1,
                ..ClientStats::default()
            })
        );
        assert_eq!(registry.get("ghost"), None);
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            ["alice", "bob"]
        );
        assert_eq!(snapshot[1].1.patterns_streamed, 4);
        assert_eq!(snapshot[1].1.bytes_streamed, 1600);
    }
}
