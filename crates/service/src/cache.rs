//! The fingerprint-keyed result cache.
//!
//! Completed [`MineOutcome`]s are stored in an LRU map keyed by
//! [`CacheKey`] — the catalog graph name, the graph snapshot's content
//! fingerprint, and the request's canonical key
//! ([`MineRequest::canonical_key`](spidermine_engine::MineRequest::canonical_key)).
//! Fingerprint and request key are stable across processes, so cached
//! identity survives a service restart (the fingerprint is even persisted
//! inside snapshot files); the graph name rides along so two distinct graphs
//! whose 64-bit fingerprints collide can never be served each other's
//! outcomes.
//!
//! What makes serving cached outcomes *legitimate* is the engine's
//! determinism guarantee: results are byte-identical at every thread width
//! (the runtime's reductions are order-preserving), so the `threads` knob is
//! excluded from the canonical key and a cached outcome is exactly what a
//! fresh run would produce. Cancelled or timed-out runs are partial and are
//! therefore never cached.
//!
//! The cache is also the **single-flight** gate: the first lookup to miss on
//! a key becomes the *leader* and inserts a pending marker; identical
//! lookups arriving while it mines see [`CacheLookup::InFlight`] and the
//! scheduler *parks* those jobs instead of blocking a dispatcher on them —
//! the leader drains the parked jobs when it completes (they re-look-up and
//! hit) or aborts (one of them takes over as leader). K identical concurrent
//! jobs therefore cost one mining run and K−1 hits, without ever idling a
//! dispatcher thread.

use spidermine_engine::MineOutcome;
use spidermine_telemetry::{Counter, Registry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What a completed mining run is filed under.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Catalog name the job was submitted against. Disambiguates graphs
    /// whose content fingerprints collide (FNV-1a is fast, not
    /// collision-resistant).
    pub graph: String,
    /// [`GraphSnapshot::fingerprint`](crate::GraphSnapshot::fingerprint) of
    /// the mined snapshot — so re-registering a *different* graph under the
    /// same name can never serve the old graph's outcomes.
    pub fingerprint: u64,
    /// [`MineRequest::canonical_key`](spidermine_engine::MineRequest::canonical_key)
    /// of the request.
    pub request: String,
}

/// Counter snapshot of the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a completed entry (including parked jobs drained
    /// by a single-flight leader).
    pub hits: u64,
    /// Lookups that became leaders and had to mine.
    pub misses: u64,
    /// Completed entries evicted to respect the capacity.
    pub evictions: u64,
    /// Completed entries currently resident.
    pub entries: usize,
}

enum Slot {
    /// A leader is mining this key right now.
    Pending,
    /// A completed outcome, with its LRU clock stamp.
    Ready {
        outcome: Arc<MineOutcome>,
        last_used: u64,
    },
}

struct CacheState {
    slots: HashMap<CacheKey, Slot>,
    /// Monotone LRU clock; bumped on every insert and hit.
    clock: u64,
}

/// Result of [`ResultCache::begin`].
pub enum CacheLookup {
    /// A completed outcome was resident. Counted as a hit.
    Hit(Arc<MineOutcome>),
    /// Nothing resident: the caller is now the leader for this key and must
    /// either [`ResultCache::complete`] or [`ResultCache::abort`] it.
    /// Counted as a miss.
    Leader,
    /// A leader is mining this key right now. Not counted; the caller should
    /// park the work and retry once the in-flight run settles.
    InFlight,
}

/// LRU + single-flight cache of completed [`MineOutcome`]s. See the module
/// docs. Never blocks: an in-flight key is reported, not waited on.
pub struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
    // Telemetry counter cells (cache-line padded apiece: hits and misses are
    // bumped from different dispatcher threads on every lookup and would
    // otherwise false-share). Built via `with_registry` these are the *same*
    // cells the service's telemetry registry exports, so `CacheStats` and
    // the Prometheus dump can never drift apart.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` completed outcomes. Capacity 0
    /// disables caching entirely (every lookup is a miss, nothing is stored,
    /// and single-flight deduplication is off).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(CacheState {
                slots: HashMap::new(),
                clock: 0,
            }),
            capacity,
            hits: Counter::default(),
            misses: Counter::default(),
            evictions: Counter::default(),
        }
    }

    /// Like [`ResultCache::new`], but with the counters registered in
    /// `registry` (as `cache_hits_total` / `cache_misses_total` /
    /// `cache_evictions_total`) so the cache shows up in the service's
    /// metrics exposition. The scheduler builds its cache this way.
    pub fn with_registry(capacity: usize, registry: &Registry) -> Self {
        Self {
            hits: registry.counter("cache_hits_total"),
            misses: registry.counter("cache_misses_total"),
            evictions: registry.counter("cache_evictions_total"),
            ..Self::new(capacity)
        }
    }

    /// Looks up `key`, entering the single-flight protocol:
    ///
    /// * completed entry resident → [`CacheLookup::Hit`] (refreshes LRU);
    /// * a leader is mining it → [`CacheLookup::InFlight`], immediately;
    /// * vacant → insert a pending marker, return [`CacheLookup::Leader`].
    pub fn begin(&self, key: &CacheKey) -> CacheLookup {
        if self.capacity == 0 {
            self.misses.inc();
            return CacheLookup::Leader;
        }
        let mut state = self.state.lock().expect("cache lock");
        let s = &mut *state;
        match s.slots.get_mut(key) {
            Some(Slot::Ready { outcome, last_used }) => {
                s.clock += 1;
                *last_used = s.clock;
                let out = outcome.clone();
                self.hits.inc();
                CacheLookup::Hit(out)
            }
            Some(Slot::Pending) => CacheLookup::InFlight,
            None => {
                s.slots.insert(key.clone(), Slot::Pending);
                self.misses.inc();
                CacheLookup::Leader
            }
        }
    }

    /// True while a leader's pending marker is resident for `key`. The
    /// scheduler re-checks this under its parking lock to close the race
    /// between a [`CacheLookup::InFlight`] answer and the leader settling.
    pub fn is_pending(&self, key: &CacheKey) -> bool {
        matches!(
            self.state.lock().expect("cache lock").slots.get(key),
            Some(Slot::Pending)
        )
    }

    /// Files the leader's completed outcome under `key` and evicts
    /// least-recently-used completed entries beyond the capacity (pending
    /// markers are never evicted).
    pub fn complete(&self, key: &CacheKey, outcome: Arc<MineOutcome>) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().expect("cache lock");
        state.clock += 1;
        let now = state.clock;
        state.slots.insert(
            key.clone(),
            Slot::Ready {
                outcome,
                last_used: now,
            },
        );
        while self.ready_count(&state) > self.capacity {
            let victim = state
                .slots
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { last_used, .. } => Some((*last_used, k.clone())),
                    Slot::Pending => None,
                })
                .min_by_key(|(last_used, _)| *last_used)
                .map(|(_, k)| k)
                .expect("over-capacity cache has a ready entry");
            state.slots.remove(&victim);
            self.evictions.inc();
        }
    }

    /// Withdraws the leader's pending marker without filing an outcome (the
    /// run was cancelled, timed out, or failed — partial results are never
    /// cached). The next lookup on the key becomes the new leader.
    pub fn abort(&self, key: &CacheKey) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().expect("cache lock");
        if matches!(state.slots.get(key), Some(Slot::Pending)) {
            state.slots.remove(key);
        }
    }

    /// Drops every completed entry (pending markers survive; their leaders
    /// will still complete them). Counters are kept.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("cache lock");
        state.slots.retain(|_, slot| matches!(slot, Slot::Pending));
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            entries: self.ready_count(&state),
        }
    }

    fn ready_count(&self, state: &CacheState) -> usize {
        state
            .slots
            .values()
            .filter(|slot| matches!(slot, Slot::Ready { .. }))
            .count()
    }
}

/// Drop guard a leader holds while mining: if the leader unwinds without
/// completing (a panic in the engine), the pending marker is withdrawn so
/// the key does not stay in-flight forever.
pub(crate) struct PendingGuard<'a> {
    cache: &'a ResultCache,
    key: &'a CacheKey,
    armed: bool,
}

impl<'a> PendingGuard<'a> {
    pub(crate) fn new(cache: &'a ResultCache, key: &'a CacheKey) -> Self {
        Self {
            cache,
            key,
            armed: true,
        }
    }

    /// Files the outcome and disarms the guard.
    pub(crate) fn complete(mut self, outcome: Arc<MineOutcome>) {
        self.cache.complete(self.key, outcome);
        self.armed = false;
    }

    /// Withdraws the marker and disarms the guard.
    pub(crate) fn abort(mut self) {
        self.cache.abort(self.key);
        self.armed = false;
    }
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.abort(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_engine::{Algorithm, MineOutcome};
    use std::time::Duration;

    fn key(fp: u64, req: &str) -> CacheKey {
        CacheKey {
            graph: "g".to_owned(),
            fingerprint: fp,
            request: req.to_owned(),
        }
    }

    fn outcome(n: usize) -> Arc<MineOutcome> {
        Arc::new(MineOutcome {
            algorithm: Algorithm::SpiderMine,
            patterns: Vec::new(),
            cancelled: false,
            timed_out: false,
            stages: Vec::new(),
            total_time: Duration::from_millis(n as u64),
            threads: 1,
            dropped_embeddings: 0,
        })
    }

    fn must_lead(cache: &ResultCache, k: &CacheKey) {
        match cache.begin(k) {
            CacheLookup::Leader => {}
            _ => panic!("expected leader"),
        }
    }

    #[test]
    fn miss_then_hit() {
        let cache = ResultCache::new(4);
        let k = key(1, "a");
        must_lead(&cache, &k);
        cache.complete(&k, outcome(1));
        match cache.begin(&k) {
            CacheLookup::Hit(o) => assert_eq!(o.total_time, Duration::from_millis(1)),
            _ => panic!("expected hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn same_fingerprint_under_a_different_graph_name_is_a_distinct_entry() {
        let cache = ResultCache::new(4);
        let a = CacheKey {
            graph: "a".into(),
            ..key(7, "req")
        };
        let b = CacheKey {
            graph: "b".into(),
            ..key(7, "req")
        };
        must_lead(&cache, &a);
        cache.complete(&a, outcome(1));
        // A colliding fingerprint on another graph must not be served a's
        // outcome.
        must_lead(&cache, &b);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResultCache::new(2);
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            let k = key(i as u64, name);
            must_lead(&cache, &k);
            cache.complete(&k, outcome(i));
            if *name == "b" {
                // Touch `a` so `b` is the coldest when `c` arrives.
                match cache.begin(&key(0, "a")) {
                    CacheLookup::Hit(_) => {}
                    _ => panic!("a resident"),
                }
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        match cache.begin(&key(1, "b")) {
            CacheLookup::Leader => cache.abort(&key(1, "b")),
            _ => panic!("b should have been evicted"),
        }
        match cache.begin(&key(0, "a")) {
            CacheLookup::Hit(_) => {}
            _ => panic!("a should have survived"),
        }
    }

    #[test]
    fn in_flight_key_is_reported_not_awaited() {
        let cache = ResultCache::new(4);
        let k = key(7, "shared");
        must_lead(&cache, &k);
        assert!(cache.is_pending(&k));
        assert!(matches!(cache.begin(&k), CacheLookup::InFlight));
        assert!(matches!(cache.begin(&k), CacheLookup::InFlight));
        cache.complete(&k, outcome(9));
        assert!(!cache.is_pending(&k));
        match cache.begin(&k) {
            CacheLookup::Hit(o) => assert_eq!(o.total_time, Duration::from_millis(9)),
            _ => panic!("expected hit after completion"),
        }
        // InFlight answers counted neither as hits nor misses.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn abort_lets_the_next_lookup_lead() {
        let cache = ResultCache::new(4);
        let k = key(7, "flaky");
        must_lead(&cache, &k);
        assert!(matches!(cache.begin(&k), CacheLookup::InFlight));
        cache.abort(&k);
        assert!(!cache.is_pending(&k));
        must_lead(&cache, &k);
    }

    #[test]
    fn pending_guard_aborts_on_unwind() {
        let cache = ResultCache::new(4);
        let k = key(1, "panicky");
        must_lead(&cache, &k);
        {
            let _guard = PendingGuard::new(&cache, &k);
            // Dropped without complete(): simulates a leader unwinding.
        }
        must_lead(&cache, &k); // marker was withdrawn, we lead again
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        let k = key(1, "a");
        must_lead(&cache, &k);
        cache.complete(&k, outcome(1));
        must_lead(&cache, &k);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clear_drops_ready_entries() {
        let cache = ResultCache::new(4);
        let k = key(1, "a");
        must_lead(&cache, &k);
        cache.complete(&k, outcome(1));
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        must_lead(&cache, &k);
    }
}
