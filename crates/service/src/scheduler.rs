//! The concurrent job scheduler.
//!
//! Jobs — a catalog graph name plus a validated
//! [`MineRequest`] — enter a bounded priority/FIFO queue
//! (admission control rejects submissions beyond the depth limit with a
//! typed [`ServiceError::QueueFull`]) and are executed by a small fixed set
//! of dispatcher threads. Each dispatcher consults the [`ResultCache`]
//! first (single-flight: identical concurrent jobs mine once — duplicates
//! are *parked*, not blocked on, so the dispatcher stays free for other
//! work and the leader serves them when it settles), then runs the engine,
//! which executes on the PR-4 work-stealing pool at the job's own `threads`
//! width and under its own `deadline_ms` budget.
//!
//! Every submission returns a [`JobHandle`] for status polling
//! ([`JobStatus`]), blocking [`JobHandle::wait`], and cancellation; the
//! scheduler accumulates service-wide [`ServiceMetrics`] (queue wait, run
//! time, patterns emitted, drops) alongside per-job [`JobMetrics`].

use crate::cache::{CacheKey, CacheLookup, CacheStats, PendingGuard, ResultCache};
use crate::catalog::{GraphCatalog, GraphSnapshot};
use crate::clients::{ClientRegistry, ClientStats};
use crate::error::ServiceError;
use spidermine_engine::{Engine, GraphSource, MineError, MineOutcome, MineRequest, Miner};
use spidermine_faultline::{self as faultline, RetryPolicy};
use spidermine_mining::context::{CancelToken, MineContext, StreamedPattern};
use spidermine_telemetry::{self as telemetry, Counter, Histogram, Registry};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`JobScheduler`] (and of the
/// [`MiningService`](crate::MiningService) facade).
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Admission limit: jobs waiting to execute (queued in the FIFO lanes
    /// *plus* parked behind an in-flight identical run) beyond this bound
    /// are rejected with [`ServiceError::QueueFull`].
    pub queue_depth: usize,
    /// Dispatcher threads executing jobs. Each runs one job at a time; the
    /// job's own parallelism comes from its `threads` knob on the shared
    /// work-stealing pool.
    pub dispatchers: usize,
    /// Completed outcomes the result cache retains (LRU). 0 disables
    /// caching.
    pub cache_capacity: usize,
    /// Per-job width budget: requests asking for more worker threads than
    /// this are rejected at submission. `None` leaves the engine's own cap
    /// (`rayon::MAX_WORKERS`) as the only limit.
    pub max_threads_per_job: Option<usize>,
    /// Default retry policy for *transient* failures: snapshot-load I/O
    /// errors at admission and panicked engine runs at execution. Permanent
    /// failures (validation, unknown graph, engine errors, corruption) are
    /// never retried regardless of this policy. Per-job override via
    /// [`SubmitOptions::retry`]; retry counts land in [`JobMetrics::retries`]
    /// and [`ServiceMetrics::retries`].
    pub retry: RetryPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            dispatchers: 2,
            cache_capacity: 128,
            max_threads_per_job: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Scheduling priority of a job. Within one priority the queue is FIFO;
/// higher priorities dispatch first. (Deliberately not `Ord`: the variant
/// order is a lane index, and a derived ordering would rank `High` as the
/// *smallest* value — match on the variants instead.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Dispatched before everything else.
    High,
    /// The default.
    #[default]
    Normal,
    /// Dispatched only when nothing else waits.
    Low,
}

/// Callback invoked for every accepted pattern a job delivers, installed via
/// [`SubmitOptions::observer`]. For a freshly mined job it fires from the
/// dispatcher thread as the engine accepts each pattern (the same push
/// stream [`MineContext::on_pattern`] carries in-process); for a
/// cache-served job the scheduler *replays* the cached outcome's patterns
/// through it, in outcome order, before the handle turns terminal. Either
/// way the contract is: the observer sees every pattern of the job's final
/// outcome exactly once, all before [`JobHandle::wait`] returns. This is
/// what lets the remote transport stream patterns incrementally over the
/// wire without buffering the run.
pub type PatternObserver = Arc<dyn Fn(&StreamedPattern) + Send + Sync>;

/// Per-submission options beyond the graph name and request.
#[derive(Default)]
pub struct SubmitOptions {
    /// Scheduling priority (lane). Defaults to [`Priority::Normal`].
    pub priority: Priority,
    /// Streaming observer; see [`PatternObserver`].
    pub observer: Option<PatternObserver>,
    /// Client name this submission is attributed to in the per-client
    /// counters ([`JobScheduler::clients`]). `None` leaves the registry
    /// untouched.
    pub client: Option<String>,
    /// Per-job retry policy for transient failures, overriding
    /// [`ServiceConfig::retry`]. `None` uses the service default.
    pub retry: Option<RetryPolicy>,
    /// Telemetry trace id this job's spans belong to. `None` mints a fresh
    /// id at admission; the remote transport passes the id it received over
    /// the wire so client- and server-side spans land in one trace.
    pub trace: Option<u64>,
}

impl std::fmt::Debug for SubmitOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitOptions")
            .field("priority", &self.priority)
            .field("observer", &self.observer.as_ref().map(|_| "Fn"))
            .field("client", &self.client)
            .field("retry", &self.retry)
            .field("trace", &self.trace)
            .finish()
    }
}

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Accepted, waiting for a dispatcher.
    Queued,
    /// A dispatcher is executing it.
    Running,
    /// Finished with a complete outcome.
    Done,
    /// Wound down early — cancelled (or timed out) before or during the run.
    /// [`JobHandle::wait`] still returns the (possibly empty) partial
    /// outcome; cancellation is never an error.
    Cancelled,
    /// The engine returned an error (or panicked; the dispatcher catches the
    /// unwind); [`JobHandle::wait`] surfaces it as
    /// [`ServiceError::JobFailed`] / [`ServiceError::JobPanicked`].
    Failed,
}

impl JobStatus {
    /// True once the job will make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed
        )
    }
}

/// Per-job accounting, available once the job reaches a terminal status.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobMetrics {
    /// Time spent queued before a dispatcher picked the job up.
    pub queue_wait: Duration,
    /// Wall-clock this job itself spent mining. Exactly zero for
    /// cache-served jobs — their cost lives in `cache_wait` — so summing
    /// `run_time` across jobs never double-counts a leader's mining time.
    pub run_time: Duration,
    /// Time spent in result-cache lookups (near zero — lookups never block;
    /// a job parked behind an identical in-flight run accrues that wait
    /// under `queue_wait` instead).
    pub cache_wait: Duration,
    /// Patterns in the outcome.
    pub patterns: usize,
    /// True if the outcome was served from the result cache (including
    /// being served by a concurrent identical job's single-flight leader).
    pub from_cache: bool,
    /// Execution retries this job consumed: how many times a transient
    /// failure (a panicked run) was retried under the job's
    /// [`RetryPolicy`] before the recorded terminal status. `0` for jobs
    /// that succeeded (or failed permanently) on the first attempt.
    pub retries: u32,
}

/// Service-wide counter snapshot, from [`JobScheduler::metrics`].
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Submissions rejected by admission control (full queue, unknown graph,
    /// invalid request, shutdown).
    pub rejected: u64,
    /// Jobs finished with a complete outcome.
    pub completed: u64,
    /// Jobs cancelled or timed out (before or during the run).
    pub cancelled: u64,
    /// Jobs whose engine run errored.
    pub failed: u64,
    /// Total time jobs spent queued.
    pub queue_wait_total: Duration,
    /// Total execution wall-clock (cache hits contribute ~0).
    pub run_time_total: Duration,
    /// Patterns across all finished outcomes.
    pub patterns_emitted: u64,
    /// Merged-group embedding drops across all outcomes
    /// ([`MineOutcome::dropped_embeddings`]).
    pub embeddings_dropped: u64,
    /// Transient-failure retries across the service: snapshot-load retries
    /// at admission plus panicked-run retries at execution. A persistently
    /// climbing value under steady load means some dependency is flapping.
    pub retries: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Jobs currently waiting to execute (queued + parked).
    pub queue_depth: usize,
    /// Per-client counters, sorted by client name. Populated only for
    /// submissions attributed via [`SubmitOptions::client`] (every remote
    /// transport submission is).
    pub clients: Vec<(String, ClientStats)>,
}

struct JobState {
    status: JobStatus,
    outcome: Option<Arc<MineOutcome>>,
    error: Option<ServiceError>,
    metrics: Option<JobMetrics>,
}

struct JobShared {
    id: u64,
    graph: String,
    /// Telemetry trace id every span of this job carries (0 = untraced).
    trace: u64,
    state: Mutex<JobState>,
    finished: Condvar,
    cancel: CancelToken,
}

/// Handle to a submitted job: status polling, blocking wait, cancellation,
/// per-job metrics. Cloneable; all clones observe the same job.
#[derive(Clone)]
pub struct JobHandle {
    shared: Arc<JobShared>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.shared.id)
            .field("graph", &self.shared.graph)
            .field("status", &self.status())
            .finish()
    }
}

impl JobHandle {
    /// Service-unique job id (monotone submission order).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// The catalog graph this job mines.
    pub fn graph_name(&self) -> &str {
        &self.shared.graph
    }

    /// Telemetry trace id this job's spans carry. Stable for the job's
    /// lifetime; `0` only if the id was explicitly submitted as 0.
    pub fn trace(&self) -> u64 {
        self.shared.trace
    }

    /// Current lifecycle status.
    pub fn status(&self) -> JobStatus {
        self.shared.state.lock().expect("job lock").status
    }

    /// Requests cooperative cancellation: a queued job is dropped when a
    /// dispatcher reaches it; a running job winds down and keeps its partial
    /// results. Idempotent.
    pub fn cancel(&self) {
        self.shared.cancel.fire();
    }

    /// Blocks until the job reaches a terminal status, then returns its
    /// outcome. `Done` and `Cancelled` both yield `Ok` (a cancelled or
    /// timed-out run's outcome is a valid partial result); only engine
    /// errors surface as `Err`.
    pub fn wait(&self) -> Result<Arc<MineOutcome>, ServiceError> {
        let mut state = self.shared.state.lock().expect("job lock");
        while !state.status.is_terminal() {
            state = self.shared.finished.wait(state).expect("job lock");
        }
        match state.status {
            JobStatus::Failed => Err(state.error.clone().expect("failed job records its error")),
            _ => Ok(state.outcome.clone().expect("terminal job has an outcome")),
        }
    }

    /// Like [`JobHandle::wait`] but gives up after `timeout`, returning
    /// `None` if the job is still in flight.
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Option<Result<Arc<MineOutcome>, ServiceError>> {
        // A timeout too large to represent is an indefinite wait.
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            return Some(self.wait());
        };
        let mut state = self.shared.state.lock().expect("job lock");
        while !state.status.is_terminal() {
            let left = deadline.checked_duration_since(Instant::now())?;
            let (guard, _) = self
                .shared
                .finished
                .wait_timeout(state, left)
                .expect("job lock");
            state = guard;
        }
        drop(state);
        Some(self.wait())
    }

    /// Per-job metrics; `None` until the job reaches a terminal status.
    pub fn metrics(&self) -> Option<JobMetrics> {
        self.shared.state.lock().expect("job lock").metrics
    }
}

struct QueuedJob {
    shared: Arc<JobShared>,
    snapshot: Arc<GraphSnapshot>,
    engine: Engine,
    key: CacheKey,
    submitted: Instant,
    observer: Option<PatternObserver>,
    retry: RetryPolicy,
    /// Root `job` span opened at admission, closed in `finish` (0 when
    /// tracing was disarmed at admission).
    root_span: u64,
    /// The currently open wait span (`queued` at admission, `parked` while
    /// behind a single-flight leader) and its name; a dispatcher closes it
    /// when it picks the job up.
    wait_span: u64,
    wait_name: &'static str,
}

#[derive(Default)]
struct JobQueues {
    /// One FIFO per [`Priority`], indexed by its discriminant order.
    lanes: [VecDeque<QueuedJob>; 3],
}

impl JobQueues {
    fn depth(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    fn pop(&mut self) -> Option<QueuedJob> {
        self.lanes.iter_mut().find_map(VecDeque::pop_front)
    }
}

/// Service-level metrics: telemetry counter cells, one per cache line
/// (dispatcher threads bump disjoint counters concurrently — submission
/// bumps `submitted` while completions bump `completed`/`run_time_us` — and
/// unpadded neighbors would false-share a line and serialize on
/// cache-coherence traffic). Resolved once from the per-service telemetry
/// [`Registry`] at construction, so [`ServiceMetrics`] snapshots and the
/// registry's Prometheus exposition read the *same* cells — there is no
/// second set of counts to drift.
struct Counters {
    submitted: Counter,
    rejected: Counter,
    completed: Counter,
    cancelled: Counter,
    failed: Counter,
    queue_wait_us: Counter,
    run_time_us: Counter,
    patterns: Counter,
    dropped: Counter,
    retries: Counter,
}

impl Counters {
    fn new(registry: &Registry) -> Self {
        Self {
            submitted: registry.counter("jobs_submitted_total"),
            rejected: registry.counter("jobs_rejected_total"),
            completed: registry.counter("jobs_completed_total"),
            cancelled: registry.counter("jobs_cancelled_total"),
            failed: registry.counter("jobs_failed_total"),
            queue_wait_us: registry.counter("queue_wait_micros_total"),
            run_time_us: registry.counter("run_time_micros_total"),
            patterns: registry.counter("patterns_emitted_total"),
            dropped: registry.counter("embeddings_dropped_total"),
            retries: registry.counter("retries_total"),
        }
    }
}

struct SchedulerCore {
    queues: Mutex<JobQueues>,
    available: Condvar,
    shutdown: AtomicBool,
    cache: ResultCache,
    /// Jobs parked behind an identical in-flight run, per cache key. The
    /// leader drains its key's list when it settles, so a dispatcher never
    /// blocks on single-flight deduplication. Invariant: a parked list only
    /// exists while the cache holds a pending marker for its key (enforced
    /// by re-checking `is_pending` under this lock before parking).
    parked: Mutex<HashMap<CacheKey, Vec<QueuedJob>>>,
    config: ServiceConfig,
    next_id: AtomicU64,
    counters: Counters,
    clients: ClientRegistry,
    /// Every admitted job, weakly: the graceful-drain path walks this to
    /// find what is still in flight (queued, parked, or running) and to
    /// fire cancel tokens at the deadline. Pruned opportunistically.
    live: Mutex<Vec<Weak<JobShared>>>,
    /// Per-service telemetry registry: the single source of truth behind
    /// [`ServiceMetrics`], the cache and per-client counters, and the
    /// Prometheus exposition the transport serves. Per-service (not
    /// process-global) so concurrently running services never aggregate
    /// into each other's snapshots.
    registry: Arc<Registry>,
    /// End-to-end job latency (queue wait + run/cache time), nanoseconds.
    job_total_nanos: Histogram,
}

impl SchedulerCore {
    fn new(config: ServiceConfig) -> Self {
        let registry = Arc::new(Registry::new());
        Self {
            queues: Mutex::new(JobQueues::default()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: ResultCache::with_registry(config.cache_capacity, &registry),
            parked: Mutex::new(HashMap::new()),
            config,
            next_id: AtomicU64::new(0),
            counters: Counters::new(&registry),
            clients: ClientRegistry::with_registry(registry.clone()),
            live: Mutex::new(Vec::new()),
            job_total_nanos: registry.histogram("job_total_nanos"),
            registry,
        }
    }
}

/// The scheduler: bounded admission, priority dispatch, cache-aware
/// execution. Owns its dispatcher threads; dropping it drains the queue and
/// joins them.
pub struct JobScheduler {
    catalog: Arc<GraphCatalog>,
    core: Arc<SchedulerCore>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for JobScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobScheduler")
            .field("dispatchers", &self.workers.len())
            .field("metrics", &self.metrics())
            .finish()
    }
}

impl JobScheduler {
    /// Builds a scheduler over `catalog` and starts its dispatcher threads.
    pub fn new(catalog: Arc<GraphCatalog>, config: ServiceConfig) -> Self {
        let dispatchers = config.dispatchers.max(1);
        let core = Arc::new(SchedulerCore::new(config));
        let workers = (0..dispatchers)
            .map(|i| {
                let core = core.clone();
                std::thread::Builder::new()
                    .name(format!("mine-dispatch-{i}"))
                    .spawn(move || {
                        // A dispatcher dying is a service-level bug (miner
                        // panics are caught in run_job): dump the flight
                        // recorder's recent events before propagating, so the
                        // moments leading up to the crash are not lost.
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            dispatch_loop(&core)
                        }));
                        if let Err(panic) = run {
                            eprintln!("dispatcher panicked;\n{}", telemetry::flight_dump());
                            std::panic::resume_unwind(panic);
                        }
                    })
                    .expect("spawn dispatcher")
            })
            .collect();
        Self {
            catalog,
            core,
            workers,
        }
    }

    /// The catalog this scheduler resolves graph names against.
    pub fn catalog(&self) -> &Arc<GraphCatalog> {
        &self.catalog
    }

    /// Submits a job at [`Priority::Normal`].
    pub fn submit(&self, graph: &str, request: MineRequest) -> Result<JobHandle, ServiceError> {
        self.submit_with_priority(graph, request, Priority::Normal)
    }

    /// Submits `(graph name, request)` for execution. Admission control runs
    /// here, synchronously: unknown graph, transaction-database algorithms
    /// (the catalog serves single graphs), a `threads` ask above the service
    /// budget, request validation, shutdown, and the queue-depth limit all
    /// reject with a typed [`ServiceError`] instead of queueing a job that
    /// cannot run.
    pub fn submit_with_priority(
        &self,
        graph: &str,
        request: MineRequest,
        priority: Priority,
    ) -> Result<JobHandle, ServiceError> {
        self.submit_with_options(
            graph,
            request,
            SubmitOptions {
                priority,
                ..SubmitOptions::default()
            },
        )
    }

    /// Submits with full [`SubmitOptions`]: priority, a streaming
    /// [`PatternObserver`], and per-client attribution. This is the entry
    /// point the remote transport uses.
    pub fn submit_with_options(
        &self,
        graph: &str,
        request: MineRequest,
        options: SubmitOptions,
    ) -> Result<JobHandle, ServiceError> {
        let client = options.client.clone();
        let admitted = self.admit(graph, request, options);
        match (&admitted, client.as_deref()) {
            (Err(_), Some(client)) => {
                self.core.counters.rejected.inc();
                self.core.clients.record_rejected(client);
            }
            (Err(_), None) => {
                self.core.counters.rejected.inc();
            }
            (Ok(_), Some(client)) => self.core.clients.record_accepted(client),
            (Ok(_), None) => {}
        }
        admitted
    }

    /// The per-service telemetry registry behind [`JobScheduler::metrics`]:
    /// the same counter cells, plus latency histograms, in exposition-ready
    /// form. The transport serves `Metrics` frames from its snapshot.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.core.registry
    }

    /// Per-client counters (accepted/rejected/streamed). The transport
    /// records its edge-level rejections (quota, connection caps) here too,
    /// so one registry tells the whole per-tenant story.
    pub fn clients(&self) -> &ClientRegistry {
        &self.core.clients
    }

    fn admit(
        &self,
        graph: &str,
        request: MineRequest,
        options: SubmitOptions,
    ) -> Result<JobHandle, ServiceError> {
        if self.core.shutdown.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        let snapshot = self
            .catalog
            .get(graph)
            .ok_or_else(|| ServiceError::UnknownGraph(graph.to_owned()))?;
        if request.algorithm().wants_transactions() {
            return Err(ServiceError::InvalidRequest(MineError::UnsupportedSource {
                algorithm: request.algorithm(),
                expected: "a single labeled graph (the catalog serves single-graph snapshots)",
            }));
        }
        if let (Some(asked), Some(budget)) = (
            request.requested_threads(),
            self.core.config.max_threads_per_job,
        ) {
            if asked > budget {
                return Err(ServiceError::InvalidRequest(MineError::invalid(
                    "threads",
                    format!("must be at most {budget} (the service's per-job width budget)"),
                )));
            }
        }
        // Materialize file-backed snapshots here, so a corrupt or vanished
        // snapshot file surfaces as a typed admission error instead of a
        // dispatcher-side panic. For already-loaded graphs this is a single
        // atomic load. Transient I/O failures (the catalog leaves those
        // retryable, unlike permanent corruption) are retried under the
        // job's policy before the submission is rejected.
        let retry = options.retry.unwrap_or(self.core.config.retry);
        let mut load_attempts = 0u32;
        loop {
            match snapshot.ensure_loaded() {
                Ok(_) => break,
                Err(error) => {
                    load_attempts += 1;
                    if !error.is_transient() || !retry.should_retry(load_attempts) {
                        return Err(error);
                    }
                    self.core.counters.retries.inc();
                    telemetry::retry_event("snapshot_load_retry", 0, u64::from(load_attempts));
                    std::thread::sleep(retry.delay_for(load_attempts, snapshot.fingerprint()));
                }
            }
        }
        let key = CacheKey {
            graph: graph.to_owned(),
            fingerprint: snapshot.fingerprint(),
            request: request.canonical_key(),
        };
        let engine = request.build().map_err(ServiceError::InvalidRequest)?;

        // Mint (or adopt) the job's trace id here, at admission — every span
        // and instant of this job carries it. The id is minted even with
        // tracing disarmed (one relaxed fetch_add) so a job admitted before
        // arming still has a stable identity; the spans themselves are
        // no-ops until armed (`span_start` returns 0).
        let trace = options
            .trace
            .unwrap_or_else(spidermine_telemetry::next_trace_id);
        let shared = Arc::new(JobShared {
            id: self.core.next_id.fetch_add(1, Ordering::Relaxed),
            graph: graph.to_owned(),
            trace,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                outcome: None,
                error: None,
                metrics: None,
            }),
            finished: Condvar::new(),
            cancel: CancelToken::new(),
        });
        let root_span = telemetry::span_start("job", trace, 0);
        let queued_span = telemetry::span_start("queued", trace, root_span);
        let job = QueuedJob {
            shared: shared.clone(),
            snapshot,
            engine,
            key,
            submitted: Instant::now(),
            observer: options.observer,
            retry,
            root_span,
            wait_span: queued_span,
            wait_name: "queued",
        };

        {
            // Parked duplicates count toward the admission bound: they hold
            // the same resources a queued job does, and under duplicate-heavy
            // load the FIFO lanes alone would stay near-empty while the
            // parked map grew without limit. Lock order: queues, then parked.
            let mut queues = self.core.queues.lock().expect("queue lock");
            let depth = queues.depth() + parked_depth(&self.core);
            if depth >= self.core.config.queue_depth {
                // Rejected after the spans opened: close them so the trace
                // stays balanced (a rejected submission is an empty job).
                telemetry::span_end("queued", trace, queued_span);
                telemetry::span_end("job", trace, root_span);
                return Err(ServiceError::QueueFull {
                    depth,
                    limit: self.core.config.queue_depth,
                });
            }
            queues.lanes[options.priority as usize].push_back(job);
        }
        telemetry::instant("admitted", trace, shared.id);
        {
            let mut live = self.core.live.lock().expect("live lock");
            if live.len() >= 256 {
                live.retain(|w| {
                    w.upgrade()
                        .is_some_and(|s| !s.state.lock().expect("job lock").status.is_terminal())
                });
            }
            live.push(Arc::downgrade(&shared));
        }
        self.core.counters.submitted.inc();
        self.core.available.notify_one();
        Ok(JobHandle { shared })
    }

    /// Service-wide counter snapshot, read from the telemetry registry's
    /// cells (the same cells [`JobScheduler::registry`] exposes).
    pub fn metrics(&self) -> ServiceMetrics {
        let c = &self.core.counters;
        ServiceMetrics {
            submitted: c.submitted.get(),
            rejected: c.rejected.get(),
            completed: c.completed.get(),
            cancelled: c.cancelled.get(),
            failed: c.failed.get(),
            queue_wait_total: Duration::from_micros(c.queue_wait_us.get()),
            run_time_total: Duration::from_micros(c.run_time_us.get()),
            patterns_emitted: c.patterns.get(),
            embeddings_dropped: c.dropped.get(),
            retries: c.retries.get(),
            cache: self.core.cache.stats(),
            queue_depth: self.queue_depth(),
            clients: self.core.clients.snapshot(),
        }
    }

    /// Jobs currently waiting to execute: queued in the FIFO lanes plus
    /// parked behind an in-flight identical run. Both count toward the
    /// admission bound.
    pub fn queue_depth(&self) -> usize {
        let queued = self.core.queues.lock().expect("queue lock").depth();
        queued + parked_depth(&self.core)
    }

    /// Drops every completed entry from the result cache.
    pub fn clear_cache(&self) {
        self.core.cache.clear();
    }

    /// Graceful drain: stops accepting submissions, gives in-flight work
    /// (queued, parked, and running jobs) until `deadline` to finish, then
    /// fires the cancel token of everything still live and waits for the
    /// cooperative wind-down to settle. Returns `true` if every job
    /// finished on its own (no forced cancellation).
    ///
    /// Every waiter resolves: running jobs settle `Done`, `Failed`, or —
    /// after a forced cancel — `Cancelled` with a valid partial outcome;
    /// queued jobs whose token fired resolve `Cancelled` when a dispatcher
    /// reaches them; parked duplicates are drained by their leader and,
    /// with their tokens fired, resolve `Cancelled` instead of re-mining.
    /// Takes `&self` so a shared scheduler (e.g. behind the transport
    /// server) can be drained; the dispatcher threads themselves are joined
    /// later by [`JobScheduler::shutdown`] / drop.
    pub fn drain(&self, deadline: Duration) -> bool {
        const POLL: Duration = Duration::from_millis(2);
        self.core.shutdown.store(true, Ordering::Release);
        self.core.available.notify_all();
        let deadline_at = Instant::now() + deadline;
        loop {
            if live_jobs(&self.core).is_empty() {
                return true;
            }
            if Instant::now() >= deadline_at {
                break;
            }
            std::thread::sleep(POLL);
        }
        let stragglers = live_jobs(&self.core);
        let clean = stragglers.is_empty();
        if !clean && telemetry::armed() {
            // A missed drain deadline is exactly when "what was the service
            // doing?" matters: dump the flight recorder before forcing
            // cancellation destroys the evidence.
            eprintln!(
                "drain deadline missed with {} job(s) live;\n{}",
                stragglers.len(),
                telemetry::flight_dump()
            );
        }
        for job in &stragglers {
            job.cancel.fire();
        }
        // Cancellation is cooperative but prompt: queued jobs resolve when a
        // dispatcher pops them, running jobs at their next cancel poll.
        while !live_jobs(&self.core).is_empty() {
            std::thread::sleep(POLL);
        }
        clean
    }

    /// Stops accepting submissions, lets the dispatchers drain the queue,
    /// and joins them. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.core.available.notify_all();
        for worker in self.workers.drain(..) {
            // A dispatcher cannot normally panic (miner panics are caught in
            // run_job), but never turn a stray unwind into a panic-in-drop.
            let _ = worker.join();
        }
    }
}

impl Drop for JobScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(core: &SchedulerCore) {
    loop {
        let job = {
            let mut queues = core.queues.lock().expect("queue lock");
            loop {
                if let Some(job) = queues.pop() {
                    break job;
                }
                if core.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queues = core.available.wait(queues).expect("queue lock");
            }
        };
        run_job(core, job);
    }
}

/// Executes one dequeued (or drained-from-parked) job: cancellation check,
/// cache single-flight, engine run, bookkeeping. A job behind an identical
/// in-flight run is *parked* — the dispatcher moves on instead of blocking —
/// and re-enters here when the leader drains it.
fn run_job(core: &SchedulerCore, mut job: QueuedJob) {
    // Submission-to-execution wait (for a parked job: including the parked
    // period). Recorded once, in `finish`.
    let queue_wait = job.submitted.elapsed();

    // A dispatcher has the job: close whichever wait span is open (`queued`
    // from admission, or `parked` from a single-flight park below).
    telemetry::span_end(job.wait_name, job.shared.trace, job.wait_span);
    job.wait_span = 0;

    // Cancelled while queued/parked: synthesize an empty partial outcome so
    // waiters get `Ok` (cancellation is never an error), skip mining.
    if job.shared.cancel.is_cancelled() {
        let outcome = Arc::new(empty_cancelled_outcome(&job));
        let metrics = JobMetrics {
            queue_wait,
            ..JobMetrics::default()
        };
        finish(
            core,
            &job,
            JobStatus::Cancelled,
            Some(outcome),
            None,
            metrics,
        );
        return;
    }

    set_status(&job.shared, JobStatus::Running);
    let started = Instant::now();
    loop {
        match core.cache.begin(&job.key) {
            CacheLookup::Hit(outcome) => {
                telemetry::instant("cache_hit", job.shared.trace, job.shared.id);
                // A cache-served job never ran, so its observer saw nothing:
                // replay the cached outcome's patterns through it (in outcome
                // order) before the handle turns terminal, upholding the
                // observer contract a freshly mined job satisfies live.
                if let Some(observer) = &job.observer {
                    for pattern in &outcome.patterns {
                        observer(pattern);
                    }
                }
                // `cache_wait`, not `run_time`: the mining wall-clock belongs
                // to the leader that produced the entry, so summing per-job
                // run_time never double-counts it.
                let metrics = JobMetrics {
                    queue_wait: job.submitted.elapsed(),
                    run_time: Duration::ZERO,
                    cache_wait: started.elapsed(),
                    patterns: outcome.patterns.len(),
                    from_cache: true,
                    retries: 0,
                };
                finish(core, &job, JobStatus::Done, Some(outcome), None, metrics);
                return;
            }
            CacheLookup::InFlight => {
                // Park behind the in-flight identical run; the leader drains
                // us when it settles. Re-check the pending marker under the
                // parking lock: if the leader settled between the lookup and
                // here, it has already drained (or will find nothing), so
                // retry the lookup instead of parking forever.
                let mut parked = core.parked.lock().expect("parked lock");
                if core.cache.is_pending(&job.key) {
                    set_status(&job.shared, JobStatus::Queued);
                    job.wait_span =
                        telemetry::span_start("parked", job.shared.trace, job.root_span);
                    job.wait_name = "parked";
                    parked.entry(job.key.clone()).or_default().push(job);
                    return;
                }
                drop(parked);
                continue;
            }
            CacheLookup::Leader => {
                lead_job(core, &job, started);
                // Serve (or promote) everything that parked behind this run.
                drain_parked(core, &job.key);
                return;
            }
        }
    }
}

/// The leader path: mine under a pending-marker guard, file or withdraw the
/// cache entry, finish the job. A panicking miner is caught: the guard frees
/// the key and the job lands Failed instead of stranding `wait()` callers
/// and killing the dispatcher thread — and, because a panic is the one
/// execution failure classified *transient* (a poisoned run, not a wrong
/// request), it is retried under the job's [`RetryPolicy`] before Failed is
/// recorded. Engine errors are permanent and never retried.
fn lead_job(core: &SchedulerCore, job: &QueuedJob, started: Instant) {
    let guard = PendingGuard::new(&core.cache, &job.key);
    let mut retries = 0u32;
    let streamed = Arc::new(AtomicU64::new(0));
    let result = loop {
        // One `running` span per attempt, closed *after* catch_unwind so a
        // panicking run still balances its span tree; the mining stage
        // spans nest under it via the context's trace identity.
        let running_span = telemetry::span_start("running", job.shared.trace, job.root_span);
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if faultline::check(faultline::FaultSite::ExecRun) == Some(faultline::FaultKind::Panic)
            {
                panic!("injected execution fault");
            }
            let mut ctx = MineContext::with_cancel(job.shared.cancel.clone())
                .with_trace(job.shared.trace, running_span);
            if let Some(observer) = job.observer.clone() {
                let streamed = streamed.clone();
                ctx = ctx.on_pattern(move |pattern| {
                    streamed.fetch_add(1, Ordering::Relaxed);
                    observer(&pattern);
                });
            }
            job.engine
                .mine(&GraphSource::Single(job.snapshot.graph()), &mut ctx)
        }));
        telemetry::span_end("running", job.shared.trace, running_span);
        match attempt {
            Err(_)
                if !job.shared.cancel.is_cancelled()
                    && job.retry.should_retry(retries + 1)
                    && streamed.load(Ordering::Relaxed) == 0 =>
            {
                // Retry only while the observer has seen nothing: a run that
                // panicked after streaming patterns cannot be restarted
                // without double-delivering them (the observer contract is
                // exactly-once), so those land Failed on the first panic.
                retries += 1;
                core.counters.retries.inc();
                telemetry::retry_event("exec_panic_retry", job.shared.trace, u64::from(retries));
                std::thread::sleep(job.retry.delay_for(retries, job.shared.id));
            }
            other => break other,
        }
    };
    let run_time = started.elapsed();
    core.counters.run_time_us.add(run_time.as_micros() as u64);
    let metrics = JobMetrics {
        queue_wait: job.submitted.elapsed() - run_time,
        run_time,
        cache_wait: Duration::ZERO,
        patterns: 0,
        from_cache: false,
        retries,
    };
    match result {
        Ok(Ok(outcome)) => {
            let outcome = Arc::new(outcome);
            let status = if outcome.cancelled {
                // Partial results are valid but must not be cached.
                guard.abort();
                JobStatus::Cancelled
            } else {
                guard.complete(outcome.clone());
                JobStatus::Done
            };
            let metrics = JobMetrics {
                patterns: outcome.patterns.len(),
                ..metrics
            };
            finish(core, job, status, Some(outcome), None, metrics);
        }
        Ok(Err(error)) => {
            guard.abort();
            if job.shared.cancel.is_cancelled() {
                // The token fired while the run was winding down (a client
                // disconnect, an expired deadline): the error is a casualty
                // of the cancellation, not a failure of the job. Attribute
                // it as cancelled so disconnect storms don't read as a
                // failing service — waiters get an empty partial outcome.
                let outcome = Arc::new(empty_cancelled_outcome(job));
                finish(
                    core,
                    job,
                    JobStatus::Cancelled,
                    Some(outcome),
                    None,
                    metrics,
                );
            } else {
                let error = ServiceError::JobFailed(error);
                finish(core, job, JobStatus::Failed, None, Some(error), metrics);
            }
        }
        Err(panic) => {
            guard.abort();
            if job.shared.cancel.is_cancelled() {
                // Same attribution rule as the error arm: a panic during a
                // cancelled wind-down records as cancelled, not failed.
                let outcome = Arc::new(empty_cancelled_outcome(job));
                finish(
                    core,
                    job,
                    JobStatus::Cancelled,
                    Some(outcome),
                    None,
                    metrics,
                );
            } else {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                let error = ServiceError::JobPanicked(message);
                finish(core, job, JobStatus::Failed, None, Some(error), metrics);
            }
        }
    }
}

/// Admitted jobs that have not reached a terminal status, pruning dead and
/// settled entries from the registry on the way.
fn live_jobs(core: &SchedulerCore) -> Vec<Arc<JobShared>> {
    let mut live = core.live.lock().expect("live lock");
    live.retain(|w| {
        w.upgrade()
            .is_some_and(|s| !s.state.lock().expect("job lock").status.is_terminal())
    });
    live.iter().filter_map(Weak::upgrade).collect()
}

/// Jobs currently parked behind in-flight runs.
fn parked_depth(core: &SchedulerCore) -> usize {
    core.parked
        .lock()
        .expect("parked lock")
        .values()
        .map(Vec::len)
        .sum()
}

/// Runs every job parked behind `key`, after its leader settled. On a
/// completed leader they all hit the fresh entry; on an aborted one the
/// first becomes the new leader (mining on this dispatcher) and the rest
/// re-park behind it via the normal `run_job` path.
fn drain_parked(core: &SchedulerCore, key: &CacheKey) {
    let drained = core.parked.lock().expect("parked lock").remove(key);
    if let Some(jobs) = drained {
        for parked in jobs {
            run_job(core, parked);
        }
    }
}

fn empty_cancelled_outcome(job: &QueuedJob) -> MineOutcome {
    MineOutcome {
        algorithm: job.engine.algorithm(),
        patterns: Vec::new(),
        cancelled: true,
        timed_out: false,
        stages: Vec::new(),
        total_time: Duration::ZERO,
        threads: 1,
        dropped_embeddings: 0,
    }
}

fn set_status(shared: &JobShared, status: JobStatus) {
    shared.state.lock().expect("job lock").status = status;
}

fn finish(
    core: &SchedulerCore,
    job: &QueuedJob,
    status: JobStatus,
    outcome: Option<Arc<MineOutcome>>,
    error: Option<ServiceError>,
    metrics: JobMetrics,
) {
    let (counter, terminal) = match status {
        JobStatus::Done => (&core.counters.completed, "job_done"),
        JobStatus::Cancelled => (&core.counters.cancelled, "job_cancelled"),
        JobStatus::Failed => (&core.counters.failed, "job_failed"),
        JobStatus::Queued | JobStatus::Running => unreachable!("finish takes a terminal status"),
    };
    counter.inc();
    core.counters
        .queue_wait_us
        .add(metrics.queue_wait.as_micros() as u64);
    if let Some(outcome) = &outcome {
        core.counters.patterns.add(outcome.patterns.len() as u64);
        core.counters.dropped.add(outcome.dropped_embeddings as u64);
        // Stage timings → per-stage latency histograms, only for the run
        // that actually mined: cache-served jobs share the leader's outcome,
        // and replaying its stage timings once per hit would inflate the
        // distributions. The name lookup allocates, but `finish` runs once
        // per job, off the mining hot path.
        if !metrics.from_cache {
            for stage in &outcome.stages {
                core.registry
                    .histogram(&format!("stage_nanos{{stage=\"{}\"}}", stage.stage))
                    .observe_duration(stage.elapsed);
            }
        }
    }
    core.job_total_nanos
        .observe_duration(metrics.queue_wait + metrics.run_time + metrics.cache_wait);
    telemetry::instant(terminal, job.shared.trace, job.shared.id);
    telemetry::span_end("job", job.shared.trace, job.root_span);
    let mut state = job.shared.state.lock().expect("job lock");
    state.status = status;
    state.outcome = outcome;
    state.error = error;
    state.metrics = Some(metrics);
    drop(state);
    job.shared.finished.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use spidermine_engine::Algorithm;
    use spidermine_graph::{Label, LabeledGraph};

    fn toy_graph() -> LabeledGraph {
        // Two labeled paths 0-1-2 plus noise, small enough to mine instantly.
        LabeledGraph::from_parts(
            &[
                Label(0),
                Label(1),
                Label(2),
                Label(0),
                Label(1),
                Label(2),
                Label(9),
            ],
            &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 6)],
        )
    }

    fn scheduler(config: ServiceConfig) -> JobScheduler {
        let catalog = Arc::new(GraphCatalog::new());
        catalog.register("toy", toy_graph());
        JobScheduler::new(catalog, config)
    }

    fn request() -> MineRequest {
        MineRequest::new(Algorithm::Moss).support_threshold(2)
    }

    #[test]
    fn submit_wait_roundtrip_and_cache_hit() {
        let s = scheduler(ServiceConfig::default());
        let a = s.submit("toy", request()).expect("submit");
        let first = a.wait().expect("mine");
        assert!(!first.patterns.is_empty());
        assert_eq!(a.status(), JobStatus::Done);
        let am = a.metrics().expect("terminal");
        assert!(!am.from_cache, "first job mines");

        let b = s.submit("toy", request()).expect("submit");
        let second = b.wait().expect("mine");
        assert!(Arc::ptr_eq(&first, &second), "served from cache");
        assert!(b.metrics().expect("terminal").from_cache);
        let m = s.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.cache.hits, 1);
        assert_eq!(m.cache.misses, 1);
    }

    #[test]
    fn unknown_graph_and_transaction_algorithms_are_rejected() {
        let s = scheduler(ServiceConfig::default());
        assert!(matches!(
            s.submit("ghost", request()),
            Err(ServiceError::UnknownGraph(_))
        ));
        assert!(matches!(
            s.submit("toy", MineRequest::new(Algorithm::Origami)),
            Err(ServiceError::InvalidRequest(
                MineError::UnsupportedSource { .. }
            ))
        ));
        assert_eq!(s.metrics().rejected, 2);
    }

    #[test]
    fn invalid_request_is_rejected_naming_the_field() {
        let s = scheduler(ServiceConfig::default());
        match s.submit("toy", request().deadline_ms(0)) {
            Err(ServiceError::InvalidRequest(e)) => assert_eq!(e.field(), Some("deadline_ms")),
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }

    #[test]
    fn width_budget_is_enforced() {
        let s = scheduler(ServiceConfig {
            max_threads_per_job: Some(2),
            ..ServiceConfig::default()
        });
        match s.submit("toy", request().threads(4)) {
            Err(ServiceError::InvalidRequest(e)) => assert_eq!(e.field(), Some("threads")),
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
        s.submit("toy", request().threads(2))
            .expect("within budget")
            .wait()
            .expect("mine");
    }

    #[test]
    fn queue_full_is_a_typed_rejection() {
        // No dispatchers can drain fast enough to matter: fill the queue
        // while holding the only dispatcher busy with a deliberately slow
        // job... simpler: depth 0 rejects immediately.
        let s = scheduler(ServiceConfig {
            queue_depth: 0,
            ..ServiceConfig::default()
        });
        assert!(matches!(
            s.submit("toy", request()),
            Err(ServiceError::QueueFull { depth: 0, limit: 0 })
        ));
    }

    #[test]
    fn cancelling_a_queued_job_yields_empty_partial_outcome() {
        use rand::SeedableRng;
        let catalog = Arc::new(GraphCatalog::new());
        catalog.register("toy", toy_graph());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        catalog.register(
            "slow",
            spidermine_graph::generate::erdos_renyi_average_degree(&mut rng, 60, 2.5, 4),
        );
        // One dispatcher, occupied by a slower job: the target job is still
        // queued when we cancel it, so the pre-run check drops it unmined.
        let s = JobScheduler::new(
            catalog,
            ServiceConfig {
                dispatchers: 1,
                ..ServiceConfig::default()
            },
        );
        let blocker = s
            .submit("slow", MineRequest::new(Algorithm::SpiderMine).k(3))
            .expect("submit");
        let h = s.submit("toy", request()).expect("submit");
        h.cancel();
        let outcome = h.wait().expect("cancellation is not an error");
        assert!(outcome.cancelled);
        assert!(outcome.patterns.is_empty());
        assert_eq!(h.status(), JobStatus::Cancelled);
        blocker.wait().expect("blocker unaffected");
        assert_eq!(s.metrics().cancelled, 1);
    }

    #[test]
    fn shutdown_drains_then_rejects() {
        let mut s = scheduler(ServiceConfig::default());
        let h = s.submit("toy", request()).expect("submit");
        s.shutdown();
        assert!(h.status().is_terminal(), "queued work drained");
        assert!(matches!(
            s.submit("toy", request()),
            Err(ServiceError::ShuttingDown)
        ));
    }

    #[test]
    fn wait_timeout_returns_none_while_running() {
        let s = scheduler(ServiceConfig::default());
        let h = s.submit("toy", request()).expect("submit");
        // Either it finished already (Some) or not (None) — both fine; the
        // point is that a terminal job always reports Some immediately.
        let _ = h.wait_timeout(Duration::from_millis(1));
        h.wait().expect("mine");
        assert!(h.wait_timeout(Duration::ZERO).is_some());
    }

    #[test]
    fn duplicate_jobs_park_instead_of_blocking_a_dispatcher() {
        use rand::SeedableRng;
        let catalog = Arc::new(GraphCatalog::new());
        catalog.register("toy", toy_graph());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        catalog.register(
            "slow",
            spidermine_graph::generate::erdos_renyi_average_degree(&mut rng, 80, 2.5, 4),
        );
        let s = JobScheduler::new(
            catalog,
            ServiceConfig {
                dispatchers: 2,
                ..ServiceConfig::default()
            },
        );
        let slow_request = || MineRequest::new(Algorithm::SpiderMine).k(3).seed(1);
        // Two identical slow jobs: one leads on dispatcher 1, the duplicate
        // parks (freeing dispatcher 2) instead of idling behind the leader.
        let leader = s.submit("slow", slow_request()).expect("submit");
        let duplicate = s.submit("slow", slow_request()).expect("submit");
        // A distinct fast job must complete while the slow leader still runs
        // — the whole point of parking. (The leader takes seconds; the toy
        // job takes milliseconds, so this ordering is robust.)
        let fast = s.submit("toy", request()).expect("submit");
        fast.wait().expect("fast job mines immediately");
        assert!(
            !leader.status().is_terminal(),
            "fast job should finish while the slow leader is still mining"
        );
        assert!(!leader.wait().expect("leader mines").cancelled);
        assert!(!duplicate.wait().expect("duplicate served").cancelled);
        // Either of the identical pair may have won the leader role; exactly
        // one mined, the other was drained from its cache entry.
        let cache_served = [&leader, &duplicate]
            .iter()
            .filter(|h| h.metrics().expect("terminal").from_cache)
            .count();
        assert_eq!(cache_served, 1);
        assert_eq!(s.metrics().completed, 3);
    }

    #[test]
    fn parked_jobs_count_toward_the_admission_bound() {
        use rand::SeedableRng;
        let catalog = Arc::new(GraphCatalog::new());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        catalog.register(
            "slow",
            spidermine_graph::generate::erdos_renyi_average_degree(&mut rng, 80, 2.5, 4),
        );
        let s = JobScheduler::new(
            catalog,
            ServiceConfig {
                dispatchers: 2,
                queue_depth: 1,
                ..ServiceConfig::default()
            },
        );
        let slow_request = || MineRequest::new(Algorithm::SpiderMine).k(3).seed(1);
        let leader = s.submit("slow", slow_request()).expect("submit");
        // Give the dispatcher time to pop the leader so it occupies no slot.
        std::thread::sleep(Duration::from_millis(100));
        let duplicate = s.submit("slow", slow_request()).expect("one slot free");
        std::thread::sleep(Duration::from_millis(100));
        // The duplicate is parked (not queued), but still holds the one
        // admission slot: a third submission must be rejected.
        assert_eq!(s.queue_depth(), 1, "parked duplicate counts");
        assert!(matches!(
            s.submit("slow", slow_request()),
            Err(ServiceError::QueueFull { depth: 1, limit: 1 })
        ));
        assert!(!leader.wait().expect("leader mines").cancelled);
        assert!(!duplicate.wait().expect("duplicate served").cancelled);
    }

    #[test]
    fn failed_job_surfaces_its_error_through_wait() {
        // Drive the finish plumbing directly with the two Failed shapes the
        // dispatcher produces (engine error, caught panic): waiters must be
        // released with the typed error, never stranded.
        let catalog = GraphCatalog::new();
        let snap = catalog.register("g", toy_graph());
        let core = SchedulerCore::new(ServiceConfig::default());
        for error in [
            ServiceError::JobFailed(MineError::invalid("k", "must be at least 1")),
            ServiceError::JobPanicked("index out of bounds".into()),
        ] {
            let shared = Arc::new(JobShared {
                id: 0,
                graph: "g".into(),
                trace: 0,
                state: Mutex::new(JobState {
                    status: JobStatus::Running,
                    outcome: None,
                    error: None,
                    metrics: None,
                }),
                finished: Condvar::new(),
                cancel: CancelToken::new(),
            });
            let job = QueuedJob {
                shared: shared.clone(),
                snapshot: snap.clone(),
                engine: request().build().expect("valid"),
                key: CacheKey {
                    graph: "g".into(),
                    fingerprint: snap.fingerprint(),
                    request: "k".into(),
                },
                submitted: Instant::now(),
                observer: None,
                retry: RetryPolicy::none(),
                root_span: 0,
                wait_span: 0,
                wait_name: "queued",
            };
            finish(
                &core,
                &job,
                JobStatus::Failed,
                None,
                Some(error.clone()),
                JobMetrics::default(),
            );
            let handle = JobHandle { shared };
            assert_eq!(handle.status(), JobStatus::Failed);
            assert_eq!(handle.wait().expect_err("failed job errors"), error);
        }
        assert_eq!(core.counters.failed.get(), 2);
    }

    #[test]
    fn priorities_dispatch_high_first() {
        // Single dispatcher, and the queue is stuffed before it starts by
        // submitting under a held queue lock... we cannot hold the internal
        // lock, so instead verify ordering structurally: fill lanes directly.
        let mut queues = JobQueues::default();
        assert!(queues.pop().is_none());
        let catalog = GraphCatalog::new();
        let snap = catalog.register("g", toy_graph());
        for (i, priority) in [Priority::Low, Priority::Normal, Priority::High]
            .into_iter()
            .enumerate()
        {
            let engine = request().build().expect("valid");
            queues.lanes[priority as usize].push_back(QueuedJob {
                shared: Arc::new(JobShared {
                    id: i as u64,
                    graph: "g".into(),
                    trace: 0,
                    state: Mutex::new(JobState {
                        status: JobStatus::Queued,
                        outcome: None,
                        error: None,
                        metrics: None,
                    }),
                    finished: Condvar::new(),
                    cancel: CancelToken::new(),
                }),
                snapshot: snap.clone(),
                engine,
                key: CacheKey {
                    graph: "g".into(),
                    fingerprint: snap.fingerprint(),
                    request: format!("{i}"),
                },
                submitted: Instant::now(),
                observer: None,
                retry: RetryPolicy::none(),
                root_span: 0,
                wait_span: 0,
                wait_name: "queued",
            });
        }
        assert_eq!(queues.pop().expect("high").shared.id, 2);
        assert_eq!(queues.pop().expect("normal").shared.id, 1);
        assert_eq!(queues.pop().expect("low").shared.id, 0);
    }

    /// A leader whose engine *errors* while its cancel token is fired (the
    /// disconnect-then-error race) must record `Cancelled`, not `Failed`:
    /// the error is a casualty of the cancellation. Without the fired token
    /// the same error records `Failed` as before.
    #[test]
    fn cancelled_run_that_errors_records_cancelled_not_failed() {
        let catalog = GraphCatalog::new();
        let snap = catalog.register("g", toy_graph());
        let core = SchedulerCore::new(ServiceConfig::default());
        // ORIGAMI demands a transaction database, so mining the catalog's
        // single-graph snapshot errors deterministically mid-run.
        let erroring_job = |key: &str| {
            let shared = Arc::new(JobShared {
                id: 0,
                graph: "g".into(),
                trace: 0,
                state: Mutex::new(JobState {
                    status: JobStatus::Running,
                    outcome: None,
                    error: None,
                    metrics: None,
                }),
                finished: Condvar::new(),
                cancel: CancelToken::new(),
            });
            QueuedJob {
                shared,
                snapshot: snap.clone(),
                engine: MineRequest::new(Algorithm::Origami).build().expect("valid"),
                key: CacheKey {
                    graph: "g".into(),
                    fingerprint: snap.fingerprint(),
                    request: key.into(),
                },
                submitted: Instant::now(),
                observer: None,
                retry: RetryPolicy::none(),
                root_span: 0,
                wait_span: 0,
                wait_name: "queued",
            }
        };

        let cancelled = erroring_job("cancelled");
        cancelled.shared.cancel.fire();
        lead_job(&core, &cancelled, Instant::now());
        let handle = JobHandle {
            shared: cancelled.shared.clone(),
        };
        assert_eq!(handle.status(), JobStatus::Cancelled);
        let outcome = handle.wait().expect("cancellation is never an error");
        assert!(outcome.cancelled && outcome.patterns.is_empty());

        let failed = erroring_job("failed");
        lead_job(&core, &failed, Instant::now());
        let handle = JobHandle {
            shared: failed.shared.clone(),
        };
        assert_eq!(handle.status(), JobStatus::Failed);
        assert!(matches!(
            handle.wait(),
            Err(ServiceError::JobFailed(MineError::UnsupportedSource { .. }))
        ));

        assert_eq!(core.counters.cancelled.get(), 1);
        assert_eq!(core.counters.failed.get(), 1);
    }

    /// The observer sees every pattern of the final outcome exactly once —
    /// streamed live by the mining leader, and *replayed* in outcome order
    /// for a cache-served duplicate.
    #[test]
    fn observer_streams_live_and_replays_on_cache_hits() {
        let s = scheduler(ServiceConfig::default());
        let observe = || {
            let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = seen.clone();
            let observer: PatternObserver = Arc::new(move |p: &StreamedPattern| {
                sink.lock().unwrap().push(p.support);
            });
            (seen, observer)
        };

        let (live, observer) = observe();
        let options = SubmitOptions {
            observer: Some(observer),
            client: Some("tester".into()),
            ..SubmitOptions::default()
        };
        let first = s.submit_with_options("toy", request(), options).unwrap();
        let outcome = first.wait().expect("mine");
        let mut live_supports = live.lock().unwrap().clone();
        live_supports.sort_unstable();
        let mut outcome_supports: Vec<_> = outcome.patterns.iter().map(|p| p.support).collect();
        outcome_supports.sort_unstable();
        assert_eq!(live_supports, outcome_supports);
        assert!(!outcome.patterns.is_empty());

        let (replayed, observer) = observe();
        let options = SubmitOptions {
            observer: Some(observer),
            client: Some("tester".into()),
            ..SubmitOptions::default()
        };
        let second = s.submit_with_options("toy", request(), options).unwrap();
        second.wait().expect("cache hit");
        assert!(second.metrics().expect("terminal").from_cache);
        // A replay delivers exactly the outcome's patterns, in outcome order.
        let replayed_supports = replayed.lock().unwrap().clone();
        assert_eq!(
            replayed_supports,
            outcome
                .patterns
                .iter()
                .map(|p| p.support)
                .collect::<Vec<_>>()
        );

        // Both submissions were attributed to the client.
        let stats = s.clients().get("tester").expect("attributed");
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 0);
        let metrics = s.metrics();
        assert_eq!(metrics.clients.len(), 1);
        assert_eq!(metrics.clients[0].0, "tester");

        // Rejections are attributed too.
        let options = SubmitOptions {
            client: Some("tester".into()),
            ..SubmitOptions::default()
        };
        let err = s.submit_with_options("ghost", request(), options);
        assert!(matches!(err, Err(ServiceError::UnknownGraph(_))));
        assert_eq!(s.clients().get("tester").expect("attributed").rejected, 1);
    }
}
