//! Remote streaming transport for the mining service.
//!
//! This crate puts the in-process `MiningService` (graph catalog, job
//! scheduler, result cache) on a socket, using nothing beyond the standard
//! library: a length-prefixed, checksummed binary frame protocol over TCP
//! ([`frame`]), a threaded server with admission control at the network
//! edge ([`server`]), and a blocking client whose [`RemoteJob`] mirrors the
//! in-process `JobHandle` ([`client`]).
//!
//! Design pillars, in the same spirit as the `SPDRSNAP` snapshot format:
//!
//! - **Hostile input yields typed errors, never panics.** Every header
//!   field is validated before it is trusted (magic, version, frame type,
//!   length cap *before* allocation, checksum over header fields and
//!   payload), and every payload decodes through bounds-checked cursors.
//!   See [`TransportError`].
//! - **Streaming, not buffering.** Accepted patterns cross the wire the
//!   moment the engine emits them; a client can process early patterns of a
//!   long run, or cancel after seeing enough.
//! - **Admission at the edge.** Connection caps, per-client in-flight
//!   quotas, and the scheduler's own queue-depth and catalog checks all
//!   answer with typed [`WireRejection`]s instead of dropped sockets.
//! - **Disconnect is cancellation.** A client that goes away (cleanly or
//!   mid-frame) fires the cancel token of its in-flight jobs; the runs wind
//!   down cooperatively and are recorded as cancelled, not failed.
//! - **Failure is survivable, and tested under injection.** Transient
//!   failures are classified ([`TransportError::is_transient`]) and
//!   [`ResilientClient`] reconnects and resubmits under a jittered
//!   [`RetryPolicy`] — resubmission is cache-served byte-identical or
//!   parked on the in-flight original. Servers drain gracefully
//!   ([`MiningServer::shutdown`] broadcasts a typed `Draining` frame and
//!   gives in-flight work a deadline), reap idle/half-open connections
//!   ([`TransportConfig::idle_timeout`], with clients heartbeating
//!   automatically), and the whole stack holds up under the seeded
//!   `spidermine-faultline` fault plans swept in `tests/faults.rs`.
//!
//! ```no_run
//! use spidermine_service::{MiningService, ServiceConfig};
//! use spidermine_transport::{MiningClient, MiningServer, TransportConfig};
//! use std::sync::Arc;
//!
//! let service = Arc::new(MiningService::new(ServiceConfig::default()));
//! // ... register graphs in service.catalog() ...
//! let server = MiningServer::bind("127.0.0.1:0", service, TransportConfig::default())?;
//!
//! let client = MiningClient::connect(server.local_addr(), "example")?;
//! let request = spidermine_engine::MineRequest::new(spidermine_engine::Algorithm::SpiderMine)
//!     .support_threshold(2);
//! let mut job = client.submit("my-graph", &request)?;
//! for pattern in job.by_ref() {
//!     println!("pattern with support {}", pattern.support);
//! }
//! let result = job.outcome()?;
//! println!("{} patterns, cached: {}", result.outcome.patterns.len(), result.from_cache);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod error;
pub mod frame;
pub mod resilient;
pub mod server;

pub use client::{MiningClient, RemoteJob, RemoteOutcome};
pub use error::{TransportError, WireRejection};
pub use frame::{Frame, PatternRef, MAX_PAYLOAD, PROTOCOL_VERSION};
pub use resilient::ResilientClient;
pub use server::{MiningServer, TransportConfig};
pub use spidermine_faultline::RetryPolicy;
